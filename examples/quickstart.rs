//! Quickstart: boot KaffeOS, run two isolated guest processes, inspect
//! their output, exit codes, and resource accounting.
//!
//! Run with: `cargo run --release --example quickstart`

use kaffeos::{KaffeOs, KaffeOsConfig};

fn main() {
    // Boot a VM with the default configuration: per-process heaps, the
    // 41-cycle page-lookup write barrier, 256 MB machine budget.
    let mut os = KaffeOs::new(KaffeOsConfig::default());

    // Guest programs are written in Cup, a small Java-like language, and
    // cross into the kernel only through Sys/Proc/Shm intrinsics.
    os.register_image(
        "greeter",
        r#"
        class Main {
            static int main(String who) {
                Sys.print("hello, " + who + "!");
                Sys.print("my pid is " + Proc.self_pid());
                return 0;
            }
        }
        "#,
    )
    .expect("greeter compiles");

    os.register_image(
        "counter",
        r#"
        class Main {
            static int main(int n) {
                int acc = 0;
                for (int i = 1; i <= n; i = i + 1) { acc = acc + i; }
                Sys.print("sum(1..=" + n + ") = " + acc);
                return acc % 256;
            }
        }
        "#,
    )
    .expect("counter compiles");

    // Each spawn creates a process: its own heap, memory limit, namespace
    // and statics — as if it had the whole VM to itself.
    let greeter = os.spawn("greeter", "world", None).unwrap();
    let counter = os.spawn("counter", "100", Some(4 << 20)).unwrap();

    let report = os.run(None);

    for pid in [greeter, counter] {
        println!("--- {:?} ---", pid);
        for line in os.stdout(pid) {
            println!("  {line}");
        }
        println!("  status: {:?}", os.status(pid));
        let cpu = os.cpu(pid);
        println!(
            "  cpu: {} cycles exec, {} gc, {} kernel",
            cpu.exec, cpu.gc, cpu.kernel
        );
    }
    println!(
        "\nvm: {:.6} virtual seconds, {} scheduler quanta, {} write barriers",
        report.virtual_seconds, report.quanta, report.barrier.executed
    );
}
