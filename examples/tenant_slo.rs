//! Multi-tenant SLO harness, DoS edition: an open-loop flood tenant ramps
//! its arrival rate against a small admission cap while a steady tenant
//! shares the machine. The kernel's admission controller clips the flood;
//! the steady tenant's latency and goodput stay intact.
//!
//! Run with: `cargo run --release --example tenant_slo [seed]`

use kaffeos_workloads::run_scenario;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    let report = run_scenario("admission-overload", seed).expect("known scenario");

    println!("admission-overload scenario, seed {seed}\n");
    println!(
        "{:<10}{:>9}{:>9}{:>10}{:>10}{:>9}{:>12}{:>12}{:>12}",
        "tenant", "offered", "admitted", "rejected", "restarts", "kills", "p50", "p99", "goodput‰"
    );
    println!("{}", "-".repeat(93));
    for t in &report.tenants {
        let rejected = t.stats.rejected_cap + t.stats.rejected_breaker + t.stats.rejected_shed;
        println!(
            "{:<10}{:>9}{:>9}{:>10}{:>10}{:>9}{:>12}{:>12}{:>12}",
            t.name,
            t.stats.offered,
            t.stats.admitted,
            rejected,
            t.stats.restarts,
            t.stats.exits.get(kaffeos::ExitCause::Killed),
            t.latency.p50(),
            t.latency.p99(),
            t.goodput_permille,
        );
    }
    println!(
        "\nLatencies are virtual cycles (500 MHz) from scheduled arrival to\n\
         exit. The flood's DoS ramp overruns its 2-process cap and bounded\n\
         queue, so the excess is rejected with typed errors; the steady\n\
         tenant never queues behind it. Full golden report:\n"
    );
    print!("{}", report.text);
}
