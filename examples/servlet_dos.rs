//! A miniature of the paper's Figure 4: the same servlet workload under
//! three deployments, with and without a MemHog attacker.
//!
//! Run with: `cargo run --release --example servlet_dos`

use kaffeos_workloads::{run_servlet_experiment, Deployment, MachineModel, ServletParams};

fn main() {
    let deployments = [
        ("KaffeOS (process per servlet)", Deployment::KaffeOsProcs),
        ("IBM/n   (one shared JVM)", Deployment::MonolithicShared),
        ("IBM/1   (one JVM per servlet)", Deployment::VmPerServlet),
    ];

    println!("4 servlets answering 400 requests; virtual seconds at 500 MHz\n");
    println!(
        "{:<32}{:>12}{:>14}{:>10}",
        "deployment", "clean", "with MemHog", "crashes"
    );
    println!("{}", "-".repeat(68));
    for (name, deployment) in deployments {
        let params = |with_memhog| ServletParams {
            deployment,
            servlets: 4,
            with_memhog,
            total_requests: 400,
            mono_heap_bytes: 16 << 20,
            machine: MachineModel::default(),
        };
        let clean = run_servlet_experiment(params(false));
        let attacked = run_servlet_experiment(params(true));
        println!(
            "{:<32}{:>11.2}s{:>13.2}s{:>10}",
            name,
            clean.virtual_seconds,
            attacked.virtual_seconds,
            attacked.vm_restarts + attacked.memhog_restarts
        );
    }
    println!(
        "\nKaffeOS kills and restarts only the hog; the shared JVM crashes\n\
         wholesale and pays a full JVM boot per crash; one-JVM-per-servlet\n\
         isolates but pays a boot per servlet (and thrashes at scale)."
    );
}
