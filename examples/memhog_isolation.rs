//! The paper's headline demo: a denial-of-service MemHog cannot take down
//! its neighbours under KaffeOS, but wrecks a monolithic JVM.
//!
//! Run with: `cargo run --release --example memhog_isolation`

use kaffeos::{Engine, ExitStatus, KaffeOs, KaffeOsConfig};

const MEMHOG: &str = r#"
class MemHogChunk { int[] data; MemHogChunk next; }
class MemHog {
    static int main() {
        MemHogChunk head = null;
        while (true) {
            MemHogChunk c = new MemHogChunk();
            c.data = new int[2048];
            c.next = head;
            head = c;
        }
        return 0;
    }
}
"#;

const WORKER: &str = r#"
class Main {
    static int main(int n) {
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) {
            String s = "job-" + i;
            acc = acc + s.len();
        }
        Sys.print("worker finished " + n + " jobs");
        return 0;
    }
}
"#;

fn status_word(status: Option<ExitStatus>) -> String {
    match status {
        Some(ExitStatus::Exited(code)) => format!("exited({code})"),
        Some(ExitStatus::Killed) => "killed".to_string(),
        Some(ExitStatus::CpuLimitExceeded) => "killed: CPU budget exhausted".to_string(),
        Some(ExitStatus::UncaughtException { class, .. }) => format!("crashed: {class}"),
        None => "still running".to_string(),
    }
}

fn main() {
    println!("== KaffeOS: per-process heaps and memory limits ==");
    let mut os = KaffeOs::new(KaffeOsConfig::default());
    os.register_image("memhog", MEMHOG).unwrap();
    os.register_image("worker", WORKER).unwrap();
    let hog = os.spawn("memhog", "", Some(2 << 20)).unwrap();
    let worker = os.spawn("worker", "60000", Some(2 << 20)).unwrap();
    os.run(None);
    println!("  memhog: {}", status_word(os.status(hog)));
    println!("  worker: {}", status_word(os.status(worker)));
    for line in os.stdout(worker) {
        println!("  worker> {line}");
    }
    println!(
        "  -> the hog died alone; its {}-cycle GC bill was charged to it, not the worker\n",
        os.cpu(hog).gc
    );

    println!("== Monolithic JVM: one shared heap, no limits ==");
    let mut os = KaffeOs::new(KaffeOsConfig::monolithic(Engine::JIT_IBM, 2 << 20));
    os.register_image("memhog", MEMHOG).unwrap();
    os.register_image("worker", WORKER).unwrap();
    let hog = os.spawn("memhog", "", None).unwrap();
    let worker = os.spawn("worker", "60000", None).unwrap();
    os.run(None);
    println!("  memhog: {}", status_word(os.status(hog)));
    println!("  worker: {}", status_word(os.status(worker)));
    println!(
        "  worker's GC bill: {} cycles — it paid to collect a heap full of \
         the hog's litter",
        os.cpu(worker).gc
    );
    println!(
        "  -> without isolation there is no per-process accounting: whoever \
         allocates next\n     pays the collection (and, in a tighter race, \
         takes the OutOfMemoryError)"
    );
}
