//! Multi-tenant resource policy: one VM hosting tenants with different
//! memory limits (soft and hard/reserved), CPU budgets, and CPU shares —
//! the "CPU and memory limits can be placed on the process, and the
//! process can be killed if it is uncooperative" story of §1.
//!
//! Run with: `cargo run --release --example multi_tenant`

use kaffeos::{ExitStatus, KaffeOs, KaffeOsConfig, SpawnOpts};

const TENANT: &str = r#"
class Main {
    static int main(int weight) {
        int done = 0;
        while (true) {
            // A unit of tenant work: build and hash a small report.
            String report = "tenant report ";
            for (int i = 0; i < 20; i = i + 1) {
                report = report + (done * 31 + i) % 97;
            }
            done = done + 1;
            if (report.len() < 5) { return -1; }
        }
        return done;
    }
}
"#;

fn main() {
    let mut os = KaffeOs::new(KaffeOsConfig::default());
    os.register_image("tenant", TENANT).unwrap();

    // Bronze: small soft limit, small CPU share, tight CPU budget.
    let bronze = os
        .spawn_with(
            "tenant",
            "1",
            SpawnOpts {
                mem_limit: Some(1 << 20),
                cpu_share: 50,
                cpu_limit: Some(20_000_000),
                ..SpawnOpts::default()
            },
        )
        .unwrap();
    // Silver: default share.
    let silver = os
        .spawn_with(
            "tenant",
            "2",
            SpawnOpts {
                mem_limit: Some(4 << 20),
                cpu_share: 100,
                ..SpawnOpts::default()
            },
        )
        .unwrap();
    // Gold: triple share plus a hard (reserved) memory limit.
    let gold = os
        .spawn_with(
            "tenant",
            "3",
            SpawnOpts {
                mem_limit: Some(16 << 20),
                mem_hard: true,
                cpu_share: 300,
                ..SpawnOpts::default()
            },
        )
        .unwrap();

    let root = os.space().root_memlimit();
    println!(
        "machine budget in use after spawning (gold's 16 MB is reserved): {} MB",
        os.space().limits().current(root) >> 20
    );

    // Run a fixed window of machine time.
    os.run(Some(250_000_000));

    println!("\nafter a 0.5 s (virtual) window:");
    for (name, pid) in [("bronze", bronze), ("silver", silver), ("gold", gold)] {
        let cpu = os.cpu(pid);
        let status = match os.status(pid) {
            Some(ExitStatus::CpuLimitExceeded) => "killed: CPU budget exhausted".to_string(),
            Some(other) => format!("{other:?}"),
            None => "running".to_string(),
        };
        println!(
            "  {name:<7} share-weighted cpu = {:>9} cycles   {status}",
            cpu.total()
        );
    }
    println!(
        "\ngold received ~3x silver's CPU (weighted scheduling); bronze hit its\n\
         20M-cycle budget and was killed safely — its memory was reclaimed."
    );
    for pid in [silver, gold] {
        os.kill(pid).unwrap();
    }
    os.run(None);
    os.kernel_gc();
    println!(
        "machine budget in use after teardown: {} bytes",
        os.space().limits().current(root)
    );
}
