//! Direct sharing: a producer/consumer pipeline communicating through a
//! frozen shared heap (§2, "Direct sharing between processes").
//!
//! The producer creates a shared heap of `Slot` objects (a ring buffer),
//! freezes it, and streams integers through the mutable *primitive* fields;
//! the consumer looks the heap up, reads the values, and prints a digest.
//! Reference fields of shared objects are immutable after the freeze —
//! uncomment nothing here, but see the `frozen_reference_fields_*` kernel
//! test for the SegmentationViolation this would raise.
//!
//! Run with: `cargo run --release --example shared_heap_pipeline`

use kaffeos::{KaffeOs, KaffeOsConfig};

/// Shared message types come from the central shared namespace so both
/// processes agree on them (§3.1).
const SHARED_TYPES: &str = r#"
class Slot {
    int seq;      // sequence number; 0 = empty
    int payload;
}
"#;

const PRODUCER: &str = r#"
class Main {
    static int main(int count) {
        int ring = 8;
        Shm.create("pipe", "Slot", ring);
        for (int i = 0; i < count; i = i + 1) {
            Slot s = Shm.get("pipe", i % ring) as Slot;
            // Wait for the consumer to drain the slot.
            while (s.seq != 0) { Sys.yield(); }
            s.payload = i * i;
            s.seq = i + 1;
        }
        Sys.print("producer: sent " + count + " messages");
        // Signal end-of-stream.
        Slot s = Shm.get("pipe", count % ring) as Slot;
        while (s.seq != 0) { Sys.yield(); }
        s.payload = -1;
        s.seq = count + 1;
        return 0;
    }
}
"#;

const CONSUMER: &str = r#"
class Main {
    static int main() {
        while (Shm.lookup("pipe") < 0) { Sys.yield(); }
        int ring = 8;
        int expect = 1;
        int sum = 0;
        while (true) {
            Slot s = Shm.get("pipe", (expect - 1) % ring) as Slot;
            while (s.seq != expect) { Sys.yield(); }
            int v = s.payload;
            s.seq = 0; // release the slot
            if (v == -1) { break; }
            sum = (sum + v) % 1000003;
            expect = expect + 1;
        }
        Sys.print("consumer: digest = " + sum);
        return sum;
    }
}
"#;

fn main() {
    let mut os = KaffeOs::new(KaffeOsConfig::default());
    os.load_shared_source(SHARED_TYPES).unwrap();
    os.register_image("producer", PRODUCER).unwrap();
    os.register_image("consumer", CONSUMER).unwrap();

    let producer = os.spawn("producer", "100", None).unwrap();
    let consumer = os.spawn("consumer", "", None).unwrap();
    os.run(None);

    for pid in [producer, consumer] {
        for line in os.stdout(pid) {
            println!("{line}");
        }
    }
    println!("producer status: {:?}", os.status(producer));
    println!("consumer status: {:?}", os.status(consumer));

    // Both sharers were charged the full heap size while attached; now
    // that both exited, the heap is orphaned and the kernel collector
    // merges and reclaims it.
    println!(
        "shared heaps registered before kernel GC: {}",
        os.shm_registry().len()
    );
    os.kernel_gc();
    println!(
        "shared heaps registered after kernel GC:  {} (orphan merged and reclaimed)",
        os.shm_registry().len()
    );
}
