//! Event-stream semantics: the trace must tell the story of a shared
//! heap's life in order (freeze → attach → detach-on-kill → orphan), carry
//! monotonic sequence numbers and clocks, and record *nothing* — not one
//! event, not one closure — when tracing is disabled.

use kaffeos::trace::Payload;
use kaffeos::{KaffeOs, KaffeOsConfig};

fn build_os(trace: bool) -> KaffeOs {
    let mut os = KaffeOs::new(KaffeOsConfig {
        trace,
        ..KaffeOsConfig::default()
    });
    os.load_shared_source("class Cell { int value; }").unwrap();
    os.register_image(
        "creator",
        r#"class Main {
               static int main() {
                   Shm.create("box", "Cell", 4);
                   while (true) { }
                   return 0;
               }
           }"#,
    )
    .unwrap();
    os.register_image(
        "sharer",
        r#"class Main {
               static int main() {
                   Shm.lookup("box");
                   while (true) { }
                   return 0;
               }
           }"#,
    )
    .unwrap();
    os
}

/// Freeze, attach (creator then sharer), kill-while-attached (the reap
/// detaches), and finally the orphan merge by the kernel collector — the
/// trace must contain exactly this sequence for the heap, in this order.
#[test]
fn shm_lifecycle_events_appear_in_order() {
    let mut os = build_os(true);
    let creator = os.spawn("creator", "", Some(1 << 20)).unwrap();
    os.run(Some(os.clock() + 5_000_000));
    assert!(os.shm_registry().contains("box"), "creator froze the heap");

    let sharer = os.spawn("sharer", "", Some(1 << 20)).unwrap();
    os.run(Some(os.clock() + 5_000_000));

    // Kill the sharer while it is attached: its reap credits the charge
    // and must record the detach.
    os.kill(sharer).unwrap();
    os.run(Some(os.clock() + 5_000_000));
    assert!(!os.is_alive(sharer), "sharer dies at a safe point");

    os.kill(creator).unwrap();
    os.run(Some(os.clock() + 5_000_000));
    assert!(!os.is_alive(creator));

    // Last sharer gone: the kernel collector merges the orphan.
    os.kernel_gc();
    os.audit().expect("lifecycle run audits clean");
    assert_eq!(os.shm_registry().len(), 0, "orphan was merged");

    let lifecycle: Vec<(u32, String)> = os
        .trace_events()
        .iter()
        .filter_map(|e| match &e.payload {
            Payload::ShmFrozen { name, bytes } => {
                assert!(*bytes > 0, "frozen heap has a size");
                Some((e.pid, format!("frozen:{name}")))
            }
            Payload::ShmAttached { name } => Some((e.pid, format!("attached:{name}"))),
            Payload::ShmDetached { name } => Some((e.pid, format!("detached:{name}"))),
            Payload::ShmOrphaned { name } => Some((e.pid, format!("orphaned:{name}"))),
            _ => None,
        })
        .collect();
    assert_eq!(
        lifecycle,
        vec![
            (creator.0, "frozen:box".to_string()),
            (creator.0, "attached:box".to_string()),
            (sharer.0, "attached:box".to_string()),
            (sharer.0, "detached:box".to_string()),
            (creator.0, "detached:box".to_string()),
            (0, "orphaned:box".to_string()),
        ],
        "shared-heap lifecycle out of order"
    );
}

/// Sequence numbers are gapless from zero and timestamps never go
/// backwards — the ordering contract every consumer of the trace relies on.
#[test]
fn sequence_numbers_are_gapless_and_clocks_monotonic() {
    let mut os = build_os(true);
    let creator = os.spawn("creator", "", Some(1 << 20)).unwrap();
    os.run(Some(os.clock() + 5_000_000));
    os.kill(creator).unwrap();
    os.run(Some(os.clock() + 5_000_000));
    os.kernel_gc();

    let events = os.trace_events();
    assert!(events.len() > 20, "expected a substantial stream");
    let mut last_at = 0u64;
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.seq, i as u64, "sequence numbers must be gapless");
        assert!(
            e.at >= last_at,
            "event {i} at clock {} after clock {last_at}",
            e.at
        );
        last_at = e.at;
    }
}

/// With tracing off (the default), the kernel records nothing at all: no
/// events, no metrics, empty exports. Combined with the sink's
/// closure-skipping `emit_with`, the disabled path does zero work.
#[test]
fn disabled_tracing_records_nothing() {
    let mut os = build_os(false);
    let creator = os.spawn("creator", "", Some(1 << 20)).unwrap();
    os.run(Some(os.clock() + 5_000_000));
    os.kill(creator).unwrap();
    os.run(Some(os.clock() + 5_000_000));
    os.kernel_gc();
    os.audit().expect("untraced run audits clean");

    assert!(!os.trace_enabled());
    assert!(os.trace_events().is_empty());
    let metrics = os.metrics();
    assert_eq!(metrics.events_recorded, 0);
    assert_eq!(metrics.events_dropped, 0);
    assert!(metrics.per_process.is_empty());
    assert!(metrics.net_bytes_by_node.is_empty());
    assert_eq!(os.trace_jsonl(), "");
    assert_eq!(
        os.trace_chrome(),
        "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n"
    );
}

/// The ring is bounded: a tiny capacity drops the oldest events but the
/// incremental metrics stay exact, and the retained window is the newest
/// `capacity` events.
#[test]
fn bounded_ring_drops_oldest_but_metrics_stay_exact() {
    let mut os = KaffeOs::new(KaffeOsConfig {
        trace: true,
        trace_capacity: 32,
        ..KaffeOsConfig::default()
    });
    os.register_image(
        "churn",
        r#"class Main {
               static int main() {
                   int acc = 0;
                   for (int i = 0; i < 500; i = i + 1) {
                       int[] junk = new int[64];
                       acc = acc + junk[0] + i;
                   }
                   return acc;
               }
           }"#,
    )
    .unwrap();
    let pid = os.spawn("churn", "", Some(1 << 20)).unwrap();
    os.run(Some(os.clock() + 100_000_000));
    assert!(!os.is_alive(pid));

    let metrics = os.metrics();
    let events = os.trace_events();
    assert_eq!(events.len(), 32, "ring holds exactly its capacity");
    assert!(
        metrics.events_dropped > 0,
        "the workload must overflow a 32-event ring"
    );
    assert_eq!(
        metrics.events_recorded,
        metrics.events_dropped + events.len() as u64
    );
    // The retained window is the tail of the stream: consecutive seqs
    // ending at the last recorded event.
    let first_seq = events[0].seq;
    assert_eq!(first_seq, metrics.events_dropped, "oldest events dropped");
    // Exactness under overflow: the per-process counters still cover the
    // early events the ring dropped.
    let pm = metrics.per_process.get(&pid.0).expect("process was traced");
    assert!(pm.exited);
    assert!(
        pm.charges as usize > events.len(),
        "metrics must count charges beyond the retained window \
         ({} charges, {} retained events)",
        pm.charges,
        events.len()
    );
}
