//! Acceptance suite for the template-JIT tier and the process-shared code
//! cache: the procfs/top observability surface, cache lifecycle
//! (deterministic eviction, invalidation on class reload), and registry
//! conservation under the seeded kill-storm fault sweep.
//!
//! Everything here is host observability layered over a virtual machine
//! whose *virtual* behaviour the tier must not perturb; the differential
//! oracle in `kaffeos-workloads` checks that side. These tests check the
//! tier's own bookkeeping: counters that reach procfs, refcounts in the
//! shared registry, and the auditor's cache-conservation pass.

use kaffeos::{FaultPlan, KaffeOs, KaffeOsConfig, Pid};
use kaffeos_vm::JitConfig;

/// A kernel with the tier pinned on (threshold 64) regardless of the
/// `KAFFEOS_JIT` environment, so the suite is hermetic.
fn build_os(cache_bytes: u64) -> KaffeOs {
    KaffeOs::new(KaffeOsConfig {
        jit: JitConfig {
            enabled: true,
            threshold: 64,
            cache_bytes,
        },
        ..KaffeOsConfig::default()
    })
}

/// A program whose helper goes hot (20 000 invocations ≫ threshold) and
/// then reads its own procfs status from guest code.
const INSPECTOR: &str = r#"
    class Main {
        static int work(int i) { return i * 3 + 1; }
        static int main() {
            int acc = 0;
            for (int i = 0; i < 20000; i = i + 1) { acc = acc + work(i); }
            Sys.print(Proc.status(Proc.self_pid()));
            return acc;
        }
    }
"#;

/// A hot image parameterised by `k` so each variant has distinct class
/// bytes — and therefore a distinct set of shared-cache keys.
fn hot_image(k: u64) -> String {
    format!(
        "class Main {{
            static int work(int i) {{ return i * {} + {k}; }}
            static int main() {{
                int acc = 0;
                for (int i = 0; i < 20000; i = i + 1) {{ acc = acc + work(i); }}
                return acc;
            }}
        }}",
        k + 2
    )
}

fn parse_status_counter(stdout: &str, key: &str) -> u64 {
    let line = stdout
        .lines()
        .find(|l| l.starts_with(key))
        .unwrap_or_else(|| panic!("status lacks {key} line:\n{stdout}"));
    line[key.len()..].trim().parse().unwrap_or_else(|e| {
        panic!("status {key} value does not parse ({e}):\n{stdout}")
    })
}

/// Satellite: the per-process JIT counters round-trip through the guest's
/// own `proc.status` read — no privileged channel involved.
#[test]
fn jit_procfs_round_trips_from_guest() {
    let mut os = build_os(1 << 20);
    os.register_image("inspector", INSPECTOR).unwrap();
    let pid = os.spawn("inspector", "", Some(1 << 20)).unwrap();
    os.run(None);
    assert!(!os.is_alive(pid), "inspector must run to completion");

    let stdout = os.stdout(pid).join("\n");
    let compiled = parse_status_counter(&stdout, "jit_compiled:");
    let bytes = parse_status_counter(&stdout, "jit_bytes:");
    assert!(compiled >= 1, "hot loop must have tiered up:\n{stdout}");
    assert!(bytes > 0, "attached bodies must account bytes:\n{stdout}");
    // Present even when zero: a procfs file is a stable surface.
    parse_status_counter(&stdout, "jit_cache_hits:");
    parse_status_counter(&stdout, "jit_shared_reuse:");

    // The kernel-side view agrees with what the guest printed (counters
    // are monotone and the process did not tier further after printing).
    let stats = os.jit_stats(pid).expect("stats for a known pid");
    assert_eq!(stats.compiled, compiled);
    assert_eq!(stats.bytes, bytes);
}

/// Satellite: `kaffeos-top` carries a JIT column (`compiled+reuse`), and a
/// second process of the same image shows shared reuse in it.
#[test]
fn top_column_shows_compiles_and_shared_reuse() {
    let mut os = build_os(1 << 20);
    os.register_image("hot", &hot_image(1)).unwrap();
    let a = os.spawn("hot", "", Some(1 << 20)).unwrap();
    let b = os.spawn("hot", "", Some(1 << 20)).unwrap();
    os.run(None);

    let sa = os.jit_stats(a).unwrap();
    let sb = os.jit_stats(b).unwrap();
    assert!(sa.compiled + sb.compiled >= 1, "someone must compile");
    assert!(
        sa.reuse + sb.reuse >= 1,
        "the second process must reuse the shared body: {sa:?} {sb:?}"
    );
    // Each hot method was compiled exactly once across both processes.
    assert_eq!(
        sa.compiled + sb.compiled,
        os.jit_cache_stats().compiles,
        "per-process compiles must sum to the cache's total"
    );

    let top = os.top_text();
    let header = top.lines().next().unwrap_or("");
    assert!(header.contains("JIT"), "top header lacks JIT column:\n{top}");
    for (pid, s) in [(a, sa), (b, sb)] {
        let row = top
            .lines()
            .find(|l| l.trim_start().starts_with(&pid.0.to_string()))
            .unwrap_or_else(|| panic!("no top row for {pid:?}:\n{top}"));
        assert!(
            row.contains(&format!("{}+{}", s.compiled, s.reuse)),
            "top row lacks the compiled+reuse cell for {pid:?}:\n{top}"
        );
    }
}

/// Runs the six distinct hot images sequentially on one kernel and returns
/// `(final snapshot debug, evictions, bytes, capacity)`.
fn eviction_run(cache_bytes: u64) -> (String, u64, u64, u64) {
    let mut os = build_os(cache_bytes);
    for k in 0..6u64 {
        let name = format!("hot{k}");
        os.register_image(&name, &hot_image(k)).unwrap();
        os.spawn(&name, "", Some(1 << 20)).unwrap();
        os.run(None);
    }
    let (_, bytes, capacity) = os.jit_cache_usage();
    (
        format!("{:?}", os.jit_cache_snapshot()),
        os.jit_cache_stats().evictions,
        bytes,
        capacity,
    )
}

/// Satellite: eviction under byte pressure is LRU in key order, never
/// touches referenced bodies, and replays identically.
#[test]
fn eviction_is_deterministic_and_lru() {
    // Calibrate: measure the uncontended footprint of the six images, then
    // rerun with room for roughly two and a half of them.
    let (_, evictions, all_bytes, _) = eviction_run(u64::MAX);
    assert_eq!(evictions, 0, "uncontended run must not evict");
    assert!(all_bytes > 0);
    let capacity = all_bytes * 5 / 12;

    let (snap_a, evictions, bytes, cap) = eviction_run(capacity);
    assert!(evictions >= 1, "constrained run must evict");
    assert!(
        bytes <= cap,
        "cache must end within capacity: {bytes} > {cap}"
    );
    // LRU: the oldest images' bodies (creators 1..=3, long unreferenced)
    // are the victims; the most recent images survive.
    let mut os = build_os(capacity);
    for k in 0..6u64 {
        let name = format!("hot{k}");
        os.register_image(&name, &hot_image(k)).unwrap();
        os.spawn(&name, "", Some(1 << 20)).unwrap();
        os.run(None);
    }
    let snapshot = os.jit_cache_snapshot();
    assert!(
        snapshot.iter().all(|(_, _, _, creator)| *creator > 3),
        "LRU must evict the oldest processes' bodies first: {snapshot:?}"
    );
    assert!(
        snapshot.iter().any(|(_, _, _, creator)| *creator == 6),
        "the newest image's bodies must survive: {snapshot:?}"
    );
    // All processes are dead, so every surviving entry is unreferenced
    // (warm cache) — that is what makes it evictable next time.
    assert!(snapshot.iter().all(|(_, refs, _, _)| *refs == 0));

    // Byte-identical replay: eviction order is a pure function of the
    // program sequence.
    let (snap_b, _, _, _) = eviction_run(capacity);
    assert_eq!(snap_a, snap_b, "eviction order must replay identically");
}

/// Satellite: reloading a shared class invalidates stale bodies (the
/// analyzer's verdicts changed under them), the process re-tiers, and the
/// run finishes with the right answer and a clean audit.
#[test]
fn class_reload_invalidates_and_retiers() {
    let mut os = build_os(1 << 20);
    os.load_shared_source("class Box { Box next; int v; }").unwrap();
    os.register_image(
        "writer",
        r#"
        class Main {
            static int main() {
                Box b = new Box();
                b.next = new Box();
                int acc = 0;
                for (int i = 0; i < 2000000; i = i + 1) {
                    Box t = b.next;
                    b.next = t;
                    acc = acc + 1;
                }
                int acc2 = 0;
                for (int i = 0; i < 5000; i = i + 1) {
                    Box t = b.next;
                    b.next = t;
                    acc2 = acc2 + 1;
                }
                return acc + acc2;
            }
        }
        "#,
    )
    .unwrap();
    let pid = os.spawn("writer", "", Some(1 << 20)).unwrap();

    // Run until tier-up has fired but the program is still mid-loop.
    os.run(Some(5_000_000));
    assert!(os.is_alive(pid), "writer must still be running");
    let mid = os.jit_stats(pid).unwrap();
    assert!(mid.compiled >= 1, "writer must have tiered up: {mid:?}");
    assert_eq!(os.jit_cache_stats().invalidations, 0);

    // Reload: a new shared class that stores a shared-heap object into
    // `Box.next` flips the analyzer's verdict for that site, changing the
    // fingerprint under the compiled body.
    os.load_shared_source(
        r#"
        class Raiser {
            static int poke(Box b) {
                b.next = Shm.get("x", 0) as Box;
                return 0;
            }
        }
        "#,
    )
    .unwrap();
    assert!(
        os.jit_cache_stats().invalidations >= 1,
        "reload must invalidate the stale body"
    );

    // The process re-tiers on the fresh key and finishes correctly.
    os.run(None);
    assert_eq!(
        os.status(pid),
        Some(kaffeos::ExitStatus::Exited(2_005_000)),
        "writer must finish with the loop total"
    );
    let end = os.jit_stats(pid).unwrap();
    assert!(
        end.compiled > mid.compiled,
        "writer must have re-tiered after the invalidation: {mid:?} -> {end:?}"
    );
    os.audit().expect("audit after reload + retier");
}

/// A guest that exercises both sharpened shapes — a monomorphic virtual
/// call and a frame-local `sync` — hot enough to tier up, then prints its
/// own procfs status so the analysis counters round-trip unprivileged.
const ANALYSIS_INSPECTOR: &str = r#"
    class Worker {
        int v;
        int bump(int d) { return this.v + d; }
    }
    class Main {
        static int main() {
            int acc = 0;
            for (int i = 0; i < 20000; i = i + 1) {
                Worker w = new Worker();
                w.v = i;
                acc = acc + w.bump(1);
                Object lock = new Object();
                sync (lock) { acc = acc + 1; }
            }
            Sys.print(Proc.status(Proc.self_pid()));
            return acc % 1000000007;
        }
    }
"#;

/// Tentpole observability: `devirt_calls` and `monitors_elided` reach
/// `proc.status` (read from guest code, no privileged channel), agree with
/// the kernel-side view, and surface in the `kaffeos-top` column.
#[test]
fn analysis_counters_round_trip_through_procfs_and_top() {
    let mut os = build_os(1 << 20);
    os.register_image("inspector", ANALYSIS_INSPECTOR).unwrap();
    let pid = os.spawn("inspector", "", Some(1 << 20)).unwrap();
    os.run(None);
    assert!(!os.is_alive(pid), "inspector must run to completion");

    let stdout = os.stdout(pid).join("\n");
    let devirt = parse_status_counter(&stdout, "devirt_calls:");
    let elided = parse_status_counter(&stdout, "monitors_elided:");
    assert!(devirt >= 1, "hot monomorphic call must devirtualize:\n{stdout}");
    assert!(elided >= 2, "frame-local sync must elide both ops:\n{stdout}");
    assert_eq!(elided % 2, 0, "enter/exit elisions must pair up:\n{stdout}");

    // Kernel-side agreement: the guest printed mid-run, so the kernel's
    // final (monotone) counters can only be larger.
    let (k_devirt, k_elided) = os.analysis_counters(pid).expect("pid is known");
    assert!(k_devirt >= devirt, "{k_devirt} < printed {devirt}");
    assert!(k_elided >= elided, "{k_elided} < printed {elided}");

    let top = os.top_text();
    let header = top.lines().next().unwrap_or("");
    assert!(
        header.contains("DEVIRT/ELIDE"),
        "top header lacks the DEVIRT/ELIDE column:\n{top}"
    );
    let row = top
        .lines()
        .find(|l| l.trim_start().starts_with(&pid.0.to_string()))
        .unwrap_or_else(|| panic!("no top row for {pid:?}:\n{top}"));
    assert!(
        row.contains(&format!("{k_devirt}/{k_elided}")),
        "top row lacks the devirt/elided cell ({k_devirt}/{k_elided}):\n{top}"
    );
}

/// Tentpole soundness: loading an override for a devirtualized target
/// invalidates every compiled body that embedded the direct call, the
/// process re-tiers against the now-polymorphic site, and the answer and
/// registry audit stay clean.
#[test]
fn override_load_invalidates_devirtualized_bodies() {
    let mut os = build_os(1 << 20);
    os.load_shared_source("class Box { int v; int get() { return this.v; } }")
        .unwrap();
    os.register_image(
        "caller",
        r#"
        class Main {
            static int main() {
                Box b = new Box();
                b.v = 1;
                int acc = 0;
                for (int i = 0; i < 2000000; i = i + 1) { acc = acc + b.get(); }
                int acc2 = 0;
                for (int i = 0; i < 5000; i = i + 1) { acc2 = acc2 + b.get(); }
                return acc + acc2;
            }
        }
        "#,
    )
    .unwrap();
    let pid = os.spawn("caller", "", Some(1 << 20)).unwrap();

    // Run until tier-up has fired but the program is still mid-loop; the
    // hot call must be running devirtualized.
    os.run(Some(5_000_000));
    assert!(os.is_alive(pid), "caller must still be running");
    let mid = os.jit_stats(pid).unwrap();
    assert!(mid.compiled >= 1, "caller must have tiered up: {mid:?}");
    assert_eq!(os.jit_cache_stats().invalidations, 0);
    let (devirt_mid, _) = os.analysis_counters(pid).expect("pid is known");
    assert!(devirt_mid >= 1, "hot `b.get()` must be devirtualized");

    // Load an override: `Box.get` is no longer the only reachable target,
    // so the CHA fingerprint under every body that embedded the direct
    // call has changed.
    os.load_shared_source("class Box2 extends Box { int get() { return this.v + 1; } }")
        .unwrap();
    assert!(
        os.jit_cache_stats().invalidations >= 1,
        "override load must invalidate the devirtualized body"
    );

    // The receiver is still a `Box`, so the answer is unchanged — the
    // site just runs through the vtable (or a re-tiered body) again.
    os.run(None);
    assert_eq!(
        os.status(pid),
        Some(kaffeos::ExitStatus::Exited(2_005_000)),
        "caller must finish with the loop total"
    );
    let end = os.jit_stats(pid).unwrap();
    assert!(
        end.compiled > mid.compiled,
        "caller must re-tier after the invalidation: {mid:?} -> {end:?}"
    );
    os.audit().expect("audit after override load + retier");
}

/// Satellite: the 8-seed kill-storm sweep. Processes holding shared bodies
/// are killed at seeded quantum boundaries; afterwards the audit's
/// cache-registry conservation pass must hold, every surviving entry must
/// be unreferenced, and identical seeds must replay to identical
/// registries.
#[test]
fn kill_storm_conserves_the_cache_registry() {
    let mut total_kills = 0;
    for seed in 0..8u64 {
        let run = |seed: u64| {
            let mut os = build_os(1 << 20);
            os.register_image("hot", &hot_image(7)).unwrap();
            for _ in 0..3 {
                os.spawn("hot", "", Some(1 << 20)).unwrap();
            }
            os.install_faults(FaultPlan::from_seed(seed));
            os.run(None);
            for pid in [Pid(1), Pid(2), Pid(3)] {
                let _ = os.kill(pid);
            }
            os.run(None);
            let report = match os.audit() {
                Ok(r) => r,
                Err(v) => panic!("seed {seed:#x}: audit failed: {v}"),
            };
            let snapshot = os.jit_cache_snapshot();
            assert!(
                snapshot.iter().all(|(_, refs, _, _)| *refs == 0),
                "seed {seed:#x}: dead processes left references: {snapshot:?}"
            );
            (format!("{snapshot:?}"), report.kills_injected)
        };
        let (snap_a, kills) = run(seed);
        let (snap_b, kills_b) = run(seed);
        assert_eq!(snap_a, snap_b, "seed {seed:#x}: registry must replay");
        assert_eq!(kills, kills_b, "seed {seed:#x}: kill count must replay");
        total_kills += kills;
    }
    assert!(
        total_kills > 0,
        "the sweep must actually kill someone across 8 seeds"
    );
}
