//! Policy tests for the tenant engine: admission caps reject
//! deterministically, queued spawns launch FIFO, supervised restarts
//! follow the exact backoff ladder across fault seeds, the kill-storm
//! circuit breaker opens and closes at its documented thresholds, and
//! graceful degradation sheds by priority and restores on relief.

use kaffeos::{
    Admission, ExitCause, FaultPlan, KaffeOs, KaffeOsConfig, KernelError, OverloadPolicy,
    RestartPolicy, SpawnOpts, TenantId, TenantPolicy,
};

const CRASH_SOURCE: &str = r#"
class Main {
    static int main() {
        int[] a = new int[2];
        return a[5];
    }
}
"#;

const BRIEF_SOURCE: &str = "class Main { static int main() { return 7; } }";

const SPIN_SOURCE: &str = "class Spin { static int main() { while (true) { } return 0; } }";

fn build_os() -> KaffeOs {
    let mut os = KaffeOs::new(KaffeOsConfig::default());
    os.register_image("crash", CRASH_SOURCE).unwrap();
    os.register_image("brief", BRIEF_SOURCE).unwrap();
    os.register_image("spin", SPIN_SOURCE).unwrap();
    os
}

/// Runs one cap-overflow episode and returns what the third spawn said.
fn cap_episode() -> (TenantId, Result<Admission, KernelError>, String) {
    let mut os = build_os();
    let t = os.create_tenant(
        "capped",
        TenantPolicy {
            max_procs: 2,
            queue_capacity: 0,
            ..TenantPolicy::default()
        },
    );
    for _ in 0..2 {
        match os.spawn_for_tenant(t, "spin", "", SpawnOpts::default()) {
            Ok(Admission::Admitted(_)) => {}
            other => panic!("below the cap must admit, got {other:?}"),
        }
    }
    let third = os.spawn_for_tenant(t, "spin", "", SpawnOpts::default());
    let stats = format!("{:?}", os.tenant_stats(t).unwrap());
    (t, third, stats)
}

#[test]
fn cap_rejects_with_typed_error_and_exact_fields() {
    let (t, third, _) = cap_episode();
    match third {
        Err(KernelError::AdmissionRejected { tenant, live, cap }) => {
            assert_eq!(tenant, t);
            assert_eq!(live, 2);
            assert_eq!(cap, 2);
        }
        other => panic!("expected AdmissionRejected, got {other:?}"),
    }
}

#[test]
fn cap_rejection_is_deterministic_across_fresh_kernels() {
    let (_, a, sa) = cap_episode();
    let (_, b, sb) = cap_episode();
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert_eq!(sa, sb, "stats snapshots must match byte for byte");
}

#[test]
fn queued_admissions_launch_fifo_in_ticket_order() {
    let run = || {
        let mut os = build_os();
        let t = os.create_tenant(
            "queued",
            TenantPolicy {
                max_procs: 1,
                queue_capacity: 2,
                ..TenantPolicy::default()
            },
        );
        match os.spawn_for_tenant(t, "brief", "", SpawnOpts::default()) {
            Ok(Admission::Admitted(_)) => {}
            other => panic!("first spawn must admit, got {other:?}"),
        }
        let mut tickets = Vec::new();
        for _ in 0..2 {
            match os.spawn_for_tenant(t, "brief", "", SpawnOpts::default()) {
                Ok(Admission::Queued { ticket }) => tickets.push(ticket),
                other => panic!("at the cap with queue room must queue, got {other:?}"),
            }
        }
        assert_eq!(tickets, vec![0, 1]);
        // A third queued spawn overflows the bounded queue.
        match os.spawn_for_tenant(t, "brief", "", SpawnOpts::default()) {
            Err(KernelError::AdmissionRejected { .. }) => {}
            other => panic!("queue overflow must reject, got {other:?}"),
        }
        os.run(Some(200_000_000));
        let launches = os.drain_tenant_launches();
        let stats = *os.tenant_stats(t).unwrap();
        (launches, stats)
    };
    let (launches, stats) = run();
    assert_eq!(
        launches.iter().map(|l| l.ticket).collect::<Vec<_>>(),
        vec![Some(0), Some(1)],
        "queued spawns launch in ticket order"
    );
    assert!(
        launches.windows(2).all(|w| w[0].at <= w[1].at),
        "launch times are monotonic"
    );
    assert_eq!(stats.admitted, 3);
    assert_eq!(stats.queued, 2);
    assert_eq!(stats.rejected_cap, 1);
    assert_eq!(stats.exits.get(ExitCause::Exited), 3);

    let (launches2, stats2) = run();
    assert_eq!(launches, launches2, "launches replay exactly");
    assert_eq!(stats, stats2);
}

#[test]
fn restart_backoff_is_exact_across_fault_seeds() {
    for seed in [1u64, 2, 3, 5, 8, 13, 21, 42] {
        let policy = TenantPolicy {
            max_procs: 1,
            queue_capacity: 0,
            restart: RestartPolicy {
                restart_on_failure: true,
                max_restarts: 6,
                backoff_base: 1_000_000,
                backoff_cap: 64_000_000,
                breaker_threshold: 0, // isolate the backoff ladder
                ..RestartPolicy::default()
            },
            ..TenantPolicy::default()
        };
        let mut os = build_os();
        os.install_faults(FaultPlan::from_seed(seed));
        let t = os.create_tenant("crashy", policy);
        match os.spawn_for_tenant(t, "crash", "", SpawnOpts::default()) {
            Ok(Admission::Admitted(_)) => {}
            other => panic!("seed {seed}: initial spawn must admit, got {other:?}"),
        }
        os.run(Some(1_000_000_000));

        let stats = *os.tenant_stats(t).unwrap();
        let log = os.tenant_restart_log(t);
        assert_eq!(
            log.len(),
            6,
            "seed {seed}: exactly max_restarts restarts are scheduled"
        );
        for (i, rec) in log.iter().enumerate() {
            assert_eq!(
                rec.attempt,
                i as u32 + 1,
                "seed {seed}: attempts count consecutive failures"
            );
            assert_eq!(
                rec.due - rec.scheduled_at,
                policy.restart.backoff_delay(rec.attempt),
                "seed {seed}: attempt {} waits exactly its backoff",
                rec.attempt
            );
            assert!(
                rec.launched_at.is_some_and(|at| at >= rec.due),
                "seed {seed}: attempt {} launched no earlier than due",
                rec.attempt
            );
        }
        assert_eq!(stats.restarts, 6, "seed {seed}: every scheduled restart ran");
        assert_eq!(
            stats.restarts_abandoned, 1,
            "seed {seed}: supervision gives up past max_restarts"
        );
        assert_eq!(
            stats.exits.failures(),
            stats.exits.total(),
            "seed {seed}: the crasher never exits cleanly"
        );
    }
}

#[test]
fn breaker_opens_at_threshold_and_closes_after_cooldown() {
    let policy = TenantPolicy {
        max_procs: 8,
        queue_capacity: 0,
        restart: RestartPolicy {
            restart_on_failure: false,
            breaker_threshold: 3,
            breaker_window: 1_000_000_000,
            breaker_cooldown: 50_000_000,
            ..RestartPolicy::default()
        },
        ..TenantPolicy::default()
    };
    let mut os = build_os();
    let t = os.create_tenant("stormy", policy);
    for _ in 0..2 {
        os.spawn_for_tenant(t, "crash", "", SpawnOpts::default())
            .unwrap();
    }
    os.run(Some(500_000_000));
    assert_eq!(os.tenant_stats(t).unwrap().exits.get(ExitCause::Exception), 2);
    assert!(
        os.tenant_breaker_open_until(t).is_none(),
        "two failures sit below the threshold"
    );

    os.spawn_for_tenant(t, "crash", "", SpawnOpts::default())
        .unwrap();
    os.run(Some(os.clock() + 500_000_000));
    let until = os
        .tenant_breaker_open_until(t)
        .expect("third failure in the window opens the breaker");
    assert_eq!(os.tenant_stats(t).unwrap().breaker_opens, 1);

    // While open: admissions rejected with the typed error.
    match os.spawn_for_tenant(t, "brief", "", SpawnOpts::default()) {
        Err(KernelError::AdmissionBreakerOpen { tenant, until: u }) => {
            assert_eq!(tenant, t);
            assert_eq!(u, until);
        }
        other => panic!("open breaker must reject, got {other:?}"),
    }
    assert_eq!(os.tenant_stats(t).unwrap().rejected_breaker, 1);

    // After the cooldown: the breaker closes and admissions resume.
    os.advance_clock_to(until);
    match os.spawn_for_tenant(t, "brief", "", SpawnOpts::default()) {
        Ok(Admission::Admitted(_)) => {}
        other => panic!("cooled-down breaker must admit, got {other:?}"),
    }
    assert!(os.tenant_breaker_open_until(t).is_none());
}

#[test]
fn overload_sheds_lowest_priority_and_restores_on_relief() {
    let mut os = build_os();
    os.set_overload_policy(Some(OverloadPolicy {
        shed_high_bytes: 3 << 20,
        shed_low_bytes: 1 << 20,
    }));
    let low = os.create_tenant(
        "best-effort",
        TenantPolicy {
            priority: 10,
            ..TenantPolicy::default()
        },
    );
    let high = os.create_tenant(
        "premium",
        TenantPolicy {
            priority: 100,
            ..TenantPolicy::default()
        },
    );
    let hard2mb = SpawnOpts {
        mem_limit: Some(2 << 20),
        mem_hard: true,
        ..SpawnOpts::default()
    };
    os.spawn_for_tenant(low, "spin", "", hard2mb).unwrap();
    let high_pid = match os.spawn_for_tenant(high, "spin", "", hard2mb).unwrap() {
        Admission::Admitted(pid) => pid,
        other => panic!("expected admit, got {other:?}"),
    };
    // Two hard 2 MB reservations cross the 3 MB high watermark: the
    // lowest-priority tenant is shed; the premium tenant keeps running.
    os.run(Some(os.clock() + 50_000_000));
    assert!(os.tenant_is_shed(low), "best-effort tenant is shed");
    assert!(!os.tenant_is_shed(high), "premium tenant survives");
    assert!(os.tenant_live_pids(low).is_empty(), "shed kills its procs");
    assert!(os.is_alive(high_pid));
    let low_stats = *os.tenant_stats(low).unwrap();
    assert_eq!(low_stats.sheds, 1);
    assert_eq!(low_stats.exits.get(ExitCause::Killed), 1);
    match os.spawn_for_tenant(low, "brief", "", SpawnOpts::default()) {
        Err(KernelError::AdmissionShed { tenant }) => assert_eq!(tenant, low),
        other => panic!("shed tenant must reject, got {other:?}"),
    }

    // Relief: the premium process exits, pressure falls under the low
    // watermark, the shed tenant is restored and admits again.
    os.kill(high_pid).unwrap();
    os.run(Some(os.clock() + 50_000_000));
    os.run(Some(os.clock() + 1_000_000));
    assert!(!os.tenant_is_shed(low), "relief restores the shed tenant");
    match os.spawn_for_tenant(low, "brief", "", SpawnOpts::default()) {
        Ok(Admission::Admitted(_)) => {}
        other => panic!("restored tenant must admit, got {other:?}"),
    }
}

#[test]
fn unknown_tenant_is_a_typed_error() {
    let mut os = build_os();
    match os.spawn_for_tenant(TenantId(9), "brief", "", SpawnOpts::default()) {
        Err(KernelError::UnknownTenant(t)) => assert_eq!(t, TenantId(9)),
        other => panic!("expected UnknownTenant, got {other:?}"),
    }
}
