//! Property tests for the kernel: arbitrary interleavings of spawns, kills,
//! scheduling, shared-heap traffic and kernel GC must never panic, must keep
//! every audited invariant, and tearing everything down must reclaim every
//! byte — the paper's "full reclamation of memory" as a whole-kernel
//! invariant.
//!
//! Op sequences come from a seeded SplitMix64 generator so every case
//! replays exactly; a failing case names its case number.

use kaffeos::{FaultPlan, KaffeOs, KaffeOsConfig, Pid, SpawnOpts};

/// Deterministic SplitMix64 sequence generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }
}

const IMAGES: &[(&str, &str)] = &[
    ("brief", "class Main { static int main() { return 1; } }"),
    (
        "churn",
        r#"
        class Main {
            static int main() {
                int acc = 0;
                for (int i = 0; i < 3000; i = i + 1) {
                    int[] junk = new int[200];
                    junk[0] = i;
                    acc = acc + junk[0] % 7;
                }
                return acc;
            }
        }
        "#,
    ),
    (
        "hog",
        r#"
        class Chain { int[] data; Chain next; }
        class Hog {
            static int main() {
                Chain head = null;
                while (true) {
                    Chain c = new Chain();
                    c.data = new int[512];
                    c.next = head;
                    head = c;
                }
                return 0;
            }
        }
        "#,
    ),
    (
        "spin",
        "class Spin { static int main() { while (true) { } return 0; } }",
    ),
    (
        "shmer",
        r#"
        class Main {
            static int main(int n) {
                try {
                    if (Shm.lookup("box") < 0) {
                        Shm.create("box", "Cell", 4);
                    }
                    Cell c = Shm.get("box", n % 4) as Cell;
                    c.value = n;
                    return c.value;
                } catch (Exception e) {
                    return -5;
                }
            }
        }
        "#,
    ),
    (
        "thrower",
        r#"
        class Main {
            static int main(int n) {
                if (n % 2 == 0) { return 1 / 0; }
                int[] a = new int[2];
                return a[5];
            }
        }
        "#,
    ),
];

#[derive(Debug, Clone)]
enum Op {
    Spawn { image: usize, limit_kb: u64, arg: i64 },
    Kill { which: usize },
    Run { cycles: u64 },
    KernelGc,
}

fn gen_ops(rng: &mut Rng, max: u64) -> Vec<Op> {
    let n = rng.range(1, max);
    (0..n)
        .map(|_| match rng.below(8) {
            0..=2 => Op::Spawn {
                image: rng.below(IMAGES.len() as u64) as usize,
                limit_kb: rng.range(64, 4096),
                arg: rng.below(100) as i64,
            },
            3 => Op::Kill {
                which: rng.next() as usize,
            },
            4..=6 => Op::Run {
                cycles: rng.range(100_000, 5_000_000),
            },
            _ => Op::KernelGc,
        })
        .collect()
}

fn build_os() -> KaffeOs {
    let mut os = KaffeOs::new(KaffeOsConfig::default());
    os.load_shared_source("class Cell { int value; }").unwrap();
    for (name, src) in IMAGES {
        os.register_image(name, src).unwrap();
    }
    os
}

fn build_os_traced() -> KaffeOs {
    let mut os = KaffeOs::new(KaffeOsConfig {
        trace: true,
        ..KaffeOsConfig::default()
    });
    os.load_shared_source("class Cell { int value; }").unwrap();
    for (name, src) in IMAGES {
        os.register_image(name, src).unwrap();
    }
    os
}

fn apply(os: &mut KaffeOs, pids: &mut Vec<Pid>, op: &Op) {
    match *op {
        Op::Spawn {
            image,
            limit_kb,
            arg,
        } => {
            let (name, _) = IMAGES[image];
            if let Ok(pid) = os.spawn_with(
                name,
                &arg.to_string(),
                SpawnOpts {
                    mem_limit: Some(limit_kb << 10),
                    ..SpawnOpts::default()
                },
            ) {
                pids.push(pid);
            }
        }
        Op::Kill { which } => {
            if !pids.is_empty() {
                let pid = pids[which % pids.len()];
                os.kill(pid).unwrap();
            }
        }
        Op::Run { cycles } => {
            let deadline = os.clock() + cycles;
            os.run(Some(deadline));
        }
        Op::KernelGc => {
            os.kernel_gc();
        }
    }
}

/// Kills everything, drains the scheduler, and runs two kernel GC cycles
/// (orphan merge, then the exposed garbage); asserts full reclamation.
fn teardown_and_check(os: &mut KaffeOs, pids: &[Pid], case: u64) {
    for &pid in pids {
        os.kill(pid).unwrap();
    }
    os.run(Some(os.clock() + 50_000_000));
    for &pid in pids {
        assert!(!os.is_alive(pid), "case {case}: {pid:?} survived teardown");
    }
    os.kernel_gc(); // merges orphaned shared heaps
    os.kernel_gc(); // reclaims what the merge exposed

    // Invariant 1: every audited invariant holds after full teardown.
    let report = os.audit().unwrap_or_else(|v| {
        panic!("case {case}: audit after teardown: {v}");
    });
    assert_eq!(report.live, 0, "case {case}: no process may survive");
    // Invariant 2: every byte charged against the machine budget is
    // returned once no process exists.
    let root = os.space().root_memlimit();
    assert_eq!(
        os.space().limits().current(root),
        0,
        "case {case}: machine budget must drain to zero"
    );
    // Invariant 3: no shared heap outlives its sharers.
    assert_eq!(
        os.shm_registry().len(),
        0,
        "case {case}: orphans must be merged"
    );
    // Invariant 4: the kernel heap holds no leaked survivors.
    let kernel_bytes = os.space().heap_bytes(os.space().kernel_heap()).unwrap();
    assert!(
        kernel_bytes < 4096,
        "case {case}: kernel heap retains {kernel_bytes} bytes after full teardown"
    );
}

#[test]
fn kernel_survives_arbitrary_op_sequences() {
    for case in 0..24u64 {
        let mut rng = Rng::new(0xC0DE_0001 ^ case.wrapping_mul(0x9E37));
        let ops = gen_ops(&mut rng, 40);
        let mut os = build_os();
        let mut pids: Vec<Pid> = Vec::new();
        for op in &ops {
            apply(&mut os, &mut pids, op);
            // The audited invariants must hold at every quantum boundary,
            // not just at the end.
            if let Err(v) = os.audit() {
                panic!("case {case}: audit after {op:?}: {v}");
            }
        }
        teardown_and_check(&mut os, &pids, case);
    }
}

#[test]
fn identical_op_sequences_replay_identically() {
    for case in 0..12u64 {
        let mut rng = Rng::new(0xC0DE_0002 ^ case.wrapping_mul(0x9E37));
        let ops = gen_ops(&mut rng, 20);
        let run = |ops: &[Op]| {
            let mut os = build_os();
            let mut pids: Vec<Pid> = Vec::new();
            for op in ops {
                apply(&mut os, &mut pids, op);
            }
            let statuses: Vec<_> = pids.iter().map(|&p| os.status(p)).collect();
            let audit = format!("{:?}", os.audit());
            (os.clock(), os.barrier_stats().executed, statuses, audit)
        };
        assert_eq!(
            run(&ops),
            run(&ops),
            "case {case}: virtual execution must be deterministic"
        );
    }
}

/// Cross-checks the trace-derived accounting against the kernel's own
/// state: every live process' memlimit debit must equal the net of the
/// charge/credit events the trace recorded at its node. Metrics counters
/// are maintained incrementally in the sink, so this holds even if the
/// event ring has dropped old events.
fn reconcile_metrics(os: &KaffeOs, pids: &[Pid], case: u64, step: usize) {
    let metrics = os.metrics();
    assert_eq!(
        metrics.kernel_faults, 0,
        "case {case} step {step}: the trace recorded a kernel fault"
    );
    assert_eq!(
        os.trace_events().len() as u64,
        metrics
            .events_recorded
            .saturating_sub(metrics.events_dropped),
        "case {case} step {step}: ring length disagrees with the counters"
    );
    for &pid in pids {
        if !os.is_alive(pid) {
            continue;
        }
        let ml = os
            .proc_memlimit(pid)
            .expect("live process has a memlimit node");
        let key = (ml.index() as u32, ml.generation());
        let net = metrics.net_bytes_by_node.get(&key).copied().unwrap_or(0);
        let current = os.space().limits().current(ml) as i64;
        assert_eq!(
            net, current,
            "case {case} step {step}: {pid:?} trace net {net} bytes \
             but the memlimit tree records {current}"
        );
    }
}

/// The same fuzz sequences as `kernel_survives_arbitrary_op_sequences`,
/// but with tracing on and the trace-vs-tree reconciliation run after
/// every op. After full teardown every node's net must have returned to
/// zero and every traced process must carry its exit event.
#[test]
fn traced_fuzz_reconciles_metrics_with_the_memlimit_tree() {
    for case in 0..12u64 {
        let mut rng = Rng::new(0xC0DE_0003 ^ case.wrapping_mul(0x9E37));
        let ops = gen_ops(&mut rng, 30);
        let mut os = build_os_traced();
        let mut pids: Vec<Pid> = Vec::new();
        for (step, op) in ops.iter().enumerate() {
            apply(&mut os, &mut pids, op);
            if let Err(v) = os.audit() {
                panic!("case {case}: audit after {op:?}: {v}");
            }
            reconcile_metrics(&os, &pids, case, step);
        }
        teardown_and_check(&mut os, &pids, case);
        let metrics = os.metrics();
        assert!(
            metrics.net_bytes_by_node.is_empty(),
            "case {case}: nodes still carry traced bytes after teardown: {:?}",
            metrics.net_bytes_by_node
        );
        for &pid in &pids {
            let pm = metrics
                .per_process
                .get(&pid.0)
                .unwrap_or_else(|| panic!("case {case}: {pid:?} never traced"));
            assert!(pm.exited, "case {case}: {pid:?} has no exit event");
        }
    }
}

/// The termination sweep: with a kill injected at every quantum boundary of
/// a multi-process run, the audit stays clean throughout, every dead heap
/// is fully reclaimed, and the machine budget drains to zero.
#[test]
fn kill_at_every_quantum_boundary_reclaims_fully() {
    for case in 0..8u64 {
        let mut os = build_os();
        let mut pids: Vec<Pid> = Vec::new();
        for (image, arg) in [("churn", "0"), ("hog", "0"), ("shmer", "3")] {
            pids.push(
                os.spawn_with(
                    image,
                    arg,
                    SpawnOpts {
                        mem_limit: Some(1 << 20),
                        ..SpawnOpts::default()
                    },
                )
                .unwrap(),
            );
        }
        let mut plan = FaultPlan::quiet(0x0051_1EEF ^ case);
        plan.kill_sweep = true;
        os.install_faults(plan);

        // One victim dies per quantum: three processes cannot outlive a
        // handful of quanta. The run must end with everything dead and
        // every invariant intact.
        os.run(Some(os.clock() + 200_000_000));
        for &pid in &pids {
            assert!(
                !os.is_alive(pid),
                "case {case}: {pid:?} survived the termination sweep"
            );
        }
        if let Err(v) = os.audit() {
            panic!("case {case}: audit after sweep: {v}");
        }
        let killed = os.faults().unwrap().kills_injected;
        assert!(killed >= 1, "case {case}: sweep never fired");
        teardown_and_check(&mut os, &pids, case);
    }
}
