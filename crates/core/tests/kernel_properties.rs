//! Property test for the kernel: arbitrary interleavings of spawns, kills,
//! scheduling, shared-heap traffic and kernel GC must never panic, and
//! tearing everything down must reclaim every byte — the paper's "full
//! reclamation of memory" as a whole-kernel invariant.

use kaffeos::{KaffeOs, KaffeOsConfig, Pid, SpawnOpts};
use proptest::prelude::*;

const IMAGES: &[(&str, &str)] = &[
    ("brief", "class Main { static int main() { return 1; } }"),
    (
        "churn",
        r#"
        class Main {
            static int main() {
                int acc = 0;
                for (int i = 0; i < 3000; i = i + 1) {
                    int[] junk = new int[200];
                    junk[0] = i;
                    acc = acc + junk[0] % 7;
                }
                return acc;
            }
        }
        "#,
    ),
    (
        "hog",
        r#"
        class Chain { int[] data; Chain next; }
        class Hog {
            static int main() {
                Chain head = null;
                while (true) {
                    Chain c = new Chain();
                    c.data = new int[512];
                    c.next = head;
                    head = c;
                }
                return 0;
            }
        }
        "#,
    ),
    (
        "spin",
        "class Spin { static int main() { while (true) { } return 0; } }",
    ),
    (
        "shmer",
        r#"
        class Main {
            static int main(int n) {
                try {
                    if (Shm.lookup("box") < 0) {
                        Shm.create("box", "Cell", 4);
                    }
                    Cell c = Shm.get("box", n % 4) as Cell;
                    c.value = n;
                    return c.value;
                } catch (Exception e) {
                    return -5;
                }
            }
        }
        "#,
    ),
    (
        "thrower",
        r#"
        class Main {
            static int main(int n) {
                if (n % 2 == 0) { return 1 / 0; }
                int[] a = new int[2];
                return a[5];
            }
        }
        "#,
    ),
];

#[derive(Debug, Clone)]
enum Op {
    Spawn {
        image: usize,
        limit_kb: u64,
        arg: i64,
    },
    Kill {
        which: usize,
    },
    Run {
        cycles: u64,
    },
    KernelGc,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..IMAGES.len(), 64u64..4096, 0i64..100).prop_map(|(image, limit_kb, arg)| Op::Spawn {
            image,
            limit_kb,
            arg
        }),
        any::<usize>().prop_map(|which| Op::Kill { which }),
        (100_000u64..5_000_000).prop_map(|cycles| Op::Run { cycles }),
        Just(Op::KernelGc),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kernel_survives_arbitrary_op_sequences(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let mut os = KaffeOs::new(KaffeOsConfig::default());
        os.load_shared_source("class Cell { int value; }").unwrap();
        for (name, src) in IMAGES {
            os.register_image(name, src).unwrap();
        }
        let mut pids: Vec<Pid> = Vec::new();

        for op in &ops {
            match *op {
                Op::Spawn { image, limit_kb, arg } => {
                    let (name, _) = IMAGES[image];
                    if let Ok(pid) = os.spawn_with(
                        name,
                        &arg.to_string(),
                        SpawnOpts {
                            mem_limit: Some(limit_kb << 10),
                            ..SpawnOpts::default()
                        },
                    ) {
                        pids.push(pid);
                    }
                }
                Op::Kill { which } => {
                    if !pids.is_empty() {
                        let pid = pids[which % pids.len()];
                        os.kill(pid).unwrap();
                    }
                }
                Op::Run { cycles } => {
                    let deadline = os.clock() + cycles;
                    os.run(Some(deadline));
                }
                Op::KernelGc => {
                    os.kernel_gc();
                }
            }
        }

        // Teardown: kill everything, drain, collect.
        for &pid in &pids {
            os.kill(pid).unwrap();
        }
        os.run(Some(os.clock() + 50_000_000));
        for &pid in &pids {
            prop_assert!(!os.is_alive(pid), "{pid:?} survived teardown");
        }
        os.kernel_gc(); // merges orphaned shared heaps
        os.kernel_gc(); // reclaims what the merge exposed

        // Invariant 1: every byte charged against the machine budget is
        // returned once no process exists.
        let root = os.space().root_memlimit();
        prop_assert_eq!(os.space().limits().current(root), 0,
            "machine budget must drain to zero");
        // Invariant 2: no shared heap outlives its sharers.
        prop_assert_eq!(os.shm_registry().len(), 0, "orphans must be merged");
        // Invariant 3: the kernel heap holds no leaked survivors.
        let kernel_bytes = os.space().heap_bytes(os.space().kernel_heap()).unwrap();
        prop_assert!(kernel_bytes < 4096,
            "kernel heap retains {kernel_bytes} bytes after full teardown");
    }

    #[test]
    fn identical_op_sequences_replay_identically(ops in proptest::collection::vec(op_strategy(), 1..20)) {
        let run = |ops: &[Op]| {
            let mut os = KaffeOs::new(KaffeOsConfig::default());
            os.load_shared_source("class Cell { int value; }").unwrap();
            for (name, src) in IMAGES {
                os.register_image(name, src).unwrap();
            }
            let mut pids: Vec<Pid> = Vec::new();
            for op in ops {
                match *op {
                    Op::Spawn { image, limit_kb, arg } => {
                        let (name, _) = IMAGES[image];
                        if let Ok(pid) = os.spawn_with(
                            name,
                            &arg.to_string(),
                            SpawnOpts {
                                mem_limit: Some(limit_kb << 10),
                                ..SpawnOpts::default()
                            },
                        ) {
                            pids.push(pid);
                        }
                    }
                    Op::Kill { which } => {
                        if !pids.is_empty() {
                            let pid = pids[which % pids.len()];
                            os.kill(pid).unwrap();
                        }
                    }
                    Op::Run { cycles } => {
                        let deadline = os.clock() + cycles;
                        os.run(Some(deadline));
                    }
                    Op::KernelGc => {
                        os.kernel_gc();
                    }
                }
            }
            let statuses: Vec<_> = pids.iter().map(|&p| os.status(p)).collect();
            (os.clock(), os.barrier_stats().executed, statuses)
        };
        prop_assert_eq!(run(&ops), run(&ops), "virtual execution must be deterministic");
    }
}
