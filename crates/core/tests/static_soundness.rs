//! Cross-validation of the static heap-flow analyzer against the dynamic
//! write barrier — the machine-checked soundness argument for barrier
//! elision.
//!
//! The claim: a store site the analyzer marks `Elide` can never raise a
//! segmentation violation, because elision means the barrier's legality
//! checks are skipped there. The check: drive the CI fault sweep (all
//! eight seeds) plus a purpose-built frozen-heap writer through the full
//! kernel, record every *dynamic* violation's `(method, pc)`, and assert
//! the static verdict at each one is a non-elidable classification
//! (`FrozenWrite` or `Unknown`, with the receiver in
//! `SharedFrozen`/`MayCross`/`Top`) — and that the *published* bitmap the
//! interpreter consults has the bit clear.
//!
//! A second contract rides along: elision is host-wall-clock only. The
//! same seeded workload with `elide` on and off must produce
//! byte-identical traces, clocks, and barrier counters.

use kaffeos::analyze::{Region, Verdict};
use kaffeos::{
    ExitStatus, FaultPlan, KaffeOs, KaffeOsConfig, Pid, SegViolationKind, SpawnOpts,
};

/// The CI fault-sweep seeds (`ci.yml`'s fault-sweep job).
const SWEEP_SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 42];

/// Stores a reference into a frozen shared object: the one segmentation
/// violation guest bytecode can reach on its own (cross-heap references
/// are unobtainable while the barrier enforces, but a frozen `Node`'s ref
/// field is right there to write to).
const FROZEN_WRITER: &str = r#"
    class Main {
        static int main(int n) {
            int caught = 0;
            try {
                if (Shm.lookup("ring") < 0) {
                    Shm.create("ring", "Node", 4);
                }
                Node a = Shm.get("ring", 0) as Node;
                a.next = a;
                caught = 2;
            } catch (Exception e) {
                caught = 1;
            }
            return caught;
        }
    }
"#;

const ALLOC: &str = r#"
    class Main {
        static int main(int n) {
            int acc = 0;
            for (int i = 0; i < 40; i = i + 1) {
                int[] j = new int[8 + n];
                acc = acc + j[0] + i;
            }
            return acc;
        }
    }
"#;

const SHMER: &str = r#"
    class Main {
        static int main(int n) {
            try {
                if (Shm.lookup("box") < 0) {
                    Shm.create("box", "Cell", 16);
                }
                Cell c = Shm.get("box", n % 16) as Cell;
                c.value = n;
                return c.value;
            } catch (Exception e) {
                return -5;
            }
        }
    }
"#;

/// Monitor- and virtual-call-dense guest: a fresh lock synced every
/// iteration (elidable) and a monomorphic `bump` call (devirtualizable) —
/// the two shapes the hierarchy/escape passes sharpen, run here under
/// fault injection so the debug-build re-validation asserts get exercised.
const SYNCER: &str = r#"
    class Worker {
        int v;
        int bump(int d) { return this.v + d; }
    }
    class Main {
        static int main(int n) {
            int acc = 0;
            int i = 0;
            while (i < 200) {
                Worker w = new Worker();
                w.v = i;
                acc = acc + w.bump(n);
                Object lock = new Object();
                sync (lock) { acc = acc + i; }
                i = i + 1;
            }
            return acc;
        }
    }
"#;

fn build_os(config: KaffeOsConfig) -> KaffeOs {
    let mut os = KaffeOs::new(config);
    os.load_shared_source("class Cell { int value; }").unwrap();
    os.load_shared_source("class Node { int v; Node next; }")
        .unwrap();
    os.register_image("alloc", ALLOC).unwrap();
    os.register_image("shmer", SHMER).unwrap();
    os.register_image("frozen", FROZEN_WRITER).unwrap();
    os.register_image("syncer", SYNCER).unwrap();
    os
}

fn spawn_workload(os: &mut KaffeOs) -> Vec<Pid> {
    [("alloc", "2"), ("shmer", "1"), ("frozen", "0"), ("syncer", "3")]
        .iter()
        .map(|(image, arg)| {
            os.spawn_with(
                image,
                arg,
                SpawnOpts {
                    mem_limit: Some(1 << 20),
                    ..SpawnOpts::default()
                },
            )
            .unwrap()
        })
        .collect()
}

/// The frozen writer's violation fires, is survivable, and is exactly the
/// site the analyzer condemned: dynamic `FrozenSharedField` at a static
/// `FrozenWrite` verdict, with a `write-after-freeze` lint on the same pc.
#[test]
fn frozen_writer_is_caught_dynamically_and_statically()
{
    let mut os = build_os(KaffeOsConfig::default());
    let pid = os.spawn("frozen", "0", None).unwrap();
    os.run(Some(os.clock() + 500_000_000));
    assert_eq!(
        os.status(pid),
        Some(ExitStatus::Exited(1)),
        "the guest must catch the SegmentationViolation"
    );

    let sites = os.seg_violation_sites();
    assert!(!sites.is_empty(), "the frozen write must be recorded");
    let analysis = os.analysis();
    for site in sites {
        assert_eq!(site.kind, SegViolationKind::FrozenSharedField);
        let s = analysis
            .site(site.method, site.pc)
            .expect("violating site must be analyzed");
        assert_eq!(s.verdict, Verdict::FrozenWrite);
        assert_eq!(s.recv, Region::SharedFrozen);
        assert!(
            analysis.lints.iter().any(|l| {
                l.kind == kaffeos::analyze::LintKind::WriteAfterFreeze && l.pc == site.pc
            }),
            "the write-after-freeze lint must point at pc {}",
            site.pc
        );
    }
}

/// The acceptance criterion: under the full 8-seed CI fault sweep, every
/// runtime barrier violation occurs at a site the analyzer classified as
/// possibly-crossing — never at an elided one. Checked against both the
/// analysis verdicts and the live bitmaps the interpreter consults.
#[test]
fn every_dynamic_violation_is_statically_non_elidable() {
    let mut total_violations = 0usize;
    for seed in SWEEP_SEEDS {
        let mut os = build_os(KaffeOsConfig::default());
        os.install_faults(FaultPlan::from_seed(seed));
        spawn_workload(&mut os);
        os.run(Some(os.clock() + 500_000_000));

        let analysis = os.analysis();
        for site in os.seg_violation_sites() {
            total_violations += 1;
            // The interpreter-consulted bitmap must have the bit clear —
            // an elided store never runs the checks that record sites, so
            // a hit here would mean the barrier fired where we removed it.
            assert!(
                !os.class_table().method(site.method).elide_at(site.pc),
                "seed {seed}: violation at an elided site {site:?}"
            );
            // Sharpened sites must never be the ones that blow up: a
            // violating pc can be neither a devirtualized call nor an
            // elided monitor op.
            assert!(
                os.class_table().method(site.method).devirt_at(site.pc).is_none(),
                "seed {seed}: violation at a devirtualized site {site:?}"
            );
            assert!(
                !os.class_table().method(site.method).mon_elide_at(site.pc),
                "seed {seed}: violation at an elided monitor {site:?}"
            );
            match analysis.site(site.method, site.pc) {
                None => assert!(
                    analysis.is_bailed(site.method),
                    "seed {seed}: unanalyzed violating site {site:?} in a non-bailed method"
                ),
                Some(s) => {
                    assert!(
                        matches!(s.verdict, Verdict::FrozenWrite | Verdict::Unknown),
                        "seed {seed}: dynamic violation at statically-safe site {site:?} ({:?})",
                        s.verdict
                    );
                    assert!(
                        matches!(
                            s.recv,
                            Region::SharedFrozen | Region::MayCross | Region::Top
                        ),
                        "seed {seed}: violating receiver classified {:?}",
                        s.recv
                    );
                }
            }
        }
    }
    assert!(
        total_violations > 0,
        "the sweep must provoke at least one guest violation"
    );
}

/// Elision must be invisible in virtual time: the same seeded workload
/// with `elide` on and off produces byte-identical traces, clocks, and
/// Table-1 barrier counters.
#[test]
fn elision_does_not_move_virtual_time() {
    let run = |elide: bool, seed: u64| {
        let mut os = build_os(KaffeOsConfig {
            trace: true,
            elide,
            ..KaffeOsConfig::default()
        });
        os.install_faults(FaultPlan::from_seed(seed));
        spawn_workload(&mut os);
        let report = os.run(Some(20_000_000));
        os.kernel_gc();
        (
            os.trace_jsonl(),
            os.clock(),
            format!("{:?}", report.barrier),
        )
    };
    for seed in [1u64, 8, 42] {
        let (trace_on, clock_on, barrier_on) = run(true, seed);
        let (trace_off, clock_off, barrier_off) = run(false, seed);
        assert_eq!(clock_on, clock_off, "seed {seed}: clock moved");
        assert_eq!(
            barrier_on, barrier_off,
            "seed {seed}: barrier counters moved"
        );
        assert_eq!(trace_on, trace_off, "seed {seed}: traces diverged");
    }
}

/// Devirtualization and monitor elision actually fire on the sync-dense
/// guest — and, like barrier elision, are invisible in virtual time: same
/// trace, clock, and exit status with the analysis on and off, while the
/// dynamic counters report real work only in the on-configuration.
#[test]
fn monitor_elision_and_devirt_are_host_only() {
    let run = |elide: bool| {
        let mut os = build_os(KaffeOsConfig {
            trace: true,
            elide,
            ..KaffeOsConfig::default()
        });
        let pid = os.spawn("syncer", "3", None).unwrap();
        os.run(Some(os.clock() + 500_000_000));
        let status = os.status(pid);
        assert!(
            matches!(status, Some(ExitStatus::Exited(_))),
            "syncer must finish: {status:?}"
        );
        (
            os.trace_jsonl(),
            os.clock(),
            status,
            os.analysis_counters(pid).expect("pid is known"),
        )
    };
    let (trace_on, clock_on, status_on, (devirt, elided)) = run(true);
    let (trace_off, clock_off, status_off, counters_off) = run(false);
    assert!(devirt > 0, "no devirtualized calls on the syncer");
    assert!(elided > 0, "no elided monitor ops on the syncer");
    assert_eq!(elided % 2, 0, "enter/exit elisions must pair up");
    assert_eq!(counters_off, (0, 0), "analysis off but counters moved");
    assert_eq!(status_on, status_off);
    assert_eq!(clock_on, clock_off, "devirt/elision moved the clock");
    assert_eq!(trace_on, trace_off, "devirt/elision moved the trace");
}
