//! The chaos-kernel acceptance suite: seeded fault injection driven through
//! the full kernel, with the invariant auditor run after every experiment.
//!
//! Covers the four injection mechanisms of [`kaffeos::FaultPlan`] —
//! allocation failures at every index (one-shot and persistent), the
//! termination sweep, forced GC at every safepoint, and illegal cross-heap
//! writes — plus replay determinism: the same seed must produce a
//! byte-identical audit report.

use kaffeos::{AllocFault, ExitStatus, FaultPlan, KaffeOs, KaffeOsConfig, Pid, SpawnOpts};

/// A small, allocation-dense 3-process workload whose total allocation
/// count stays low enough to sweep an injected OOM across *every* index.
const SMALL_IMAGES: &[(&str, &str)] = &[
    (
        "alloc",
        r#"
        class Main {
            static int main(int n) {
                int acc = 0;
                for (int i = 0; i < 40; i = i + 1) {
                    int[] j = new int[8 + n];
                    acc = acc + j[0] + i;
                }
                return acc;
            }
        }
        "#,
    ),
    (
        "shmer",
        r#"
        class Main {
            static int main(int n) {
                try {
                    if (Shm.lookup("box") < 0) {
                        Shm.create("box", "Cell", 16);
                    }
                    Cell c = Shm.get("box", n % 16) as Cell;
                    c.value = n;
                    return c.value;
                } catch (Exception e) {
                    return -5;
                }
            }
        }
        "#,
    ),
    ("brief", "class Main { static int main() { return 1; } }"),
];

fn build_os() -> KaffeOs {
    let mut os = KaffeOs::new(KaffeOsConfig::default());
    os.load_shared_source("class Cell { int value; }").unwrap();
    for (name, src) in SMALL_IMAGES {
        os.register_image(name, src).unwrap();
    }
    os
}

fn build_os_traced() -> KaffeOs {
    let mut os = KaffeOs::new(KaffeOsConfig {
        trace: true,
        ..KaffeOsConfig::default()
    });
    os.load_shared_source("class Cell { int value; }").unwrap();
    for (name, src) in SMALL_IMAGES {
        os.register_image(name, src).unwrap();
    }
    os
}

fn spawn_workload(os: &mut KaffeOs) -> Vec<Pid> {
    [("alloc", "2"), ("shmer", "1"), ("brief", "0")]
        .iter()
        .map(|(image, arg)| {
            os.spawn_with(
                image,
                arg,
                SpawnOpts {
                    mem_limit: Some(1 << 20),
                    ..SpawnOpts::default()
                },
            )
            .unwrap()
        })
        .collect()
}

/// Drains the run, collects twice, and asserts the audit plus full
/// reclamation of the machine budget.
fn finish_and_audit(os: &mut KaffeOs, label: &str) {
    let pids: Vec<Pid> = (1..=3).map(Pid).collect();
    for &pid in &pids {
        let _ = os.kill(pid);
    }
    os.run(Some(os.clock() + 100_000_000));
    os.kernel_gc();
    os.kernel_gc();
    if let Err(v) = os.audit() {
        panic!("{label}: audit failed: {v}");
    }
    let root = os.space().root_memlimit();
    assert_eq!(
        os.space().limits().current(root),
        0,
        "{label}: machine budget must drain to zero"
    );
}

/// Injected OOM at *every* allocation index of the workload: whatever the
/// index hits — guest allocation, argument string, shared-heap population,
/// entry/exit item — only the offending process may suffer, never the
/// kernel, and every invariant must survive.
#[test]
fn oom_at_every_allocation_index_is_contained() {
    // Measure the clean run's allocation-attempt span first.
    let (baseline, total) = {
        let mut os = build_os();
        let baseline = os.space().alloc_count();
        spawn_workload(&mut os);
        os.run(Some(os.clock() + 100_000_000));
        (baseline, os.space().alloc_count())
    };
    assert!(
        total >= baseline + 20,
        "workload too small to sweep (baseline {baseline}, total {total})"
    );

    for at in baseline..total {
        let mut os = build_os();
        let mut plan = FaultPlan::quiet(at);
        plan.alloc_fault = Some(AllocFault {
            at,
            persistent: false,
        });
        os.install_faults(plan);
        spawn_workload(&mut os);
        os.run(Some(os.clock() + 100_000_000));
        if let Err(v) = os.audit() {
            panic!("one-shot OOM at allocation {at}: audit failed: {v}");
        }
        finish_and_audit(&mut os, &format!("one-shot OOM at allocation {at}"));
    }

    // Persistent variant: from some index on, *every* allocation fails.
    // Much harsher — processes die of OOM — but the invariants must hold.
    for at in (baseline..total).step_by(7) {
        let mut os = build_os();
        let mut plan = FaultPlan::quiet(at);
        plan.alloc_fault = Some(AllocFault {
            at,
            persistent: true,
        });
        os.install_faults(plan);
        spawn_workload(&mut os);
        os.run(Some(os.clock() + 100_000_000));
        if let Err(v) = os.audit() {
            panic!("persistent OOM from allocation {at}: audit failed: {v}");
        }
        // Reclamation must work even while allocation keeps failing.
        os.clear_faults();
        finish_and_audit(&mut os, &format!("persistent OOM from allocation {at}"));
    }
}

/// Replaying the same fault seed must produce a byte-identical audit
/// report — the harness' determinism contract.
#[test]
fn same_seed_replays_to_identical_audit_reports() {
    let run = |seed: u64| {
        let mut os = build_os();
        os.install_faults(FaultPlan::from_seed(seed));
        spawn_workload(&mut os);
        os.run(Some(20_000_000));
        os.kernel_gc();
        let audit = format!("{:?}", os.audit());
        let plan = format!("{:?}", os.faults());
        (os.clock(), audit, plan)
    };
    for seed in [1u64, 7, 42, 0xDEAD, 0xFEED_5EED, 0x0123_4567_89AB_CDEF] {
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a, b, "seed {seed:#x} did not replay identically");
    }
}

/// The golden-trace contract: the same workload and fault seed must produce
/// **byte-identical** traces across two fresh kernel instances — both the
/// JSON-lines golden format and the Chrome `trace_event` export. Any hidden
/// nondeterminism (hash-map iteration, unsorted GC roots, unordered wakes)
/// shows up here as the first diverging line.
#[test]
fn same_seed_replays_to_byte_identical_traces() {
    let run = |seed: u64| {
        let mut os = build_os_traced();
        os.install_faults(FaultPlan::from_seed(seed));
        spawn_workload(&mut os);
        os.run(Some(20_000_000));
        os.kernel_gc();
        (os.trace_jsonl(), os.trace_chrome())
    };
    for seed in [1u64, 7, 42, 0xDEAD, 0xFEED_5EED] {
        let (jsonl_a, chrome_a) = run(seed);
        let (jsonl_b, chrome_b) = run(seed);
        assert!(
            jsonl_a.lines().count() > 10,
            "seed {seed:#x}: traced run recorded almost nothing"
        );
        assert_eq!(
            jsonl_a, jsonl_b,
            "seed {seed:#x}: JSON-lines traces diverged"
        );
        assert_eq!(chrome_a, chrome_b, "seed {seed:#x}: Chrome traces diverged");
    }
}

/// A kill delivered while a thread sits inside the kernel (`kernel_depth >
/// 0`, here parked in `proc.wait`) is deferred, and a one-shot allocation
/// fault landing in the middle of shared-heap creation leaves the registry
/// consistent: the heap either exists fully frozen or not at all.
#[test]
fn oneshot_alloc_fault_in_kernel_mode_defers_kill() {
    let mut os = build_os();
    os.register_image(
        "sleeper",
        "class Spin { static int main() { while (true) { } return 0; } }",
    )
    .unwrap();
    os.register_image(
        "waiter",
        "class Main { static int main(int t) { return Proc.wait(t); } }",
    )
    .unwrap();
    let sleeper = os.spawn("sleeper", "", None).unwrap();
    let waiter = os.spawn("waiter", &sleeper.0.to_string(), None).unwrap();
    os.run(Some(os.clock() + 2_000_000));

    // The waiter is parked inside the kernel; a kill must be deferred.
    os.kill(waiter).unwrap();
    assert!(os.is_alive(waiter), "kill must defer while inside the kernel");

    // Arm a one-shot fault a few allocations ahead, then create a shared
    // heap: the fault lands inside the kernel's population loop (or the
    // guest's own allocations around it) and must be contained either way.
    let mut plan = FaultPlan::quiet(0xD3F3);
    plan.alloc_fault = Some(AllocFault {
        at: os.space().alloc_count() + 10,
        persistent: false,
    });
    os.install_faults(plan);
    let shmer = os.spawn("shmer", "2", None).unwrap();
    os.run(Some(os.clock() + 50_000_000));
    assert!(!os.is_alive(shmer), "shmer runs to completion");

    // Freeze-state consistency: whatever the fault interrupted, a
    // registered shared heap is fully frozen and its sharers are live.
    for (name, shm) in os.shm_registry().iter() {
        let snap = os.space().snapshot(shm.heap).unwrap();
        assert!(snap.frozen, "shared heap {name} registered but not frozen");
    }
    if let Err(v) = os.audit() {
        panic!("audit with deferred kill pending: {v}");
    }
    assert!(os.is_alive(waiter), "deferred kill must still be pending");

    // Release the waiter: the sleeper dies, the wait returns, and the
    // deferred kill fires at the next safe point.
    os.kill(sleeper).unwrap();
    os.run(Some(os.clock() + 50_000_000));
    assert!(!os.is_alive(waiter), "deferred kill fires after the wait");
    assert_eq!(os.status(waiter), Some(ExitStatus::Killed));
    finish_and_audit(&mut os, "deferred-kill experiment");
}

/// Every injected illegal cross-heap write must be rejected by the write
/// barrier, and the probe's garbage must be fully reclaimed afterwards.
#[test]
fn barrier_rejects_every_injected_illegal_write() {
    let mut os = build_os();
    os.register_image(
        "spin",
        "class Spin { static int main() { while (true) { } return 0; } }",
    )
    .unwrap();
    for _ in 0..3 {
        os.spawn("spin", "", Some(1 << 20)).unwrap();
    }
    let mut plan = FaultPlan::quiet(0x0BAD_C0DE);
    plan.illegal_writes = true;
    os.install_faults(plan);
    os.run(Some(os.clock() + 20_000_000));

    let plan = os.faults().unwrap();
    assert!(
        plan.illegal_writes_attempted > 0,
        "the probe must have fired"
    );
    assert_eq!(
        plan.illegal_writes_accepted, 0,
        "the barrier accepted an illegal write"
    );
    if let Err(v) = os.audit() {
        panic!("audit under illegal-write probing: {v}");
    }
    finish_and_audit(&mut os, "illegal-write experiment");
}

/// A forced collection at every safepoint is semantically transparent: the
/// workload's exit statuses match an unfaulted run, and the audit is clean.
#[test]
fn gc_at_every_safepoint_is_transparent() {
    let statuses = |gc_storm: bool| {
        let mut os = build_os();
        if gc_storm {
            let mut plan = FaultPlan::quiet(0x6C);
            plan.gc_every_safepoint = true;
            os.install_faults(plan);
        }
        let pids = spawn_workload(&mut os);
        os.run(Some(os.clock() + 500_000_000));
        if let Err(v) = os.audit() {
            panic!("gc_storm={gc_storm}: audit failed: {v}");
        }
        pids.iter().map(|&p| os.status(p)).collect::<Vec<_>>()
    };
    let clean = statuses(false);
    let stormy = statuses(true);
    assert!(
        clean.iter().all(|s| s.is_some()),
        "workload must finish: {clean:?}"
    );
    assert_eq!(clean, stormy, "forced GC at safepoints changed results");
}

// ---------------------------------------------------------------------------
// Pre-optimisation golden fixtures (host fast-path regression gate)
// ---------------------------------------------------------------------------

/// Seeds pinned into `tests/fixtures/trace_seed<N>.jsonl`.
const TRACE_FIXTURE_SEEDS: [u64; 3] = [1, 2, 3];

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// One standard workload run through the interpreter/GC fast paths under a
/// fault seed, returning the JSON-lines event stream.
fn golden_trace(seed: u64) -> String {
    let mut os = build_os_traced();
    os.install_faults(FaultPlan::from_seed(seed));
    spawn_workload(&mut os);
    os.run(Some(20_000_000));
    os.kernel_gc();
    os.trace_jsonl()
}

/// Points at the first diverging line so a broken run is debuggable without
/// dumping two full traces.
fn assert_same_text(got: &str, want: &str, label: &str) {
    if got == want {
        return;
    }
    for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
        assert_eq!(g, w, "{label}: first divergence at line {}", i + 1);
    }
    panic!(
        "{label}: line counts diverged (got {}, want {})",
        got.lines().count(),
        want.lines().count()
    );
}

/// The traces produced by the optimised fast paths (flat value stacks,
/// allocation-free GC marking, FxHash tables) must be byte-identical to the
/// fixtures captured **before** those optimisations landed: virtual time is
/// a pure function of (program, seed), and host-side speed must never leak
/// into it. Regeneration is deliberate only (see `regenerate_trace_fixtures`).
#[test]
fn traces_match_pre_optimisation_fixtures() {
    for seed in TRACE_FIXTURE_SEEDS {
        let path = fixture_path(&format!("trace_seed{seed}.jsonl"));
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        let got = golden_trace(seed);
        assert_same_text(&got, &want, &format!("seed {seed} trace"));
    }
}

/// Writes the golden trace fixtures. Run only when virtual behaviour is
/// *meant* to change (a new opcode cost, a scheduler change), never for a
/// host-side optimisation:
/// `cargo test -p kaffeos --test fault_injection -- --ignored regenerate`
#[test]
#[ignore = "writes golden fixtures; run only on a deliberate virtual-behaviour change"]
fn regenerate_trace_fixtures() {
    std::fs::create_dir_all(fixture_path("")).unwrap();
    for seed in TRACE_FIXTURE_SEEDS {
        let path = fixture_path(&format!("trace_seed{seed}.jsonl"));
        std::fs::write(&path, golden_trace(seed)).unwrap();
        println!("wrote {}", path.display());
    }
}
