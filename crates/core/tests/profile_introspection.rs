//! Acceptance suite for the virtual-time profiler and the procfs-style
//! introspection plane.
//!
//! The profiler samples at virtual-time edges only (quantum boundaries,
//! syscall dispatch, explicit collections), so a profile is a pure function
//! of (program, fault seed): two fresh kernels running the same workload
//! must produce **byte-identical** folded stacks, flamegraph SVGs and
//! latency histograms. And because every sample is taken exactly where the
//! kernel charges a CPU account, the profiler's per-pid totals must
//! reconcile with [`KaffeOs::cpu`] to the cycle.

use kaffeos::{FaultPlan, KaffeOs, KaffeOsConfig, Pid, SpawnOpts};

const IMAGES: &[(&str, &str)] = &[
    (
        "alloc",
        r#"
        class Main {
            static int main(int n) {
                int acc = 0;
                for (int i = 0; i < 40; i = i + 1) {
                    int[] j = new int[8 + n];
                    acc = acc + j[0] + i;
                }
                Sys.gc();
                return acc;
            }
        }
        "#,
    ),
    (
        "shmer",
        r#"
        class Main {
            static int main(int n) {
                try {
                    if (Shm.lookup("box") < 0) {
                        Shm.create("box", "Cell", 16);
                    }
                    Cell c = Shm.get("box", n % 16) as Cell;
                    c.value = n;
                    return c.value;
                } catch (Exception e) {
                    return -5;
                }
            }
        }
        "#,
    ),
    ("brief", "class Main { static int main() { return 1; } }"),
];

fn build_os(profile: bool, trace: bool) -> KaffeOs {
    let mut os = KaffeOs::new(KaffeOsConfig {
        profile,
        trace,
        ..KaffeOsConfig::default()
    });
    os.load_shared_source("class Cell { int value; }").unwrap();
    for (name, src) in IMAGES {
        os.register_image(name, src).unwrap();
    }
    os
}

fn spawn_workload(os: &mut KaffeOs) -> Vec<Pid> {
    [("alloc", "2"), ("shmer", "1"), ("brief", "0")]
        .iter()
        .map(|(image, arg)| {
            os.spawn_with(
                image,
                arg,
                SpawnOpts {
                    mem_limit: Some(1 << 20),
                    ..SpawnOpts::default()
                },
            )
            .unwrap()
        })
        .collect()
}

/// The golden-profile contract: same workload + same fault seed ⇒
/// byte-identical folded stacks, histograms, and SVG across two fresh
/// kernel instances. Any hidden nondeterminism (hash-map iteration in a
/// render path, unstable stack attribution) shows up as the first
/// diverging byte.
#[test]
fn same_seed_replays_to_byte_identical_profiles() {
    let run = |seed: u64| {
        let mut os = build_os(true, false);
        os.install_faults(FaultPlan::from_seed(seed));
        spawn_workload(&mut os);
        os.run(Some(20_000_000));
        os.kernel_gc();
        (
            os.profile_folded(),
            os.profile_histograms(),
            os.profile_flamegraph_svg(),
        )
    };
    for seed in [1u64, 2, 3] {
        let (folded_a, hist_a, svg_a) = run(seed);
        let (folded_b, hist_b, svg_b) = run(seed);
        assert!(
            folded_a.lines().count() > 3,
            "seed {seed:#x}: profiled run sampled almost nothing:\n{folded_a}"
        );
        assert_eq!(folded_a, folded_b, "seed {seed:#x}: folded stacks diverged");
        assert_eq!(hist_a, hist_b, "seed {seed:#x}: histograms diverged");
        assert_eq!(svg_a, svg_b, "seed {seed:#x}: flamegraph SVGs diverged");
    }
}

/// The reconciliation contract: the profiler takes a sample at exactly the
/// points where the kernel charges a process CPU account, so for every pid
/// the sampled exec/GC/kernel totals equal [`KaffeOs::cpu`] to the cycle —
/// no cycles invented, none lost. The workload exercises all three pools:
/// mutator loops, an explicit `Sys.gc()` plus allocation-triggered
/// collections, and syscall crossings.
#[test]
fn profiler_totals_reconcile_with_kernel_cpu_accounts() {
    for seed in [1u64, 7, 42] {
        let mut os = build_os(true, true);
        os.install_faults(FaultPlan::from_seed(seed));
        let pids = spawn_workload(&mut os);
        os.run(Some(20_000_000));
        let totals = os.profile_totals();
        for &pid in &pids {
            let cpu = os.cpu(pid);
            let t = totals.get(&pid.0).copied().unwrap_or_default();
            assert_eq!(
                t.exec, cpu.exec,
                "seed {seed:#x} {pid:?}: sampled exec cycles drifted from the account"
            );
            assert_eq!(
                t.gc, cpu.gc,
                "seed {seed:#x} {pid:?}: sampled GC cycles drifted from the account"
            );
            assert_eq!(
                t.kernel, cpu.kernel,
                "seed {seed:#x} {pid:?}: sampled kernel cycles drifted from the account"
            );
        }
        // Cross-check against the metrics plane: GC cycles attributed at
        // quantum boundaries can never exceed the account (explicit
        // collections are charged outside quanta).
        let metrics = os.metrics();
        for &pid in &pids {
            if let Some(pm) = metrics.per_process.get(&pid.0) {
                assert!(
                    pm.quantum_gc_cycles <= os.cpu(pid).gc,
                    "seed {seed:#x} {pid:?}: quantum GC exceeds the GC account"
                );
            }
        }
    }
}

/// The procfs plane round-trips through guest code: a Cup program reads its
/// own status, the machine memlimit tree, and its own profile through the
/// `proc.*` syscalls and prints them — no privileged channel involved.
#[test]
fn procfs_syscalls_round_trip_from_guest() {
    let mut os = build_os(true, false);
    os.register_image(
        "inspector",
        r#"
        class Main {
            static int main() {
                int acc = 0;
                for (int i = 0; i < 200; i = i + 1) { acc = acc + i * i; }
                Sys.print(Proc.status(Proc.self_pid()));
                Sys.print(Proc.meminfo());
                Sys.print(Proc.profile(Proc.self_pid()));
                return acc;
            }
        }
        "#,
    )
    .unwrap();
    let pid = os
        .spawn_with(
            "inspector",
            "",
            SpawnOpts {
                mem_limit: Some(1 << 20),
                ..SpawnOpts::default()
            },
        )
        .unwrap();
    os.run(Some(20_000_000));
    assert!(!os.is_alive(pid), "inspector must run to completion");

    let stdout = os.stdout(pid).join("\n");
    // proc.status: identity and accounting lines for the caller itself.
    assert!(stdout.contains("pid:\t1"), "status pid line missing:\n{stdout}");
    assert!(
        stdout.contains("image:\tinspector"),
        "status image line missing:\n{stdout}"
    );
    assert!(
        stdout.contains("cpu_exec:\t"),
        "status cpu split missing:\n{stdout}"
    );
    // proc.meminfo: the memlimit tree with the machine root and this
    // process' own reservation.
    assert!(
        stdout.contains("inspector#1"),
        "meminfo lacks the process node:\n{stdout}"
    );
    // proc.profile: a live summary with at least one ranked leaf frame.
    assert!(
        stdout.contains("samples="),
        "profile summary missing:\n{stdout}"
    );
    assert!(
        stdout.contains("Main.main"),
        "profile summary lacks the hot method:\n{stdout}"
    );

    // An unknown pid reads as empty text, not an error.
    assert_eq!(os.proc_status_text(Pid(99)), "");
}

/// The procfs text is served even with the profiler off — only the
/// `proc.profile` body is empty then, mirroring a missing procfs file.
#[test]
fn procfs_status_works_without_the_profiler() {
    let mut os = build_os(false, false);
    os.register_image(
        "plain",
        r#"
        class Main {
            static int main() {
                Sys.print(Proc.status(Proc.self_pid()));
                Sys.print(Proc.profile(Proc.self_pid()));
                return 0;
            }
        }
        "#,
    )
    .unwrap();
    let pid = os.spawn("plain", "", Some(1 << 20)).unwrap();
    os.run(Some(20_000_000));
    let stdout = os.stdout(pid).join("\n");
    assert!(stdout.contains("state:\t"), "status must render:\n{stdout}");
    assert!(
        !stdout.contains("samples="),
        "profile summary must be empty when profiling is off:\n{stdout}"
    );
    assert!(!os.profile_enabled());
    assert_eq!(os.profile_folded(), "");
}

/// `top_text` renders one deterministic row per process with the CPU split
/// and, under profiling, the hottest leaf frame.
#[test]
fn top_table_renders_a_row_per_process() {
    let mut os = build_os(true, false);
    let pids = spawn_workload(&mut os);
    os.run(Some(20_000_000));
    let top = os.top_text();
    let lines: Vec<&str> = top.lines().collect();
    assert_eq!(lines.len(), 1 + pids.len(), "header plus one row per pid");
    assert!(lines[0].contains("TOP-METHOD"));
    assert!(top.contains("alloc#1"), "row for alloc missing:\n{top}");
    assert!(
        top.contains("Main.main"),
        "hot method column empty under profiling:\n{top}"
    );
    assert_eq!(top, os.top_text(), "snapshot must be stable");
}

// ---------------------------------------------------------------------------
// Pre-optimisation golden fixtures (host fast-path regression gate)
// ---------------------------------------------------------------------------

/// Seeds pinned into `tests/fixtures/profile_seed<N>.folded` / `.hist`.
const PROFILE_FIXTURE_SEEDS: [u64; 3] = [1, 2, 3];

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// One profiled standard-workload run under a fault seed: folded stacks
/// plus latency histograms.
fn golden_profile(seed: u64) -> (String, String) {
    let mut os = build_os(true, false);
    os.install_faults(FaultPlan::from_seed(seed));
    spawn_workload(&mut os);
    os.run(Some(20_000_000));
    os.kernel_gc();
    (os.profile_folded(), os.profile_histograms())
}

/// The folded stacks and histograms produced by the optimised fast paths
/// must be byte-identical to fixtures captured **before** the flat value
/// stacks, allocation-free GC marking, and FxHash tables landed — the
/// profiler samples at virtual-time edges only, so host-side speed must be
/// invisible to it.
#[test]
fn profiles_match_pre_optimisation_fixtures() {
    for seed in PROFILE_FIXTURE_SEEDS {
        let (folded, hist) = golden_profile(seed);
        for (suffix, got) in [("folded", &folded), ("hist", &hist)] {
            let path = fixture_path(&format!("profile_seed{seed}.{suffix}"));
            let want = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
            assert_eq!(
                got, &want,
                "seed {seed}: {suffix} diverged from the pre-optimisation fixture"
            );
        }
    }
}

/// Writes the golden profile fixtures. Run only when virtual behaviour is
/// *meant* to change, never for a host-side optimisation:
/// `cargo test -p kaffeos --test profile_introspection -- --ignored regenerate`
#[test]
#[ignore = "writes golden fixtures; run only on a deliberate virtual-behaviour change"]
fn regenerate_profile_fixtures() {
    std::fs::create_dir_all(fixture_path("")).unwrap();
    for seed in PROFILE_FIXTURE_SEEDS {
        let (folded, hist) = golden_profile(seed);
        for (suffix, body) in [("folded", folded), ("hist", hist)] {
            let path = fixture_path(&format!("profile_seed{seed}.{suffix}"));
            std::fs::write(&path, body).unwrap();
            println!("wrote {}", path.display());
        }
    }
}
