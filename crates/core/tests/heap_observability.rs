//! Acceptance suite for the heap-observability plane: allocation-site
//! profiling, deterministic heap dumps, and the GC/page timeline.
//!
//! Four contracts, each machine-checked here:
//!
//! 1. **Determinism** — every export (folded stacks, survival table, SVG,
//!    timeline, histograms) and the whole-space dump is a pure function of
//!    `(program, seed)`: two fresh kernels replay byte-identically.
//! 2. **Reconciliation** — a dump's walked `recount` lines agree exactly
//!    with each heap's accounted `bytes_used`/`objects`, and the space
//!    audit (which itself reconciles the memlimit tree) stays clean.
//! 3. **Cross-validation** — every runtime cross-heap edge the census
//!    attributes to guest bytecode lands on a store site the static
//!    analyzer refused to elide: observability agrees with PR 5's
//!    soundness argument, from the opposite direction.
//! 4. **Invisibility** — the plane is host-plane only. With it enabled,
//!    traces still byte-match the pre-optimisation golden fixtures; with
//!    it disabled, it records nothing at all.

use kaffeos::analyze::Verdict;
use kaffeos::{FaultPlan, KaffeOs, KaffeOsConfig, Pid, SpawnOpts};
use kaffeos_vm::MethodIdx;

/// The standard 3-process chaos workload — byte-for-byte the images behind
/// the `trace_seed<N>.jsonl` golden fixtures (`fault_injection.rs`), so the
/// fixture-invariance test below replays the exact recorded program.
const SMALL_IMAGES: &[(&str, &str)] = &[
    (
        "alloc",
        r#"
        class Main {
            static int main(int n) {
                int acc = 0;
                for (int i = 0; i < 40; i = i + 1) {
                    int[] j = new int[8 + n];
                    acc = acc + j[0] + i;
                }
                return acc;
            }
        }
        "#,
    ),
    (
        "shmer",
        r#"
        class Main {
            static int main(int n) {
                try {
                    if (Shm.lookup("box") < 0) {
                        Shm.create("box", "Cell", 16);
                    }
                    Cell c = Shm.get("box", n % 16) as Cell;
                    c.value = n;
                    return c.value;
                } catch (Exception e) {
                    return -5;
                }
            }
        }
        "#,
    ),
    ("brief", "class Main { static int main() { return 1; } }"),
];

/// Stores references to frozen shared objects into a local holder: the
/// legal way guest bytecode mints `shared_frozen` cross-heap edges, so the
/// census has guest-attributed rows to cross-validate.
const XHOLDER: &str = r#"
    class Holder { Cell c; }
    class Main {
        static int main(int n) {
            int acc = 0;
            try {
                if (Shm.lookup("hoard") < 0) {
                    Shm.create("hoard", "Cell", 16);
                }
                Holder h = new Holder();
                for (int i = 0; i < 8; i = i + 1) {
                    h.c = Shm.get("hoard", i) as Cell;
                    acc = acc + h.c.value;
                }
            } catch (Exception e) {
                acc = -1;
            }
            return acc;
        }
    }
"#;

fn build_os(heapprof: bool, trace: bool) -> KaffeOs {
    let mut os = KaffeOs::new(KaffeOsConfig {
        heapprof,
        trace,
        ..KaffeOsConfig::default()
    });
    os.load_shared_source("class Cell { int value; }").unwrap();
    for (name, src) in SMALL_IMAGES {
        os.register_image(name, src).unwrap();
    }
    os
}

fn spawn_workload(os: &mut KaffeOs) -> Vec<Pid> {
    [("alloc", "2"), ("shmer", "1"), ("brief", "0")]
        .iter()
        .map(|(image, arg)| {
            os.spawn_with(
                image,
                arg,
                SpawnOpts {
                    mem_limit: Some(1 << 20),
                    ..SpawnOpts::default()
                },
            )
            .unwrap()
        })
        .collect()
}

/// Extracts the integer following `"key":` in a hand-rolled JSON line.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let digits: String = line[at..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Extracts the integer following `key:\t` in procfs-style text.
fn procfs_u64(text: &str, key: &str) -> Option<u64> {
    let pat = format!("{key}:\t");
    text.lines()
        .find_map(|l| l.strip_prefix(&pat))
        .and_then(|v| v.trim().parse().ok())
}

// ---------------------------------------------------------------------------
// 1. Determinism
// ---------------------------------------------------------------------------

/// Every observability artifact — both folded profiles, the survival
/// table, the flamegraph SVG, the timeline, the pause histograms, and the
/// whole-space dump — must replay byte-identically across two fresh
/// kernels running the same seeded workload.
#[test]
fn exports_and_dump_are_byte_identical_across_runs() {
    let run = |seed: u64| {
        let mut os = build_os(true, false);
        os.register_image("xholder", XHOLDER).unwrap();
        os.install_faults(FaultPlan::from_seed(seed));
        spawn_workload(&mut os);
        os.spawn("xholder", "0", Some(1 << 20)).unwrap();
        os.run(Some(20_000_000));
        os.kernel_gc();
        [
            os.heapprof_folded_bytes(),
            os.heapprof_folded_objects(),
            os.heapprof_flamegraph_svg(),
            os.heapprof_survival(),
            os.heapprof_timeline(),
            os.heapprof_histograms(),
            os.heap_dump(),
        ]
    };
    for seed in [1u64, 8] {
        let a = run(seed);
        let b = run(seed);
        let labels = [
            "folded bytes", "folded objects", "svg", "survival", "timeline",
            "histograms", "dump",
        ];
        for ((got, want), label) in a.iter().zip(&b).zip(labels) {
            assert_eq!(got, want, "seed {seed}: {label} diverged across runs");
        }
        // And each artifact is non-trivial: the plane actually recorded.
        // (Seed-dependent fault schedules may starve parts of the workload,
        // so richness is asserted on the tame seed only; byte-identity
        // holds for all.)
        if seed == 1 {
            assert!(a[0].lines().count() > 3, "almost no sites:\n{}", a[0]);
            assert!(a[3].contains("allocs"), "empty survival table");
            assert!(a[4].contains("\"type\":\"gc\""), "no GC timeline records");
            assert!(a[4].contains("\"type\":\"occupancy\""), "no occupancy samples");
        }
        assert!(a[6].contains("\"type\":\"recount\""), "seed {seed}: dump lacks recounts");
    }
}

/// With the plane off, it records *nothing* — no sites, no survival rows,
/// no timeline events — while the dump (a plain function of the virtual
/// state, not the plane) keeps working.
#[test]
fn disabled_plane_records_nothing() {
    let mut os = build_os(false, false);
    spawn_workload(&mut os);
    os.run(Some(20_000_000));
    os.kernel_gc();
    assert!(!os.heapprof_enabled());
    assert_eq!(os.heapprof_folded_bytes(), "");
    assert_eq!(os.heapprof_folded_objects(), "");
    assert_eq!(os.heapprof_survival(), "");
    assert_eq!(os.heapprof_timeline(), "");
    assert_eq!(os.heapprof_histograms(), "");
    assert!(os.heapprof_census().is_empty());
    assert_eq!(os.space().heapprof().timeline_len(), 0);
    let dump = os.heap_dump();
    assert!(dump.contains("\"type\":\"space\""), "dump must work without the plane");
    assert!(dump.contains("\"type\":\"recount\""));
}

// ---------------------------------------------------------------------------
// 2. Reconciliation
// ---------------------------------------------------------------------------

/// A dump is self-reconciling: for every live heap, the walked `recount`
/// line (slot-table ground truth) must equal the `heap` line's accounted
/// `bytes_used`/`objects` — and the space audit, which additionally
/// reconciles the memlimit tree against those same counters, stays clean.
#[test]
fn dump_recounts_reconcile_with_accounting_and_audit() {
    for seed in [1u64, 42] {
        let mut os = build_os(true, false);
        os.install_faults(FaultPlan::from_seed(seed));
        spawn_workload(&mut os);
        os.run(Some(20_000_000));
        os.audit().unwrap_or_else(|v| panic!("seed {seed}: audit failed: {v}"));

        let dump = os.heap_dump();
        let mut accounted: Vec<(u64, u64, u64)> = Vec::new(); // (heap, bytes, objects)
        let mut recounted: Vec<(u64, u64, u64)> = Vec::new();
        for line in dump.lines() {
            if line.starts_with("{\"type\":\"heap\"") {
                accounted.push((
                    json_u64(line, "heap").unwrap(),
                    json_u64(line, "bytes_used").unwrap(),
                    json_u64(line, "objects").unwrap(),
                ));
            } else if line.starts_with("{\"type\":\"recount\"") {
                recounted.push((
                    json_u64(line, "heap").unwrap(),
                    json_u64(line, "live_bytes").unwrap(),
                    json_u64(line, "live_objects").unwrap(),
                ));
            }
        }
        assert!(!accounted.is_empty(), "seed {seed}: dump walked no heaps");
        assert_eq!(
            accounted, recounted,
            "seed {seed}: accounted heap totals diverge from the walked recount"
        );
        // The kernel-side recount API carries the same ground truth.
        let api: Vec<(u64, u64, u64)> = os
            .heap_recounts()
            .iter()
            .map(|r| (r.heap as u64, r.live_bytes, r.live_objects))
            .collect();
        assert_eq!(api, recounted, "seed {seed}: heap_recounts() disagrees with the dump");
    }
}

// ---------------------------------------------------------------------------
// 3. Cross-validation against the static analyzer
// ---------------------------------------------------------------------------

/// Every cross-heap edge the runtime census attributes to guest bytecode
/// must land on a store site the analyzer classified as possibly-crossing:
/// never an `Elide` verdict, never a set bit in the interpreter-consulted
/// elision bitmap. (The `u32::MAX` sentinel groups kernel/trusted stores,
/// which never run the guest barrier.)
#[test]
fn census_rows_land_on_non_elided_sites() {
    let mut os = build_os(true, false);
    os.register_image("xholder", XHOLDER).unwrap();
    spawn_workload(&mut os);
    os.spawn("xholder", "0", Some(1 << 20)).unwrap();
    os.run(Some(20_000_000));

    let census = os.heapprof_census();
    let analysis = os.analysis();
    let mut guest_rows = 0usize;
    let mut frozen_edges = 0u64;
    for site in &census {
        assert!(
            site.counts.may_cross + site.counts.shared_frozen > 0,
            "census row with zero edges: {site:?}"
        );
        if site.method == u32::MAX {
            continue;
        }
        guest_rows += 1;
        frozen_edges += site.counts.shared_frozen;
        let method = MethodIdx(site.method);
        assert!(
            !os.class_table().method(method).elide_at(site.pc),
            "cross-heap edge at an elided store: {site:?}"
        );
        match analysis.site(method, site.pc) {
            None => assert!(
                analysis.is_bailed(method),
                "unanalyzed crossing site in a non-bailed method: {site:?}"
            ),
            Some(s) => assert_ne!(
                s.verdict,
                Verdict::Elide,
                "the analyzer elided a store that made a cross-heap edge: {site:?}"
            ),
        }
    }
    assert!(
        guest_rows > 0,
        "the workload must mint guest-attributed cross-heap edges: {census:?}"
    );
    assert!(
        frozen_edges > 0,
        "the holder's stores into the frozen shared heap must be counted"
    );
}

// ---------------------------------------------------------------------------
// 4. procfs round-trip
// ---------------------------------------------------------------------------

/// The heap procfs plane round-trips through guest code: a Cup program
/// reads its own `proc.heapinfo` / `proc.heapstats` and prints them. The
/// kernel-side text for the still-live process then reconciles exactly
/// with the walked recount for its heap, and the audit stays clean.
#[test]
fn heap_procfs_syscalls_round_trip_from_guest() {
    let mut os = build_os(true, false);
    os.register_image(
        "inspector",
        r#"
        class Main {
            static int main(int n) {
                int acc = 0;
                int[] keep = new int[64];
                for (int i = 0; i < 30; i = i + 1) {
                    int[] j = new int[16];
                    acc = acc + j[0] + keep[0] + i;
                }
                Sys.print(Proc.heapinfo(Proc.self_pid()));
                Sys.print(Proc.heapstats(Proc.self_pid()));
                while (true) { }
                return acc;
            }
        }
        "#,
    )
    .unwrap();
    let pid = os.spawn("inspector", "0", Some(1 << 20)).unwrap();
    os.run(Some(20_000_000));
    assert!(os.is_alive(pid), "the inspector spins after printing");

    // Guest-visible text: layout plus per-site statistics.
    let stdout = os.stdout(pid).join("\n");
    assert!(stdout.contains("pid:\t1"), "heapinfo pid line missing:\n{stdout}");
    assert!(stdout.contains("bytes_used:\t"), "heapinfo accounting missing:\n{stdout}");
    assert!(stdout.contains("nursery_pages:\t"), "heapinfo layout missing:\n{stdout}");
    assert!(stdout.contains("sites:"), "heapstats site table missing:\n{stdout}");
    assert!(stdout.contains("Main.main@b"), "heapstats lacks the allocating site:\n{stdout}");
    assert!(stdout.contains("allocs="), "heapstats lacks site counters:\n{stdout}");
    assert!(stdout.contains("int[]"), "heapstats lacks the array class:\n{stdout}");

    // Kernel-side text for the live process reconciles with the walked
    // recount: accounting and slot-table ground truth agree to the byte.
    os.audit().expect("inspector run audits clean");
    let info = os.proc_heapinfo_text(pid);
    let heap = procfs_u64(&info, "heap").expect("heap index line");
    let bytes = procfs_u64(&info, "bytes_used").expect("bytes_used line");
    let objects = procfs_u64(&info, "objects").expect("objects line");
    let pages = procfs_u64(&info, "pages").expect("pages line");
    let rc = os
        .heap_recounts()
        .into_iter()
        .find(|r| r.heap as u64 == heap)
        .expect("recount for the inspector heap");
    assert_eq!(rc.live_bytes, bytes, "accounted bytes diverge from the walk");
    assert_eq!(rc.live_objects, objects, "accounted objects diverge from the walk");
    let dump_pages = os
        .heap_dump()
        .lines()
        .filter(|l| {
            l.starts_with("{\"type\":\"page\"") && json_u64(l, "heap") == Some(heap)
        })
        .count() as u64;
    assert_eq!(dump_pages, pages, "page count diverges from the dump walk");

    // Unknown pids read as missing procfs files, not errors.
    assert_eq!(os.proc_heapinfo_text(Pid(99)), "");
    assert_eq!(os.proc_heapstats_text(Pid(99)), "");
}

// ---------------------------------------------------------------------------
// 5. Invisibility (fixtures unperturbed)
// ---------------------------------------------------------------------------

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The strongest free-when-off *and* free-when-on statement available: the
/// golden traces were recorded before the observability plane existed, and
/// a kernel running with the plane **enabled** must still reproduce them
/// byte for byte — recording allocation sites, survival, and the timeline
/// moves no virtual number at all.
#[test]
fn golden_trace_fixtures_hold_with_the_plane_enabled() {
    for seed in [1u64, 2, 3] {
        let mut os = build_os(true, true);
        os.install_faults(FaultPlan::from_seed(seed));
        spawn_workload(&mut os);
        os.run(Some(20_000_000));
        os.kernel_gc();
        let got = os.trace_jsonl();
        let path = fixture_path(&format!("trace_seed{seed}.jsonl"));
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        assert_eq!(
            got, want,
            "seed {seed}: the enabled plane perturbed the golden trace"
        );
        // The run really was observed while matching the fixture.
        assert!(os.space().heapprof().timeline_len() > 0);
    }
}
