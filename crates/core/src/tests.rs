//! End-to-end kernel tests: the paper's central claims, exercised through
//! real guest programs.

use crate::{ExitStatus, KaffeOs, KaffeOsConfig, Pid};

fn os() -> KaffeOs {
    KaffeOs::new(KaffeOsConfig::default())
}

fn spawn_src(os: &mut KaffeOs, name: &str, src: &str, limit: Option<u64>) -> Pid {
    os.register_image(name, src).expect("image compiles");
    os.spawn(name, "", limit).expect("spawn")
}

mod lifecycle {
    use super::*;

    #[test]
    fn process_runs_prints_and_exits() {
        let mut os = os();
        let pid = spawn_src(
            &mut os,
            "hello",
            r#"class Main { static int main() { Sys.print("hi"); return 42; } }"#,
            None,
        );
        let report = os.run(None);
        assert_eq!(os.status(pid), Some(ExitStatus::Exited(42)));
        assert_eq!(os.stdout(pid), ["hi".to_string()]);
        assert!(!report.deadlocked);
        assert!(report.clock > 0);
    }

    #[test]
    fn entry_point_signatures() {
        let mut os = os();
        let p1 = spawn_src(
            &mut os,
            "noargs",
            "class Main { static int main() { return 1; } }",
            None,
        );
        os.register_image(
            "strargs",
            r#"class Main { static int main(String args) { return args.len(); } }"#,
        )
        .unwrap();
        let p2 = os.spawn("strargs", "hello", None).unwrap();
        os.register_image(
            "intargs",
            "class Main { static int main(int n) { return n * 2; } }",
        )
        .unwrap();
        let p3 = os.spawn("intargs", "21", None).unwrap();
        os.run(None);
        assert_eq!(os.status(p1), Some(ExitStatus::Exited(1)));
        assert_eq!(os.status(p2), Some(ExitStatus::Exited(5)));
        assert_eq!(os.status(p3), Some(ExitStatus::Exited(42)));
    }

    #[test]
    fn proc_exit_sets_code() {
        let mut os = os();
        let pid = spawn_src(
            &mut os,
            "exiter",
            r#"class Main { static int main() { Proc.exit(7); return 99; } }"#,
            None,
        );
        os.run(None);
        assert_eq!(os.status(pid), Some(ExitStatus::Exited(7)));
    }

    #[test]
    fn uncaught_exception_reported() {
        let mut os = os();
        let pid = spawn_src(
            &mut os,
            "crasher",
            "class Main { static int main() { return 1 / 0; } }",
            None,
        );
        os.run(None);
        match os.status(pid) {
            Some(ExitStatus::UncaughtException { class, .. }) => {
                assert_eq!(class, "ArithmeticException");
            }
            other => panic!("unexpected status {other:?}"),
        }
    }

    #[test]
    fn round_robin_interleaves_processes() {
        let mut os = os();
        let src = r#"
            class Main {
                static int main() {
                    int acc = 0;
                    for (int i = 0; i < 200000; i = i + 1) { acc = acc + i; }
                    return 0;
                }
            }
        "#;
        let p1 = spawn_src(&mut os, "w1", src, None);
        os.register_image("w2", src).unwrap();
        let p2 = os.spawn("w2", "", None).unwrap();
        let report = os.run(None);
        assert!(report.quanta > 4, "both ran across multiple quanta");
        assert_eq!(os.status(p1), Some(ExitStatus::Exited(0)));
        assert_eq!(os.status(p2), Some(ExitStatus::Exited(0)));
        // Fairness: equal work → similar CPU.
        let c1 = os.cpu(p1).total() as f64;
        let c2 = os.cpu(p2).total() as f64;
        assert!((c1 / c2 - 1.0).abs() < 0.1, "cpu {c1} vs {c2}");
    }
}

mod resource_management {
    use super::*;

    #[test]
    fn memhog_is_killed_by_its_memlimit_without_harming_others() {
        let mut os = os();
        // MemHog: allocates and *retains* memory (the §4.2 servlet).
        let hog = spawn_src(
            &mut os,
            "memhog",
            r#"
            class Main {
                static int main() {
                    Vector keep = new Vector();
                    while (true) { keep.add(new int[1024]); }
                    return 0;
                }
            }
            "#,
            Some(1 << 20), // 1 MB
        );
        let good = spawn_src(
            &mut os,
            "good",
            r#"
            class Main {
                static int main() {
                    int acc = 0;
                    for (int i = 0; i < 100000; i = i + 1) { acc = acc + i; }
                    return 123;
                }
            }
            "#,
            Some(1 << 20),
        );
        os.run(None);
        assert!(
            os.status(hog).map(|s| s.is_oom()).unwrap_or(false),
            "memhog dies of OOM: {:?}",
            os.status(hog)
        );
        assert_eq!(
            os.status(good),
            Some(ExitStatus::Exited(123)),
            "well-behaved process is unaffected"
        );
    }

    #[test]
    fn garbage_is_collected_transparently_within_the_limit() {
        let mut os = os();
        // Allocates ~40 MB of garbage inside a 1 MB limit: the GC-on-
        // allocation-failure policy must absorb it.
        let pid = spawn_src(
            &mut os,
            "churn",
            r#"
            class Main {
                static int main() {
                    int acc = 0;
                    for (int i = 0; i < 10000; i = i + 1) {
                        int[] garbage = new int[1000];
                        garbage[0] = i;
                        acc = acc + garbage[0];
                    }
                    return acc / 10000;
                }
            }
            "#,
            Some(1 << 20),
        );
        os.run(None);
        assert_eq!(os.status(pid), Some(ExitStatus::Exited(4999)));
        assert!(os.cpu(pid).gc > 0, "GC cycles were charged to the process");
    }

    #[test]
    fn gc_cycles_charged_to_the_allocating_process() {
        let mut os = os();
        let churn = spawn_src(
            &mut os,
            "churn",
            r#"
            class Main {
                static int main() {
                    for (int i = 0; i < 5000; i = i + 1) {
                        int[] garbage = new int[1000];
                        garbage[0] = i;
                    }
                    return 0;
                }
            }
            "#,
            Some(1 << 20),
        );
        let idle = spawn_src(
            &mut os,
            "idle",
            r#"
            class Main {
                static int main() {
                    int acc = 0;
                    for (int i = 0; i < 50000; i = i + 1) { acc = acc + 1; }
                    return 0;
                }
            }
            "#,
            Some(1 << 20),
        );
        os.run(None);
        assert!(os.cpu(churn).gc > 0, "allocator pays for its collections");
        assert_eq!(os.cpu(idle).gc, 0, "non-allocating process pays nothing");
    }

    #[test]
    fn memory_fully_reclaimed_after_exit() {
        let mut os = os();
        let pid = spawn_src(
            &mut os,
            "allocator",
            r#"
            class Main {
                static int main() {
                    Vector keep = new Vector();
                    for (int i = 0; i < 100; i = i + 1) { keep.add(new int[256]); }
                    return 0;
                }
            }
            "#,
            Some(4 << 20),
        );
        os.run(None);
        assert_eq!(os.status(pid), Some(ExitStatus::Exited(0)));
        // The process heap was merged into the kernel heap at exit; a
        // kernel GC cycle then reclaims every byte it allocated.
        let kernel_heap = os.space.kernel_heap();
        let before = os.space.heap_bytes(kernel_heap).unwrap();
        assert!(
            before > 100 * 256 * 4,
            "merged objects are on the kernel heap"
        );
        os.kernel_gc();
        let after = os.space.heap_bytes(kernel_heap).unwrap();
        assert!(
            after < 1024,
            "kernel GC reclaims the terminated process' memory ({before} -> {after})"
        );
        // And the user-budget memlimit is fully drained.
        assert_eq!(os.space.limits().current(os.space.root_memlimit()), 0);
    }

    #[test]
    fn cpu_accounting_separates_processes() {
        let mut os = os();
        let busy = spawn_src(
            &mut os,
            "busy",
            r#"
            class Main {
                static int main() {
                    int acc = 0;
                    for (int i = 0; i < 300000; i = i + 1) { acc = acc + i; }
                    return 0;
                }
            }
            "#,
            None,
        );
        let brief = spawn_src(
            &mut os,
            "brief",
            "class Main { static int main() { return 0; } }",
            None,
        );
        os.run(None);
        assert!(
            os.cpu(busy).exec > 10 * os.cpu(brief).exec,
            "busy {:?} vs brief {:?}",
            os.cpu(busy),
            os.cpu(brief)
        );
    }

    #[test]
    fn sys_heap_introspection() {
        let mut os = os();
        let pid = spawn_src(
            &mut os,
            "introspect",
            r#"
            class Main {
                static int main() {
                    int[] keep = new int[1000];
                    keep[0] = 1;
                    if (Sys.heap_used() < 4000) { return -1; }
                    if (Sys.heap_limit() != 2097152) { return -2; }
                    return 0;
                }
            }
            "#,
            Some(2 << 20),
        );
        os.run(None);
        assert_eq!(os.status(pid), Some(ExitStatus::Exited(0)));
    }
}

mod termination {
    use super::*;

    #[test]
    fn kill_terminates_a_spinning_process() {
        let mut os = os();
        let spinner = spawn_src(
            &mut os,
            "spinner",
            "class Main { static int main() { while (true) { } return 0; } }",
            None,
        );
        // Let it run a while, then kill it.
        os.run(Some(2_000_000));
        assert!(os.is_alive(spinner), "spinner still spinning");
        os.kill(spinner).unwrap();
        os.run(None);
        assert_eq!(os.status(spinner), Some(ExitStatus::Killed));
        // Memory reclaimed.
        os.kernel_gc();
        assert_eq!(os.space.limits().current(os.space.root_memlimit()), 0);
    }

    #[test]
    fn guest_can_kill_another_process() {
        let mut os = os();
        let victim = spawn_src(
            &mut os,
            "victim",
            "class Main { static int main() { while (true) { } return 0; } }",
            None,
        );
        os.register_image(
            "killer",
            r#"
            class Main {
                static int main(int target) {
                    Proc.kill(target);
                    return Proc.wait(target);
                }
            }
            "#,
        )
        .unwrap();
        let killer = os.spawn("killer", &victim.0.to_string(), None).unwrap();
        os.run(None);
        assert_eq!(os.status(victim), Some(ExitStatus::Killed));
        // wait() on a killed process returns -1.
        assert_eq!(os.status(killer), Some(ExitStatus::Exited(-1)));
    }

    #[test]
    fn spawn_and_wait_from_guest() {
        let mut os = os();
        os.register_image("child", "class Main { static int main() { return 33; } }")
            .unwrap();
        os.register_image(
            "parent",
            r#"
            class Main {
                static int main() {
                    int pid = Proc.spawn("child", "", 0);
                    if (pid < 0) { return -1; }
                    return Proc.wait(pid);
                }
            }
            "#,
        )
        .unwrap();
        let parent = os.spawn("parent", "", None).unwrap();
        os.run(None);
        assert_eq!(os.status(parent), Some(ExitStatus::Exited(33)));
    }

    #[test]
    fn kill_releases_monitors_of_the_dead() {
        let mut os = os();
        // Holds a monitor forever.
        let holder = spawn_src(
            &mut os,
            "holder",
            r#"
            class Main {
                static int main() {
                    Object lock = new Object();
                    sync (lock) { while (true) { } }
                    return 0;
                }
            }
            "#,
            None,
        );
        os.run(Some(1_000_000));
        os.kill(holder).unwrap();
        let report = os.run(None);
        assert_eq!(os.status(holder), Some(ExitStatus::Killed));
        assert!(!report.deadlocked);
    }

    #[test]
    fn mutual_wait_deadlock_is_detected() {
        let mut os = os();
        os.register_image(
            "waiter",
            r#"
            class Main {
                static int main(int other) { return Proc.wait(other); }
            }
            "#,
        )
        .unwrap();
        // p1 waits for p2; p2 waits for p1.
        let p1 = os.spawn("waiter", "2", None).unwrap();
        let p2 = os.spawn("waiter", "1", None).unwrap();
        let report = os.run(None);
        assert!(report.deadlocked);
        assert!(os.is_alive(p1) && os.is_alive(p2));
    }

    #[test]
    fn kill_of_kernel_parked_thread_is_deferred_until_wakeup() {
        let mut os = os();
        // The waiter parks inside the kernel (proc.wait → kernel_depth 1).
        let sleeper = spawn_src(
            &mut os,
            "sleeper",
            "class Main { static int main() { while (true) { } return 0; } }",
            None,
        );
        os.register_image(
            "waiter",
            r#"class Main { static int main(int t) { return Proc.wait(t); } }"#,
        )
        .unwrap();
        let waiter = os.spawn("waiter", &sleeper.0.to_string(), None).unwrap();
        os.run(Some(1_000_000));
        // Kill the waiter while it is parked in the kernel: deferred.
        os.kill(waiter).unwrap();
        assert!(os.is_alive(waiter), "kill deferred while inside the kernel");
        // When the wait completes (sleeper dies), the waiter leaves the
        // kernel and the deferred kill lands.
        os.kill(sleeper).unwrap();
        os.run(None);
        assert_eq!(os.status(sleeper), Some(ExitStatus::Killed));
        assert_eq!(os.status(waiter), Some(ExitStatus::Killed));
    }
}

mod namespaces {
    use super::*;

    #[test]
    fn reloaded_console_statics_are_per_process() {
        let mut os = os();
        let src = r#"
            class Main {
                static int main() {
                    Console.println("a");
                    Console.println("b");
                    return Console.lineCount();
                }
            }
        "#;
        let p1 = spawn_src(&mut os, "c1", src, None);
        os.register_image("c2", src).unwrap();
        let p2 = os.spawn("c2", "", None).unwrap();
        os.run(None);
        // Each process sees only its own Console.lines (reloaded class,
        // §3.2); were Console shared, the second would see 4.
        assert_eq!(os.status(p1), Some(ExitStatus::Exited(2)));
        assert_eq!(os.status(p2), Some(ExitStatus::Exited(2)));
    }

    #[test]
    fn monolithic_mode_shares_statics_between_guests() {
        let mut os = KaffeOs::new(KaffeOsConfig::monolithic(crate::Engine::JIT_IBM, 64 << 20));
        let src = r#"
            class Main {
                static int main() {
                    Console.println("x");
                    return Console.lineCount();
                }
            }
        "#;
        let p1 = spawn_src(&mut os, "m1", src, None);
        let p2 = os.spawn("m1", "", None).unwrap();
        os.run(None);
        // No isolation: the second guest observes the first one's statics.
        let a = match os.status(p1) {
            Some(ExitStatus::Exited(v)) => v,
            other => panic!("{other:?}"),
        };
        let b = match os.status(p2) {
            Some(ExitStatus::Exited(v)) => v,
            other => panic!("{other:?}"),
        };
        // Each guest printed once; because Console is shared, at least one
        // of them observed the other's line too (exact split depends on
        // interleaving).
        assert!(a + b >= 3, "line counts accumulate across guests: {a}, {b}");
        assert!(a.max(b) == 2);
    }

    #[test]
    fn class_sharing_counts_reported() {
        let os = os();
        let (shared, reloaded) = os.class_sharing_counts();
        assert!(shared >= 15, "stdlib loads at least 15 shared classes");
        assert_eq!(reloaded, 2);
    }
}

mod shared_heaps {
    use super::*;

    /// A shared message type: primitive fields only stay mutable after
    /// freezing.
    const SHARED_TYPES: &str = r#"
        class Cell {
            int value;
            int flag;
        }
    "#;

    #[test]
    fn processes_communicate_through_a_shared_heap() {
        let mut os = os();
        os.load_shared_source(SHARED_TYPES).unwrap();
        os.register_image(
            "producer",
            r#"
            class Main {
                static int main() {
                    Shm.create("box", "Cell", 1);
                    Cell c = Shm.get("box", 0) as Cell;
                    c.value = 42;
                    c.flag = 1;
                    return 0;
                }
            }
            "#,
        )
        .unwrap();
        os.register_image(
            "consumer",
            r#"
            class Main {
                static int main() {
                    while (Shm.lookup("box") < 0) { Sys.yield(); }
                    Cell c = Shm.get("box", 0) as Cell;
                    while (c.flag == 0) { Sys.yield(); }
                    return c.value;
                }
            }
            "#,
        )
        .unwrap();
        let producer = os.spawn("producer", "", None).unwrap();
        let consumer = os.spawn("consumer", "", None).unwrap();
        os.run(None);
        assert_eq!(os.status(producer), Some(ExitStatus::Exited(0)));
        assert_eq!(
            os.status(consumer),
            Some(ExitStatus::Exited(42)),
            "value crossed processes through the shared heap"
        );
    }

    #[test]
    fn frozen_reference_fields_raise_segmentation_violations() {
        let mut os = os();
        os.load_shared_source("class Pair { int x; Pair other; }")
            .unwrap();
        let pid = spawn_src(
            &mut os,
            "violator",
            r#"
            class Main {
                static int main() {
                    Shm.create("pair", "Pair", 2);
                    Pair p = Shm.get("pair", 0) as Pair;
                    Pair q = Shm.get("pair", 1) as Pair;
                    p.x = 5; // primitive: fine
                    try {
                        p.other = q; // reference field of a frozen shared object
                        return -1;
                    } catch (SegmentationViolation e) {
                        return p.x;
                    }
                }
            }
            "#,
            None,
        );
        os.run(None);
        assert_eq!(os.status(pid), Some(ExitStatus::Exited(5)));
    }

    #[test]
    fn all_sharers_charged_in_full() {
        let mut os = os();
        os.load_shared_source(SHARED_TYPES).unwrap();
        os.register_image(
            "creator",
            r#"
            class Main {
                static int main() {
                    Shm.create("c", "Cell", 100);
                    Cell c = Shm.get("c", 0) as Cell;
                    while (c.flag == 0) { Sys.yield(); }
                    return 0;
                }
            }
            "#,
        )
        .unwrap();
        os.register_image(
            "sharer",
            r#"
            class Main {
                static int main() {
                    while (Shm.lookup("c") < 0) { Sys.yield(); }
                    Cell c = Shm.get("c", 0) as Cell;
                    c.flag = 1;
                    return 0;
                }
            }
            "#,
        )
        .unwrap();
        let creator = os.spawn("creator", "", Some(4 << 20)).unwrap();
        let sharer = os.spawn("sharer", "", Some(4 << 20)).unwrap();
        os.run(Some(50_000_000));
        let size = os.shm_registry().get("c").map(|s| s.size).unwrap_or(0);
        assert!(size >= 100 * 16, "heap holds 100 Cells");
        // While both are live sharers, both memlimits carry the full size.
        let _ = (creator, sharer);
    }

    #[test]
    fn sharer_without_budget_cannot_attach() {
        let mut os = os();
        os.load_shared_source(SHARED_TYPES).unwrap();
        os.register_image(
            "bigcreator",
            r#"
            class Main {
                static int main() {
                    Shm.create("big", "Cell", 5000);
                    while (true) { Sys.yield(); }
                    return 0;
                }
            }
            "#,
        )
        .unwrap();
        os.register_image(
            "poor",
            r#"
            class Main {
                static int main() {
                    while (true) {
                        try {
                            int n = Shm.lookup("big");
                            if (n > 0) { return -1; } // attached?!
                        } catch (OutOfMemoryError e) {
                            return 7; // correctly refused: cannot pay
                        }
                        Sys.yield();
                    }
                    return 0;
                }
            }
            "#,
        )
        .unwrap();
        let creator = os.spawn("bigcreator", "", Some(8 << 20)).unwrap();
        // 64 KB budget cannot cover a 5000-object shared heap (~80 KB+).
        let poor = os.spawn("poor", "", Some(64 << 10)).unwrap();
        os.run(Some(100_000_000));
        assert_eq!(os.status(poor), Some(ExitStatus::Exited(7)));
        os.kill(creator).unwrap();
    }

    #[test]
    fn orphaned_shared_heap_is_merged_and_reclaimed() {
        let mut os = os();
        os.load_shared_source(SHARED_TYPES).unwrap();
        let pid = spawn_src(
            &mut os,
            "creator",
            r#"
            class Main {
                static int main() {
                    Shm.create("tmp", "Cell", 10);
                    return 0;
                }
            }
            "#,
            None,
        );
        os.run(None);
        assert_eq!(os.status(pid), Some(ExitStatus::Exited(0)));
        // Creator died: the only sharer is gone; the kernel collector
        // merges the orphan at the start of its next cycle.
        assert_eq!(os.shm_registry().len(), 1, "still registered before GC");
        os.kernel_gc();
        assert_eq!(os.shm_registry().len(), 0, "orphan merged by kernel GC");
        os.kernel_gc();
        assert_eq!(
            os.space.limits().current(os.space.root_memlimit()),
            0,
            "every byte reclaimed"
        );
    }

    #[test]
    fn creator_exit_leaves_heap_alive_for_other_sharers() {
        let mut os = os();
        os.load_shared_source(SHARED_TYPES).unwrap();
        os.register_image(
            "creator",
            r#"
            class Main {
                static int main() {
                    Shm.create("ch", "Cell", 1);
                    Cell c = Shm.get("ch", 0) as Cell;
                    c.value = 55;
                    return 0; // dies immediately
                }
            }
            "#,
        )
        .unwrap();
        os.register_image(
            "reader",
            r#"
            class Main {
                static int main() {
                    while (Shm.lookup("ch") < 0) { Sys.yield(); }
                    Cell c = Shm.get("ch", 0) as Cell;
                    while (c.value == 0) { Sys.yield(); }
                    return c.value;
                }
            }
            "#,
        )
        .unwrap();
        let creator = os.spawn("creator", "", None).unwrap();
        let reader = os.spawn("reader", "", None).unwrap();
        os.run(None);
        assert_eq!(os.status(creator), Some(ExitStatus::Exited(0)));
        assert_eq!(
            os.status(reader),
            Some(ExitStatus::Exited(55)),
            "data survives the creator's exit while sharers remain"
        );
    }
}

mod monolithic {
    use super::*;

    #[test]
    fn memhog_exhausts_the_whole_vm() {
        // In a monolithic VM a MemHog's allocations are charged to the one
        // global heap; an innocent allocator can then OOM "in seemingly
        // random places" (§4.2).
        let mut os = KaffeOs::new(KaffeOsConfig::monolithic(
            crate::Engine::JIT_IBM,
            2 << 20, // 2 MB for everyone
        ));
        os.register_image(
            "hog",
            r#"
            class Main {
                static int main() {
                    Vector keep = new Vector();
                    while (true) { keep.add(new int[1024]); }
                    return 0;
                }
            }
            "#,
        )
        .unwrap();
        os.register_image(
            "innocent",
            r#"
            class Main {
                static int main() {
                    int acc = 0;
                    for (int i = 0; i < 200000; i = i + 1) {
                        String s = "x" + i;   // modest allocation
                        acc = acc + s.len();
                    }
                    return acc;
                }
            }
            "#,
        )
        .unwrap();
        let hog = os.spawn("hog", "", None).unwrap();
        let innocent = os.spawn("innocent", "", None).unwrap();
        os.run(None);
        let hog_oom = os.status(hog).map(|s| s.is_oom()).unwrap_or(false);
        let innocent_oom = os.status(innocent).map(|s| s.is_oom()).unwrap_or(false);
        assert!(
            hog_oom || innocent_oom,
            "someone must OOM: hog={:?} innocent={:?}",
            os.status(hog),
            os.status(innocent)
        );
        // The defining failure of the monolithic design: the hog's
        // allocations can take down the innocent guest.
        assert!(
            innocent_oom,
            "the innocent guest is hit by the hog's memory exhaustion: {:?}",
            os.status(innocent)
        );
    }

    #[test]
    fn kaffeos_isolates_the_same_pair() {
        // The same two programs under KaffeOS with per-process limits: the
        // hog dies alone.
        let mut os = KaffeOs::new(KaffeOsConfig {
            default_process_limit: 1 << 20,
            ..KaffeOsConfig::default()
        });
        os.register_image(
            "hog",
            r#"
            class Main {
                static int main() {
                    Vector keep = new Vector();
                    while (true) { keep.add(new int[1024]); }
                    return 0;
                }
            }
            "#,
        )
        .unwrap();
        os.register_image(
            "innocent",
            r#"
            class Main {
                static int main() {
                    int acc = 0;
                    for (int i = 0; i < 20000; i = i + 1) {
                        String s = "x" + i;
                        acc = acc + s.len();
                    }
                    return acc;
                }
            }
            "#,
        )
        .unwrap();
        let hog = os.spawn("hog", "", None).unwrap();
        let innocent = os.spawn("innocent", "", None).unwrap();
        os.run(None);
        assert!(os.status(hog).map(|s| s.is_oom()).unwrap_or(false));
        assert!(
            matches!(os.status(innocent), Some(ExitStatus::Exited(_))),
            "isolated: {:?}",
            os.status(innocent)
        );
    }
}

mod accounting_integrity {
    use super::*;

    #[test]
    fn barrier_stats_accumulate_in_kaffeos_mode() {
        let mut os = os();
        let pid = spawn_src(
            &mut os,
            "linker",
            r#"
            class Node { Node next; }
            class Main {
                static int main() {
                    Node head = null;
                    for (int i = 0; i < 100; i = i + 1) {
                        Node fresh = new Node();
                        fresh.next = head;
                        head = fresh;
                    }
                    return 0;
                }
            }
            "#,
            None,
        );
        os.run(None);
        assert_eq!(os.status(pid), Some(ExitStatus::Exited(0)));
        let stats = os.barrier_stats();
        assert!(
            stats.executed >= 100,
            "barriers counted: {}",
            stats.executed
        );
        assert!(stats.cycles >= stats.executed * 41);
        assert_eq!(stats.violations, 0);
    }

    #[test]
    fn virtual_clock_advances_deterministically() {
        let run = || {
            let mut os = os();
            let _ = spawn_src(
                &mut os,
                "det",
                r#"
                class Main {
                    static int main() {
                        int acc = 0;
                        for (int i = 0; i < 10000; i = i + 1) {
                            acc = acc + Sys.rand(100);
                        }
                        return acc % 1000;
                    }
                }
                "#,
                None,
            );
            let report = os.run(None);
            (report.clock, report.processes[0].status.clone())
        };
        let (c1, s1) = run();
        let (c2, s2) = run();
        assert_eq!(c1, c2, "identical runs produce identical clocks");
        assert_eq!(s1, s2);
    }
}

mod cpu_policy {
    use super::*;
    use crate::SpawnOpts;

    #[test]
    fn cpu_limit_kills_a_runaway_process() {
        let mut os = os();
        os.register_image(
            "spinner",
            "class Main { static int main() { while (true) { } return 0; } }",
        )
        .unwrap();
        let bounded = os
            .spawn_with(
                "spinner",
                "",
                SpawnOpts {
                    cpu_limit: Some(5_000_000),
                    ..SpawnOpts::default()
                },
            )
            .unwrap();
        let unbounded = os.spawn("spinner", "", None).unwrap();
        os.run(Some(40_000_000));
        assert_eq!(
            os.status(bounded),
            Some(ExitStatus::CpuLimitExceeded),
            "budgeted spinner is killed once over its CPU limit"
        );
        assert!(os.is_alive(unbounded), "unbudgeted spinner keeps running");
        assert!(
            os.cpu(bounded).total() >= 5_000_000,
            "the limit was actually consumed"
        );
        os.kill(unbounded).unwrap();
    }

    #[test]
    fn cpu_limited_process_that_finishes_in_budget_is_untouched() {
        let mut os = os();
        os.register_image("brief", "class Main { static int main() { return 11; } }")
            .unwrap();
        let pid = os
            .spawn_with(
                "brief",
                "",
                SpawnOpts {
                    cpu_limit: Some(50_000_000),
                    ..SpawnOpts::default()
                },
            )
            .unwrap();
        os.run(None);
        assert_eq!(os.status(pid), Some(ExitStatus::Exited(11)));
    }

    #[test]
    fn cpu_shares_give_proportional_service() {
        let mut os = os();
        os.register_image(
            "spinner",
            "class Main { static int main() { while (true) { } return 0; } }",
        )
        .unwrap();
        let small = os
            .spawn_with(
                "spinner",
                "",
                SpawnOpts {
                    cpu_share: 100,
                    ..SpawnOpts::default()
                },
            )
            .unwrap();
        let large = os
            .spawn_with(
                "spinner",
                "",
                SpawnOpts {
                    cpu_share: 300,
                    ..SpawnOpts::default()
                },
            )
            .unwrap();
        os.run(Some(80_000_000));
        let ratio = os.cpu(large).total() as f64 / os.cpu(small).total() as f64;
        assert!(
            (2.5..=3.5).contains(&ratio),
            "3x share gets ~3x CPU, got {ratio:.2}"
        );
        os.kill(small).unwrap();
        os.kill(large).unwrap();
    }

    #[test]
    fn hard_memlimit_reserves_memory_up_front() {
        let mut os = os();
        os.register_image(
            "idle",
            "class Main { static int main() { while (true) { Sys.yield(); } return 0; } }",
        )
        .unwrap();
        let root = os.space().root_memlimit();
        let before = os.space().limits().current(root);
        let pid = os
            .spawn_with(
                "idle",
                "",
                SpawnOpts {
                    mem_limit: Some(32 << 20),
                    mem_hard: true,
                    ..SpawnOpts::default()
                },
            )
            .unwrap();
        let reserved = os.space().limits().current(root);
        assert!(
            reserved >= before + (32 << 20),
            "hard spawn reserves its full limit from the machine budget"
        );
        // The reservation is returned in full at termination.
        os.kill(pid).unwrap();
        os.run(Some(1_000_000));
        assert_eq!(os.space().limits().current(root), before);
    }

    #[test]
    fn hard_reservations_exclude_each_other() {
        // Two 160 MB hard processes cannot coexist in a 256 MB machine —
        // the second spawn must fail up front rather than fighting at
        // allocation time.
        let mut os = os();
        os.register_image(
            "idle",
            "class Main { static int main() { while (true) { Sys.yield(); } return 0; } }",
        )
        .unwrap();
        let opts = SpawnOpts {
            mem_limit: Some(160 << 20),
            mem_hard: true,
            ..SpawnOpts::default()
        };
        let first = os.spawn_with("idle", "", opts).unwrap();
        let second = os.spawn_with("idle", "", opts);
        assert!(second.is_err(), "reservation cannot be satisfied");
        os.kill(first).unwrap();
        // After the first dies, the reservation frees and a new hard
        // process fits.
        os.run(Some(1_000_000));
        os.spawn_with("idle", "", opts).unwrap();
    }
}

mod stdlib_coverage {
    use super::*;

    fn guest_int(src: &str) -> i64 {
        let mut os = os();
        let pid = spawn_src(&mut os, "t", src, None);
        os.run(None);
        match os.status(pid) {
            Some(ExitStatus::Exited(v)) => v,
            other => panic!("guest ended with {other:?}"),
        }
    }

    #[test]
    fn text_utilities() {
        let src = r#"
            class Main {
                static int main() {
                    int acc = 0;
                    if (Text.startsWith("KaffeOS", "Kaffe")) { acc = acc + 1; }
                    if (Text.endsWith("KaffeOS", "OS")) { acc = acc + 10; }
                    if (Text.indexOf("process model", "cess") == 3) { acc = acc + 100; }
                    if (!Text.contains("heap", "stack")) { acc = acc + 1000; }
                    if (Text.repeat("ab", 3).eq("ababab")) { acc = acc + 10000; }
                    if (Text.reverse("gc").eq("cg")) { acc = acc + 100000; }
                    return acc;
                }
            }
        "#;
        assert_eq!(guest_int(src), 111111);
    }

    #[test]
    fn stack_lifo_discipline() {
        let src = r#"
            class Num { int v; init(int v) { this.v = v; } }
            class Main {
                static int main() {
                    Stack s = new Stack();
                    for (int i = 1; i <= 20; i = i + 1) { s.push(new Num(i)); }
                    int acc = 0;
                    int weight = 1;
                    while (!s.isEmpty()) {
                        Num top = s.pop() as Num;
                        if (weight <= 4) { acc = acc * 100 + top.v; }
                        weight = weight + 1;
                    }
                    return acc; // 20, 19, 18, 17 in order
                }
            }
        "#;
        assert_eq!(guest_int(src), 20191817);
    }

    #[test]
    fn bitset_operations() {
        let src = r#"
            class Main {
                static int main() {
                    BitSet b = new BitSet(200);
                    for (int i = 0; i < 200; i = i + 3) { b.set(i); }
                    b.clear(0);
                    b.clear(99);
                    int acc = b.popcount();
                    if (b.get(3) && !b.get(4) && !b.get(0)) { acc = acc + 1000; }
                    return acc;
                }
            }
        "#;
        // multiples of 3 below 200: 67 set; clear(0) removes one; 99 is a
        // multiple of 3 → removes another → 65.
        assert_eq!(guest_int(src), 1065);
    }

    #[test]
    fn quicksort_and_binary_search() {
        let src = r#"
            class Main {
                static int main() {
                    Random.setSeed(77);
                    int[] a = new int[300];
                    for (int i = 0; i < a.len(); i = i + 1) { a[i] = Random.next(10000); }
                    Sort.quicksort(a);
                    if (!Sort.isSorted(a)) { return -1; }
                    int hits = 0;
                    for (int i = 0; i < a.len(); i = i + 7) {
                        if (Sort.binarySearch(a, a[i]) >= 0) { hits = hits + 1; }
                    }
                    if (Sort.binarySearch(a, -1) != -1) { return -2; }
                    return hits;
                }
            }
        "#;
        assert_eq!(guest_int(src), (300 + 6) / 7);
    }

    #[test]
    fn intmap_with_rehash() {
        let src = r#"
            class Val { int v; init(int v) { this.v = v; } }
            class Main {
                static int main() {
                    IntMap m = new IntMap();
                    for (int i = 0; i < 500; i = i + 1) {
                        m.put(i * 17, new Val(i));
                    }
                    if (m.count() != 500) { return -1; }
                    int acc = 0;
                    for (int i = 0; i < 500; i = i + 50) {
                        Val v = m.get(i * 17) as Val;
                        acc = acc + v.v;
                    }
                    if (m.has(3)) { return -2; }
                    m.put(17, new Val(9999));     // overwrite
                    Val over = m.get(17) as Val;
                    if (over.v != 9999) { return -3; }
                    return acc;
                }
            }
        "#;
        assert_eq!(guest_int(src), (0..500).step_by(50).sum::<i64>());
    }

    #[test]
    fn queue_ring_buffer_wraps() {
        let src = r#"
            class Num { int v; init(int v) { this.v = v; } }
            class Main {
                static int main() {
                    Queue q = new Queue();
                    int acc = 0;
                    // Interleave pushes and pops to force wraparound.
                    for (int round = 0; round < 50; round = round + 1) {
                        q.push(new Num(round));
                        q.push(new Num(round + 100));
                        Num head = q.pop() as Num;
                        acc = (acc + head.v) % 100003;
                    }
                    while (q.size() > 0) {
                        Num head = q.pop() as Num;
                        acc = (acc + head.v) % 100003;
                    }
                    return acc;
                }
            }
        "#;
        // FIFO over pushes [0,100,1,101,...]: total = sum(0..50) + sum(100..150)
        let expected: i64 = (0..50).sum::<i64>() + (100..150).sum::<i64>();
        assert_eq!(guest_int(src), expected % 100003);
    }

    #[test]
    fn math_sqrt_precision() {
        let src = r#"
            class Main {
                static int main() {
                    float x = Math.sqrt(2.0) * 10000.0;
                    int approx = x.toInt();
                    if (approx >= 14141 && approx <= 14143) { return 1; }
                    return approx;
                }
            }
        "#;
        assert_eq!(guest_int(src), 1);
    }

    #[test]
    fn stringmap_collisions_and_rehash() {
        let src = r#"
            class Val { int v; init(int v) { this.v = v; } }
            class Main {
                static int main() {
                    StringMap m = new StringMap();
                    for (int i = 0; i < 200; i = i + 1) {
                        m.put("key" + i, new Val(i * 3));
                    }
                    int acc = 0;
                    for (int i = 0; i < 200; i = i + 25) {
                        Val v = m.get("key" + i) as Val;
                        acc = acc + v.v;
                    }
                    if (m.get("missing") != null) { return -1; }
                    return acc;
                }
            }
        "#;
        let expected: i64 = (0..200).step_by(25).map(|i| i * 3).sum();
        assert_eq!(guest_int(src), expected);
    }
}

mod threads {
    use super::*;

    #[test]
    fn in_process_threads_share_statics() {
        let mut os = os();
        let pid = spawn_src(
            &mut os,
            "workers",
            r#"
            class Work {
                static int sum;
                static int done;
                static void run(int base) {
                    int acc = 0;
                    for (int i = 0; i < 1000; i = i + 1) { acc = acc + base; }
                    sync (Work.lock()) {
                        Work.sum = Work.sum + acc;
                        Work.done = Work.done + 1;
                    }
                }
                static Object lockObj;
                static Object lock() {
                    if (Work.lockObj == null) { Work.lockObj = new Object(); }
                    return Work.lockObj;
                }
            }
            class Main {
                static int main() {
                    Proc.thread("Work", "run", 1);
                    Proc.thread("Work", "run", 2);
                    Work.run(3);
                    while (Work.done < 3) { Sys.yield(); }
                    return Work.sum;
                }
            }
            "#,
            None,
        );
        os.run(None);
        assert_eq!(
            os.status(pid),
            Some(ExitStatus::Exited(1000 * (1 + 2 + 3))),
            "three threads accumulated into shared statics"
        );
    }

    #[test]
    fn kill_terminates_every_thread_of_the_process() {
        let mut os = os();
        let pid = spawn_src(
            &mut os,
            "hydra",
            r#"
            class Spin {
                static void forever(int n) { while (true) { } }
            }
            class Main {
                static int main() {
                    Proc.thread("Spin", "forever", 1);
                    Proc.thread("Spin", "forever", 2);
                    while (true) { }
                    return 0;
                }
            }
            "#,
            None,
        );
        os.run(Some(5_000_000));
        assert!(os.is_alive(pid));
        os.kill(pid).unwrap();
        os.run(Some(os.clock() + 5_000_000));
        assert_eq!(os.status(pid), Some(ExitStatus::Killed));
        // Everything reclaimed despite three live spinning threads.
        os.kernel_gc();
        assert_eq!(os.space().limits().current(os.space().root_memlimit()), 0);
    }

    #[test]
    fn thread_spawn_with_bad_target_raises() {
        let mut os = os();
        let pid = spawn_src(
            &mut os,
            "badthread",
            r#"
            class Main {
                static int main() {
                    try {
                        Proc.thread("NoSuchClass", "run", 0);
                        return -1;
                    } catch (IllegalStateException e) {
                        return 5;
                    }
                }
            }
            "#,
            None,
        );
        os.run(None);
        assert_eq!(os.status(pid), Some(ExitStatus::Exited(5)));
    }

    #[test]
    fn gc_crosstalk_threads_inflate_collection_cost() {
        // §2: "a process could create many threads in an effort to get the
        // system to scan them all" — the crosstalk the paper accepts. A
        // process with many deep-stacked threads pays more per collection.
        let make = |threads: i64| {
            let mut os = os();
            os.register_image(
                "deep",
                r#"
                class Deep {
                    static int running;
                    static void dive(int n) {
                        Deep.running = Deep.running + 1;
                        Deep.sink(150);
                    }
                    static void sink(int n) {
                        if (n > 0) { Deep.sink(n - 1); return; }
                        while (true) { Sys.yield(); }
                    }
                }
                class Main {
                    static int main(int threads) {
                        for (int i = 0; i < threads; i = i + 1) {
                            Proc.thread("Deep", "dive", i);
                        }
                        while (Deep.running < threads) { Sys.yield(); }
                        // Churn memory to force collections.
                        for (int i = 0; i < 4000; i = i + 1) {
                            int[] junk = new int[256];
                            junk[0] = i;
                        }
                        Proc.exit(0);
                        return 0;
                    }
                }
                "#,
            )
            .unwrap();
            let pid = os
                .spawn("deep", &threads.to_string(), Some(256 << 10))
                .unwrap();
            os.run(None);
            assert!(
                matches!(os.status(pid), Some(ExitStatus::Exited(0))),
                "{:?}",
                os.status(pid)
            );
            os.cpu(pid).gc
        };
        let lean = make(1);
        let heavy = make(24);
        assert!(
            heavy as f64 > lean as f64 * 1.8,
            "24 deep threads inflate GC cost: {heavy} vs {lean}"
        );
    }
}

mod cross_process_sync {
    use super::*;

    /// Two processes synchronise on the *same shared object* — the paper's
    /// "Processes exchange data by writing into and reading from the shared
    /// objects and by synchronizing on them in the usual way" (§2).
    #[test]
    fn monitors_work_across_processes_on_shared_objects() {
        let mut os = os();
        os.load_shared_source("class Counter { int hits; }").unwrap();
        let src = r#"
            class Main {
                static int main(int rounds) {
                    while (Shm.lookup("ctr") < 0) {
                        try { Shm.create("ctr", "Counter", 1); }
                        catch (Exception e) { }
                    }
                    Counter c = Shm.get("ctr", 0) as Counter;
                    for (int i = 0; i < rounds; i = i + 1) {
                        sync (c) {
                            int seen = c.hits;
                            // A deliberately non-atomic increment: only
                            // mutual exclusion makes the total come out.
                            c.hits = seen + 1;
                        }
                    }
                    return 0;
                }
            }
        "#;
        os.register_image("incr", src).unwrap();
        let a = os.spawn("incr", "400", None).unwrap();
        let b = os.spawn("incr", "400", None).unwrap();
        os.run(None);
        assert_eq!(os.status(a), Some(ExitStatus::Exited(0)));
        assert_eq!(os.status(b), Some(ExitStatus::Exited(0)));
        // Read the final counter value through a third process.
        os.register_image(
            "reader",
            r#"
            class Main {
                static int main() {
                    Shm.lookup("ctr");
                    Counter c = Shm.get("ctr", 0) as Counter;
                    return c.hits;
                }
            }
            "#,
        )
        .unwrap();
        let reader = os.spawn("reader", "", None).unwrap();
        os.run(None);
        assert_eq!(
            os.status(reader),
            Some(ExitStatus::Exited(800)),
            "mutual exclusion held across processes"
        );
    }

    /// Killing a process that holds a monitor on a shared object must not
    /// wedge the other sharers (§2 "Safe termination": user-level locks are
    /// released; only *kernel* locks defer termination).
    #[test]
    fn killing_a_lock_holder_releases_shared_monitors() {
        let mut os = os();
        os.load_shared_source("class Gate { int open; }").unwrap();
        os.register_image(
            "holder",
            r#"
            class Main {
                static int main() {
                    Shm.create("gate", "Gate", 1);
                    Gate g = Shm.get("gate", 0) as Gate;
                    sync (g) {
                        g.open = 1;
                        while (true) { } // hold the monitor forever
                    }
                    return 0;
                }
            }
            "#,
        )
        .unwrap();
        os.register_image(
            "waiter",
            r#"
            class Main {
                static int main() {
                    while (Shm.lookup("gate") < 0) { Sys.yield(); }
                    Gate g = Shm.get("gate", 0) as Gate;
                    while (g.open == 0) { Sys.yield(); }
                    sync (g) { return 77; }
                }
            }
            "#,
        )
        .unwrap();
        let holder = os.spawn("holder", "", None).unwrap();
        let waiter = os.spawn("waiter", "", None).unwrap();
        os.run(Some(20_000_000));
        assert!(os.is_alive(waiter), "waiter blocked on the held monitor");
        os.kill(holder).unwrap();
        let report = os.run(None);
        assert!(!report.deadlocked);
        assert_eq!(
            os.status(waiter),
            Some(ExitStatus::Exited(77)),
            "monitor released by the kill; waiter proceeded"
        );
    }

    #[test]
    fn shm_misuse_is_rejected_cleanly() {
        let mut os = os();
        os.load_shared_source("class Cell { int value; }").unwrap();
        let pid = spawn_src(
            &mut os,
            "misuser",
            r#"
            class Main {
                static int main() {
                    int acc = 0;
                    // get before lookup/create
                    try { Shm.get("nope", 0); } catch (IllegalStateException e) { acc = acc + 1; }
                    // create with an unknown shared class
                    try { Shm.create("x", "Ghost", 1); } catch (IllegalStateException e) { acc = acc + 10; }
                    // create with a bad count
                    try { Shm.create("y", "Cell", 0); } catch (IllegalStateException e) { acc = acc + 100; }
                    // double create
                    Shm.create("z", "Cell", 1);
                    try { Shm.create("z", "Cell", 1); } catch (IllegalStateException e) { acc = acc + 1000; }
                    // out-of-range get
                    try { Shm.get("z", 9); } catch (IndexOutOfBoundsException e) { acc = acc + 10000; }
                    return acc;
                }
            }
            "#,
            None,
        );
        os.run(None);
        assert_eq!(os.status(pid), Some(ExitStatus::Exited(11111)));
    }
}

mod network_bandwidth {
    use super::*;
    use crate::SpawnOpts;

    fn sender_src() -> &'static str {
        // Simpler: return sent byte count scaled down.
        r#"
        class Main {
            static int main(int chunks) {
                for (int i = 0; i < chunks; i = i + 1) {
                    Net.send(100000);
                }
                return Net.sent() / 1000;
            }
        }
        "#
    }

    #[test]
    fn bandwidth_cap_paces_virtual_time() {
        // 1 MB at 1 MB/s must take ~1 virtual second; the same transfer
        // unmetered completes in microseconds.
        let run = |bps: Option<u64>| {
            let mut os = os();
            os.register_image("sender", sender_src()).unwrap();
            let pid = os
                .spawn_with(
                    "sender",
                    "10",
                    SpawnOpts {
                        net_bps: bps,
                        ..SpawnOpts::default()
                    },
                )
                .unwrap();
            let report = os.run(None);
            assert_eq!(
                os.status(pid),
                Some(ExitStatus::Exited(1000)),
                "1 MB accounted"
            );
            report.virtual_seconds
        };
        let unmetered = run(None);
        let capped = run(Some(1 << 20));
        assert!(unmetered < 0.05, "unmetered transfer is fast: {unmetered}");
        assert!(
            (0.9..1.2).contains(&capped),
            "1 MB at 1 MB/s takes ~1 virtual second: {capped}"
        );
    }

    #[test]
    fn bandwidth_is_per_process() {
        // A throttled sender cannot slow an unthrottled neighbour.
        let mut os = os();
        os.register_image("sender", sender_src()).unwrap();
        let slow = os
            .spawn_with(
                "sender",
                "5",
                SpawnOpts {
                    net_bps: Some(256 << 10),
                    ..SpawnOpts::default()
                },
            )
            .unwrap();
        let fast = os.spawn("sender", "5", None).unwrap();
        os.run(None);
        assert_eq!(os.status(slow), Some(ExitStatus::Exited(500)));
        assert_eq!(os.status(fast), Some(ExitStatus::Exited(500)));
        // The slow sender waited on its NIC, not on the CPU: its CPU use
        // stays in the same ballpark as the fast one's.
        let ratio = os.cpu(slow).total() as f64 / os.cpu(fast).total() as f64;
        assert!(ratio < 2.0, "throttling is not busy-waiting: {ratio}");
    }

    #[test]
    fn killed_sender_releases_its_timed_park() {
        let mut os = os();
        os.register_image(
            "bigsender",
            r#"
            class Main {
                static int main() {
                    Net.send(100000000); // 100 MB at 1 MB/s = 100 s
                    return 1;
                }
            }
            "#,
        )
        .unwrap();
        let pid = os
            .spawn_with(
                "bigsender",
                "",
                SpawnOpts {
                    net_bps: Some(1 << 20),
                    ..SpawnOpts::default()
                },
            )
            .unwrap();
        os.run(Some(5_000_000));
        assert!(os.is_alive(pid), "parked mid-send");
        os.kill(pid).unwrap();
        let report = os.run(Some(os.clock() + 1_000_000));
        assert_eq!(os.status(pid), Some(ExitStatus::Killed));
        assert!(!report.deadlocked);
    }
}
