//! The guest standard library and the shared-vs-reloaded class policy.
//!
//! §3.2 of the paper examines each class in the Java libraries and decides
//! whether it can be **shared** between processes (same class, shared text,
//! process-aware statics) or must be **reloaded** (each process gets its own
//! copy, and with it its own statics). Classes that export public static
//! state as part of their interface must be reloaded
//! (`java.io.FileDescriptor`'s `in`/`out`/`err` is the paper's example).
//!
//! Our library is much smaller, but applies the same policy:
//!
//! * **Shared** (loaded once into the shared namespace): `Object`, `String`,
//!   the exception hierarchy, `Math`, `Vector`, `IntVector`, `StringMap`,
//!   `StringBuilder`, `Queue` — no exported mutable statics.
//! * **Reloaded** (loaded into each process namespace at spawn): `Console`
//!   (static output state) and `Random` (static seed) — their statics are
//!   part of their interface, so each process needs its own.
//!
//! Statics of *shared* classes are still per-process (the "process-aware
//! statics" replacement): the VM allocates a statics object per
//! (process, class) on the process heap.

use kaffeos_vm::{ClassBuilder, ClassDef, ClassTable, Const, MethodBuilder, Op, TypeDesc, VmError};

/// Names of classes every process gets a private copy of (§3.2 "reloaded").
pub const RELOADED_CLASSES: &[&str] = &["Console", "Random"];

/// Builds the primitive root classes that cannot be written in Cup.
fn primitive_classes() -> Vec<ClassDef> {
    let object = ClassBuilder::root("Object").build();
    let string = ClassBuilder::new("String").build();

    // Exception with `msg` and an `init(String)` constructor, in bytecode
    // because Cup method bodies cannot run before Exception exists.
    let mut b = ClassBuilder::new("Exception").field("msg", TypeDesc::Str);
    let fmsg = b.pool(Const::Field {
        class: "Exception".to_string(),
        name: "msg".to_string(),
    });
    let exception = b
        .method(
            MethodBuilder::instance("init")
                .param(TypeDesc::Str)
                .ops([Op::Load(0), Op::Load(1), Op::PutField(fmsg), Op::Return])
                .build(),
        )
        .method(
            MethodBuilder::instance("message")
                .returns(TypeDesc::Str)
                .ops([Op::Load(0), Op::GetField(fmsg), Op::ReturnVal])
                .build(),
        )
        .build();

    let mut out = vec![object, string, exception];
    for name in [
        "NullPointerException",
        "IndexOutOfBoundsException",
        "ArithmeticException",
        "ClassCastException",
        "SegmentationViolation",
        "OutOfMemoryError",
        "StackOverflowError",
        "IllegalStateException",
        "KilledException",
    ] {
        out.push(ClassBuilder::new(name).extends("Exception").build());
    }
    out
}

/// Shared utility classes, written in Cup.
pub const SHARED_CUP_SOURCE: &str = r#"
class Math {
    static int abs(int x) { if (x < 0) { return -x; } return x; }
    static int min(int a, int b) { if (a < b) { return a; } return b; }
    static int max(int a, int b) { if (a > b) { return a; } return b; }
    static float fabs(float x) { if (x < 0.0) { return -x; } return x; }
    static float fmin(float a, float b) { if (a < b) { return a; } return b; }
    static float fmax(float a, float b) { if (a > b) { return a; } return b; }

    // Newton's method square root; enough precision for the ray tracer.
    static float sqrt(float x) {
        if (x <= 0.0) { return 0.0; }
        float guess = x;
        if (guess > 1.0) { guess = x / 2.0; }
        int i = 0;
        while (i < 24) {
            guess = (guess + x / guess) / 2.0;
            i = i + 1;
        }
        return guess;
    }

    static int pow(int base, int exp) {
        int r = 1;
        for (int i = 0; i < exp; i = i + 1) { r = r * base; }
        return r;
    }
}

// Growable vector of objects.
class Vector {
    Object[] data;
    int size;
    init() { this.data = new Object[8]; this.size = 0; }

    void add(Object item) {
        if (size == data.len()) { this.grow(); }
        data[size] = item;
        size = size + 1;
    }

    void grow() {
        Object[] bigger = new Object[data.len() * 2];
        for (int i = 0; i < size; i = i + 1) { bigger[i] = data[i]; }
        this.data = bigger;
    }

    Object get(int i) {
        if (i < 0 || i >= size) { throw new IndexOutOfBoundsException("vector"); }
        return data[i];
    }

    void set(int i, Object item) {
        if (i < 0 || i >= size) { throw new IndexOutOfBoundsException("vector"); }
        data[i] = item;
    }

    Object removeLast() {
        if (size == 0) { throw new IndexOutOfBoundsException("empty vector"); }
        size = size - 1;
        Object item = data[size];
        data[size] = null;
        return item;
    }

    int count() { return size; }
}

// Growable vector of ints.
class IntVector {
    int[] data;
    int size;
    init() { this.data = new int[8]; this.size = 0; }

    void add(int item) {
        if (size == data.len()) {
            int[] bigger = new int[data.len() * 2];
            for (int i = 0; i < size; i = i + 1) { bigger[i] = data[i]; }
            this.data = bigger;
        }
        data[size] = item;
        size = size + 1;
    }

    int get(int i) {
        if (i < 0 || i >= size) { throw new IndexOutOfBoundsException("intvector"); }
        return data[i];
    }

    void set(int i, int item) {
        if (i < 0 || i >= size) { throw new IndexOutOfBoundsException("intvector"); }
        data[i] = item;
    }

    int count() { return size; }
}

// String-keyed hash map with chained buckets.
class MapEntry {
    String key;
    Object value;
    MapEntry next;
    init(String key, Object value) { this.key = key; this.value = value; }
}

class StringMap {
    MapEntry[] buckets;
    int size;
    init() { this.buckets = new MapEntry[16]; this.size = 0; }

    static int hash(String key) {
        int h = 17;
        for (int i = 0; i < key.len(); i = i + 1) {
            h = h * 31 + key.charAt(i);
        }
        if (h < 0) { h = -h; }
        return h;
    }

    void put(String key, Object value) {
        int b = StringMap.hash(key) % buckets.len();
        MapEntry cur = buckets[b];
        while (cur != null) {
            if (cur.key.eq(key)) { cur.value = value; return; }
            cur = cur.next;
        }
        MapEntry fresh = new MapEntry(key, value);
        fresh.next = buckets[b];
        buckets[b] = fresh;
        size = size + 1;
        if (size > buckets.len() * 2) { this.rehash(); }
    }

    void rehash() {
        MapEntry[] old = buckets;
        this.buckets = new MapEntry[old.len() * 2];
        this.size = 0;
        for (int i = 0; i < old.len(); i = i + 1) {
            MapEntry cur = old[i];
            while (cur != null) {
                this.put(cur.key, cur.value);
                cur = cur.next;
            }
        }
    }

    Object get(String key) {
        int b = StringMap.hash(key) % buckets.len();
        MapEntry cur = buckets[b];
        while (cur != null) {
            if (cur.key.eq(key)) { return cur.value; }
            cur = cur.next;
        }
        return null;
    }

    bool has(String key) {
        int b = StringMap.hash(key) % buckets.len();
        MapEntry cur = buckets[b];
        while (cur != null) {
            if (cur.key.eq(key)) { return true; }
            cur = cur.next;
        }
        return false;
    }

    int count() { return size; }
}

// Amortised string building (the VM's + is O(n) per concat).
class StringBuilder {
    String[] parts;
    int size;
    init() { this.parts = new String[8]; this.size = 0; }

    void add(String s) {
        if (size == parts.len()) {
            String[] bigger = new String[parts.len() * 2];
            for (int i = 0; i < size; i = i + 1) { bigger[i] = parts[i]; }
            this.parts = bigger;
        }
        parts[size] = s;
        size = size + 1;
    }

    String build() {
        String out = "";
        for (int i = 0; i < size; i = i + 1) { out = out + parts[i]; }
        return out;
    }
}

// String utilities beyond the VM's built-in methods.
class Text {
    static bool startsWith(String s, String prefix) {
        if (prefix.len() > s.len()) { return false; }
        return s.substr(0, prefix.len()).eq(prefix);
    }

    static bool endsWith(String s, String suffix) {
        if (suffix.len() > s.len()) { return false; }
        return s.substr(s.len() - suffix.len(), s.len()).eq(suffix);
    }

    static int indexOf(String s, String needle) {
        if (needle.len() == 0) { return 0; }
        int last = s.len() - needle.len();
        for (int i = 0; i <= last; i = i + 1) {
            if (s.substr(i, i + needle.len()).eq(needle)) { return i; }
        }
        return -1;
    }

    static bool contains(String s, String needle) {
        return Text.indexOf(s, needle) >= 0;
    }

    static String repeat(String s, int times) {
        StringBuilder b = new StringBuilder();
        for (int i = 0; i < times; i = i + 1) { b.add(s); }
        return b.build();
    }

    static String reverse(String s) {
        StringBuilder b = new StringBuilder();
        for (int i = s.len() - 1; i >= 0; i = i - 1) {
            b.add(s.substr(i, i + 1));
        }
        return b.build();
    }
}

// LIFO stack of objects.
class Stack {
    Object[] data;
    int size;
    init() { this.data = new Object[8]; this.size = 0; }

    void push(Object item) {
        if (size == data.len()) {
            Object[] bigger = new Object[data.len() * 2];
            for (int i = 0; i < size; i = i + 1) { bigger[i] = data[i]; }
            this.data = bigger;
        }
        data[size] = item;
        size = size + 1;
    }

    Object pop() {
        if (size == 0) { throw new IndexOutOfBoundsException("empty stack"); }
        size = size - 1;
        Object item = data[size];
        data[size] = null;
        return item;
    }

    Object peek() {
        if (size == 0) { throw new IndexOutOfBoundsException("empty stack"); }
        return data[size - 1];
    }

    int count() { return size; }
    bool isEmpty() { return size == 0; }
}

// Fixed-capacity bit set over an int[] backing store.
class BitSet {
    int[] words;
    int bits;
    init(int bits) {
        this.bits = bits;
        this.words = new int[(bits + 62) / 63];
    }

    void set(int i) {
        if (i < 0 || i >= bits) { throw new IndexOutOfBoundsException("bitset"); }
        words[i / 63] = words[i / 63] | (1 << (i % 63));
    }

    void clear(int i) {
        if (i < 0 || i >= bits) { throw new IndexOutOfBoundsException("bitset"); }
        if (this.get(i)) {
            words[i / 63] = words[i / 63] ^ (1 << (i % 63));
        }
    }

    bool get(int i) {
        if (i < 0 || i >= bits) { throw new IndexOutOfBoundsException("bitset"); }
        return (words[i / 63] & (1 << (i % 63))) != 0;
    }

    int popcount() {
        int n = 0;
        for (int i = 0; i < bits; i = i + 1) {
            if (this.get(i)) { n = n + 1; }
        }
        return n;
    }
}

// Sorting helpers over int arrays.
class Sort {
    static void quicksort(int[] a) { Sort.qs(a, 0, a.len() - 1); }

    static void qs(int[] a, int lo, int hi) {
        if (lo >= hi) { return; }
        int pivot = a[(lo + hi) / 2];
        int i = lo;
        int j = hi;
        while (i <= j) {
            while (a[i] < pivot) { i = i + 1; }
            while (a[j] > pivot) { j = j - 1; }
            if (i <= j) {
                int t = a[i];
                a[i] = a[j];
                a[j] = t;
                i = i + 1;
                j = j - 1;
            }
        }
        Sort.qs(a, lo, j);
        Sort.qs(a, i, hi);
    }

    static bool isSorted(int[] a) {
        for (int i = 1; i < a.len(); i = i + 1) {
            if (a[i - 1] > a[i]) { return false; }
        }
        return true;
    }

    static int binarySearch(int[] a, int key) {
        int lo = 0;
        int hi = a.len() - 1;
        while (lo <= hi) {
            int mid = (lo + hi) / 2;
            if (a[mid] == key) { return mid; }
            if (a[mid] < key) { lo = mid + 1; }
            else { hi = mid - 1; }
        }
        return -1;
    }
}

// Int-keyed hash map with chained buckets.
class IntMapEntry {
    int key;
    Object value;
    IntMapEntry next;
    init(int key, Object value) { this.key = key; this.value = value; }
}

class IntMap {
    IntMapEntry[] buckets;
    int size;
    init() { this.buckets = new IntMapEntry[16]; this.size = 0; }

    int slot(int key) {
        int h = key * 2654435761;
        if (h < 0) { h = -h; }
        return h % buckets.len();
    }

    void put(int key, Object value) {
        int b = this.slot(key);
        IntMapEntry cur = buckets[b];
        while (cur != null) {
            if (cur.key == key) { cur.value = value; return; }
            cur = cur.next;
        }
        IntMapEntry fresh = new IntMapEntry(key, value);
        fresh.next = buckets[b];
        buckets[b] = fresh;
        size = size + 1;
        if (size > buckets.len() * 2) { this.rehash(); }
    }

    void rehash() {
        IntMapEntry[] old = buckets;
        this.buckets = new IntMapEntry[old.len() * 2];
        this.size = 0;
        for (int i = 0; i < old.len(); i = i + 1) {
            IntMapEntry cur = old[i];
            while (cur != null) {
                this.put(cur.key, cur.value);
                cur = cur.next;
            }
        }
    }

    Object get(int key) {
        IntMapEntry cur = buckets[this.slot(key)];
        while (cur != null) {
            if (cur.key == key) { return cur.value; }
            cur = cur.next;
        }
        return null;
    }

    bool has(int key) {
        IntMapEntry cur = buckets[this.slot(key)];
        while (cur != null) {
            if (cur.key == key) { return true; }
            cur = cur.next;
        }
        return false;
    }

    int count() { return size; }
}

// FIFO queue over a ring buffer of objects.
class Queue {
    Object[] data;
    int head;
    int count;
    init() { this.data = new Object[8]; this.head = 0; this.count = 0; }

    void push(Object item) {
        if (count == data.len()) {
            Object[] bigger = new Object[data.len() * 2];
            for (int i = 0; i < count; i = i + 1) {
                bigger[i] = data[(head + i) % data.len()];
            }
            this.data = bigger;
            this.head = 0;
        }
        data[(head + count) % data.len()] = item;
        count = count + 1;
    }

    Object pop() {
        if (count == 0) { throw new IndexOutOfBoundsException("empty queue"); }
        Object item = data[head];
        data[head] = null;
        head = (head + 1) % data.len();
        count = count - 1;
        return item;
    }

    int size() { return count; }
}
"#;

/// Per-process ("reloaded") classes, written in Cup. Both export static
/// state as part of their interface, which is exactly what forces reloading
/// in §3.2.
pub const RELOADED_CUP_SOURCE: &str = r#"
// Console: buffered output with a static, per-process line counter.
class Console {
    static int lines;
    static void println(String s) {
        Console.lines = Console.lines + 1;
        Sys.print(s);
    }
    static int lineCount() { return Console.lines; }
}

// Random: linear congruential generator with a static per-process seed.
class Random {
    static int seed;
    static void setSeed(int s) { Random.seed = s; }
    static int next(int bound) {
        Random.seed = (Random.seed * 1103515245 + 12345) & 2147483647;
        if (bound <= 0) { return Random.seed; }
        return Random.seed % bound;
    }
}
"#;

/// Loads the shared standard library into `shared_ns`: primitive classes in
/// bytecode, the rest compiled from Cup. Returns the number of shared
/// classes loaded.
pub fn load_shared_stdlib(table: &mut ClassTable, shared_ns: u32) -> Result<usize, VmError> {
    let mut count = 0;
    for def in primitive_classes() {
        table.load_class(shared_ns, def.into_arc())?;
        count += 1;
    }
    let defs = kaffeos_cupc::compile(SHARED_CUP_SOURCE, table, shared_ns)
        .map_err(|e| VmError::BadBytecode(format!("stdlib compile error: {e}")))?;
    for def in defs {
        table.load_class(shared_ns, def.into_arc())?;
        count += 1;
    }
    Ok(count)
}

/// Compiles the reloaded classes against a process namespace; the caller
/// loads them into that namespace (each process gets fresh statics AND a
/// fresh class identity — true reloading).
pub fn compile_reloaded(table: &ClassTable, ns: u32) -> Result<Vec<ClassDef>, VmError> {
    kaffeos_cupc::compile(RELOADED_CUP_SOURCE, table, ns)
        .map_err(|e| VmError::BadBytecode(format!("reloaded stdlib compile error: {e}")))
}
