//! The process abstraction: the unit of resource ownership and control.

use std::collections::HashMap;
use kaffeos_heap::FxHashMap;

use kaffeos_heap::{HeapId, ObjRef};
use kaffeos_memlimit::MemLimitId;
use kaffeos_vm::{ClassIdx, Thread};

/// Process identifier. Pid 0 is reserved for the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

/// Per-spawn resource policy (§1: "CPU and memory limits can be placed on
/// the process, and the process can be killed if it is uncooperative").
#[derive(Debug, Clone, Copy)]
pub struct SpawnOpts {
    /// Memory limit in bytes (`None` = kernel default).
    pub mem_limit: Option<u64>,
    /// Reserve the limit up front (a *hard* memlimit, §2) instead of the
    /// default pass-through *soft* limit.
    pub mem_hard: bool,
    /// Kill the process once its total CPU account (exec + GC + kernel)
    /// passes this many cycles.
    pub cpu_limit: Option<u64>,
    /// Proportional CPU share (weighted round-robin); default 100.
    pub cpu_share: u32,
    /// Network bandwidth in bytes per (virtual) second; `None` = unmetered.
    /// The paper's named future-work resource (§2).
    pub net_bps: Option<u64>,
    /// The tenant this process is accounted to, if any. Set by
    /// `spawn_for_tenant`; spawns outside the admission controller leave
    /// it `None` and bypass every tenant policy.
    pub tenant: Option<crate::tenant::TenantId>,
}

impl Default for SpawnOpts {
    fn default() -> Self {
        SpawnOpts {
            mem_limit: None,
            mem_hard: false,
            cpu_limit: None,
            cpu_share: 100,
            net_bps: None,
            tenant: None,
        }
    }
}

/// Why a process stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExitStatus {
    /// `proc.exit(code)` or main returned `code`.
    Exited(i64),
    /// Killed by the kernel or another process (`proc.kill`).
    Killed,
    /// Killed by the kernel for exceeding its CPU limit.
    CpuLimitExceeded,
    /// The last thread died on an exception it did not handle. The class
    /// name distinguishes `OutOfMemoryError` (the MemHog signature) from
    /// ordinary crashes.
    UncaughtException {
        /// Guest exception class name.
        class: String,
        /// Its message field, if set.
        message: String,
    },
}

impl ExitStatus {
    /// The integer a `proc.wait` returns for this status.
    pub fn wait_code(&self) -> i64 {
        match self {
            ExitStatus::Exited(code) => *code,
            ExitStatus::Killed => -1,
            ExitStatus::UncaughtException { .. } => -2,
            ExitStatus::CpuLimitExceeded => -4,
        }
    }

    /// True if the process died from an unhandled `OutOfMemoryError`.
    pub fn is_oom(&self) -> bool {
        matches!(self, ExitStatus::UncaughtException { class, .. } if class == "OutOfMemoryError")
    }

    /// Typed classification of this status for policy engines and
    /// reports: collapses the free-form exception payload into a stable,
    /// aggregatable cause.
    pub fn cause(&self) -> ExitCause {
        match self {
            ExitStatus::Exited(_) => ExitCause::Exited,
            ExitStatus::Killed => ExitCause::Killed,
            ExitStatus::CpuLimitExceeded => ExitCause::CpuLimit,
            ExitStatus::UncaughtException { .. } if self.is_oom() => ExitCause::Oom,
            ExitStatus::UncaughtException { .. } => ExitCause::Exception,
        }
    }
}

/// Stable, typed exit-cause taxonomy — what restart policies key on and
/// what SLO reports aggregate by (instead of ad-hoc reason strings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExitCause {
    /// Clean exit (`proc.exit` or main returned).
    Exited,
    /// Killed by the kernel or another process.
    Killed,
    /// Killed for exceeding its CPU budget.
    CpuLimit,
    /// Died on an unhandled `OutOfMemoryError` (the MemHog signature).
    Oom,
    /// Died on any other unhandled exception.
    Exception,
}

impl ExitCause {
    /// Number of causes (array-index domain).
    pub const COUNT: usize = 5;

    /// Every cause, in rendering order.
    pub const ALL: [ExitCause; ExitCause::COUNT] = [
        ExitCause::Exited,
        ExitCause::Killed,
        ExitCause::CpuLimit,
        ExitCause::Oom,
        ExitCause::Exception,
    ];

    /// Stable snake-case label used in reports and traces.
    pub fn label(self) -> &'static str {
        match self {
            ExitCause::Exited => "exited",
            ExitCause::Killed => "killed",
            ExitCause::CpuLimit => "cpu_limit",
            ExitCause::Oom => "oom",
            ExitCause::Exception => "exception",
        }
    }

    /// Dense array index.
    pub fn index(self) -> usize {
        match self {
            ExitCause::Exited => 0,
            ExitCause::Killed => 1,
            ExitCause::CpuLimit => 2,
            ExitCause::Oom => 3,
            ExitCause::Exception => 4,
        }
    }

    /// True for every cause except a clean exit — the causes a supervised
    /// restart policy reacts to.
    pub fn is_failure(self) -> bool {
        !matches!(self, ExitCause::Exited)
    }
}

/// Exit counts aggregated by [`ExitCause`]; the typed replacement for
/// stringly-keyed kill-reason tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CauseCounts([u64; ExitCause::COUNT]);

impl CauseCounts {
    /// Records one exit.
    pub fn note(&mut self, cause: ExitCause) {
        self.0[cause.index()] += 1;
    }

    /// Count recorded for one cause.
    pub fn get(&self, cause: ExitCause) -> u64 {
        self.0[cause.index()]
    }

    /// Total exits recorded.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Exits that were failures (everything but [`ExitCause::Exited`]).
    pub fn failures(&self) -> u64 {
        self.total() - self.get(ExitCause::Exited)
    }

    /// Deterministic `label=count` rendering, every cause in
    /// [`ExitCause::ALL`] order.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for cause in ExitCause::ALL {
            if !out.is_empty() {
                out.push(' ');
            }
            let _ = write!(out, "{}={}", cause.label(), self.get(cause));
        }
        out
    }
}

/// CPU time accounting, all in modelled cycles (§2: "The memory and CPU
/// time spent on almost all activities can be attributed to the application
/// on whose behalf it was expended").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuAccount {
    /// Cycles executing guest code (including write barriers).
    pub exec: u64,
    /// Cycles collecting this process' heap (charged to the process, never
    /// to the system).
    pub gc: u64,
    /// Cycles spent in the kernel servicing this process' syscalls.
    pub kernel: u64,
}

impl CpuAccount {
    /// Total cycles attributed to the process.
    pub fn total(&self) -> u64 {
        self.exec + self.gc + self.kernel
    }
}

/// Scheduler-visible lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcState {
    /// Live and schedulable.
    Running,
    /// Termination requested; threads die at their next safe points, then
    /// reclamation runs.
    Dying,
    /// Reaped; memory merged and reclaimed.
    Dead(ExitStatus),
}

/// Why a thread is parked kernel-side (distinct from VM-level monitor
/// blocking, which the VM tracks itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParkReason {
    /// `proc.wait(pid)`.
    WaitFor(Pid),
    /// `net.send` pacing: runnable once the virtual clock reaches the
    /// given cycle (the NIC finishes draining the send); the carried value
    /// is pushed as the syscall result on wake-up.
    Until(u64, i64),
}

/// A KaffeOS process.
///
/// In the paper the process object is allocated on the new process' own
/// heap and the kernel keeps only a small process-table entry; this Rust
/// struct *is* that kernel entry plus the handle state (we do not model
/// the process object as a guest object).
#[derive(Debug)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// `image#pid` label (memlimit and heap labels match).
    pub name: String,
    /// The image this process was spawned from.
    pub image: String,
    /// Lifecycle state.
    pub state: ProcState,
    /// The process heap (`None` only in monolithic mode, where everything
    /// shares one heap).
    pub heap: HeapId,
    /// The process memlimit (`None` in monolithic mode).
    pub memlimit: Option<MemLimitId>,
    /// Class-loader namespace (delegates to the shared namespace).
    pub ns: u32,
    /// Per-process statics objects (process heap residents, GC roots).
    pub statics: FxHashMap<ClassIdx, ObjRef>,
    /// Per-process string intern table (§3.3).
    pub intern: FxHashMap<String, ObjRef>,
    /// Threads; slots are never reused within a process.
    pub threads: Vec<Thread>,
    /// Kernel-side park reasons per thread index.
    pub parked: HashMap<usize, ParkReason>,
    /// CPU accounting (§2).
    pub cpu: CpuAccount,
    /// Lines written via `sys.print`.
    pub stdout: Vec<String>,
    /// Deterministic per-process RNG state (seeded from the pid).
    pub rng: u64,
    /// Threads of other processes waiting on our exit.
    pub waiters: Vec<(Pid, usize)>,
    /// Shared heaps this process is currently charged for.
    pub charged_shm: Vec<String>,
    /// Requested exit code (set by `proc.exit`, consumed at teardown).
    pub exit_code: Option<i64>,
    /// CPU budget in cycles; exceeded → [`ExitStatus::CpuLimitExceeded`].
    pub cpu_limit: Option<u64>,
    /// Proportional CPU share (weighted round-robin quanta).
    pub cpu_share: u32,
    /// Set when the CPU budget was exceeded, so the eventual reap records
    /// [`ExitStatus::CpuLimitExceeded`] rather than a plain kill.
    pub cpu_overrun: bool,
    /// Bandwidth cap in bytes per virtual second (`None` = unmetered).
    pub net_bps: Option<u64>,
    /// Total bytes transmitted.
    pub net_sent: u64,
    /// Virtual cycle at which the process' NIC drains its last send.
    pub net_busy_until: u64,
    /// The tenant accounted for this process (`None` = untenanted).
    pub tenant: Option<crate::tenant::TenantId>,
    /// The args string the process was spawned with, kept so the restart
    /// engine can respawn the same invocation.
    pub spawn_args: String,
    /// The resource policy the process was spawned with (respawns reuse
    /// it verbatim).
    pub spawn_opts: SpawnOpts,
    /// Per-process JIT state: hot counters, attached compiled bodies (with
    /// their per-process link tables), and tier statistics.
    pub jit: kaffeos_vm::ProcJit,
    /// Virtual calls dispatched through statically devirtualized sites
    /// (interpreter and JIT tiers combined). Monotone procfs counter,
    /// drained from thread-local counters at each quantum boundary.
    pub devirt_calls: u64,
    /// Monitor operations whose lock bookkeeping the escape analysis
    /// elided. Monotone procfs counter, drained like `devirt_calls`.
    pub monitors_elided: u64,
}

impl Process {
    /// Deterministic pseudo-random integer in `[0, bound)` (or the raw
    /// state for `bound <= 0`), advancing the per-process LCG.
    pub fn next_rand(&mut self, bound: i64) -> i64 {
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let v = (self.rng >> 33) as i64;
        if bound > 0 {
            v % bound
        } else {
            v
        }
    }

    /// Roots contributed by this process beyond a single running thread:
    /// all thread stacks, statics objects, and interned strings.
    pub fn all_roots(&self) -> Vec<ObjRef> {
        let mut roots: Vec<ObjRef> = Vec::new();
        for t in &self.threads {
            roots.extend(t.stack_roots());
        }
        roots.extend(self.statics.values().copied());
        roots.extend(self.intern.values().copied());
        roots
    }

    /// True if every thread has finished.
    pub fn all_threads_done(&self) -> bool {
        self.threads
            .iter()
            .all(|t| matches!(t.state, kaffeos_vm::ThreadState::Done))
    }
}
