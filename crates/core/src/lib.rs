//! # KaffeOS — processes in a language-based virtual machine
//!
//! A Rust reproduction of *"Processes in KaffeOS: Isolation, Resource
//! Management, and Sharing in Java"* (Back, Hsieh, Lepreau — OSDI 2000).
//!
//! KaffeOS adds the operating-system **process** abstraction to a
//! type-safe-language VM. Each process runs as if it had the whole VM to
//! itself:
//!
//! * its own **heap**, collected independently (write barriers +
//!   reference-counted entry/exit items keep heaps separable);
//! * its own **namespace** (a class loader delegating to a shared loader);
//! * a hierarchical **memlimit** bounding every byte allocated on its
//!   behalf — including VM-internal allocations;
//! * precise **CPU accounting**, including the cycles spent collecting its
//!   heap;
//! * **safe termination**: killing a process never corrupts the kernel and
//!   always reclaims all of its memory (the heap is merged into the kernel
//!   heap and collected);
//! * **direct sharing** through frozen shared heaps whose objects have
//!   immutable reference fields and mutable primitive fields, with every
//!   sharer charged the heap's full size.
//!
//! ## Quickstart
//!
//! ```
//! use kaffeos::{KaffeOs, KaffeOsConfig};
//!
//! let mut os = KaffeOs::new(KaffeOsConfig::default());
//! os.register_image(
//!     "hello",
//!     r#"class Main {
//!            static int main() { Sys.print("hello from a process"); return 7; }
//!        }"#,
//! )
//! .unwrap();
//! let pid = os.spawn("hello", "", None).unwrap();
//! let report = os.run(None);
//! assert_eq!(os.stdout(pid), ["hello from a process".to_string()]);
//! assert!(report.processes[0].status.as_ref().is_some());
//! ```
//!
//! Guest programs are written in **Cup** (see `kaffeos-cupc`) and cross the
//! user/kernel boundary only through `Sys.*` / `Proc.*` / `Shm.*`
//! intrinsics, which this crate services.

mod faults;
mod kernel;
mod process;
mod shm;
pub mod stdlib;
pub mod syscalls;
mod tenant;

pub use faults::{AuditReport, AuditViolation, FaultPlan};
pub use kernel::{KaffeOs, KaffeOsConfig, KernelError, ProcessReport, RunReport};
pub use process::{
    CauseCounts, CpuAccount, ExitCause, ExitStatus, ParkReason, Pid, ProcState, Process, SpawnOpts,
};
pub use tenant::{
    Admission, OverloadPolicy, RestartPolicy, RestartRecord, TenantId, TenantLaunch, TenantPolicy,
    TenantStats,
};
pub use shm::{SharedHeap, ShmRegistry};

// Re-export the pieces users need to configure and inspect a VM.
pub use kaffeos_heap::{
    AllocFault, BarrierKind, BarrierStats, SegViolationKind, SpaceAuditReport, SpaceAuditViolation,
};
pub use kaffeos_analyze as analyze;
pub use kaffeos_trace as trace;
pub use kaffeos_vm::{Engine, SegSite};

#[cfg(test)]
mod tests;
