//! Deterministic fault injection and whole-kernel invariant auditing —
//! the "chaos kernel" harness.
//!
//! The paper's central claim is that KaffeOS keeps isolation, accounting,
//! and full reclamation *under adverse conditions*: allocation failures,
//! processes killed at arbitrary points, hostile cross-heap writes. This
//! module turns those adverse conditions into a reproducible experiment:
//!
//! * a [`FaultPlan`] installed on a [`crate::KaffeOs`] injects faults at
//!   well-defined points — the Nth heap allocation fails (one-shot or
//!   persistent), a seeded victim is killed at every quantum boundary
//!   ("termination sweep"), a GC runs at every safepoint, and illegal
//!   cross-heap writes are thrown at the write barrier — all driven by a
//!   `u64` seed and counters, never by wall-clock time or OS randomness,
//!   so every run replays exactly;
//! * an auditor ([`crate::KaffeOs::audit`]) re-derives every invariant the
//!   isolation story depends on — entry/exit-item reference-count
//!   conservation across heaps, memlimit-tree conservation, exact
//!   per-process memory accounting (heap bytes + entry/exit items +
//!   shared-heap charges equal the memlimit's debit), full reclamation
//!   after a kill, and run-report conservation — and reports the first
//!   violation as a typed [`AuditViolation`].
//!
//! Identical seeds produce byte-identical [`AuditReport`]s; the test suite
//! checks this by comparing `format!("{report:?}")` across replays.

use core::fmt;

use kaffeos_heap::{AllocFault, SpaceAuditReport, SpaceAuditViolation};

use crate::process::Pid;

/// One SplitMix64 step: the only randomness source the harness uses.
pub(crate) fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A deterministic fault-injection schedule, installed with
/// [`crate::KaffeOs::install_faults`].
///
/// Every armed mechanism fires at structurally defined points (allocation
/// indices, quantum boundaries, safepoints); victim selection draws from a
/// SplitMix64 stream seeded by [`FaultPlan::seed`]. The counters record
/// what actually fired so a run can be summarised and replay-compared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed everything derives from.
    pub seed: u64,
    /// Fail the Nth allocation attempt in the heap space (one-shot or
    /// persistent); armed on the space at install time.
    pub alloc_fault: Option<AllocFault>,
    /// Termination sweep: request `kill()` of a seeded-chosen live process
    /// at every quantum boundary.
    pub kill_sweep: bool,
    /// Force a collection of the running process' heap at every safepoint.
    pub gc_every_safepoint: bool,
    /// At every quantum boundary, attempt an illegal user-to-user
    /// cross-heap reference store that the write barrier must reject.
    pub illegal_writes: bool,
    /// SplitMix64 state for victim selection.
    pub(crate) rng: u64,
    /// Kills the sweep has requested.
    pub kills_injected: u64,
    /// Illegal cross-heap writes attempted.
    pub illegal_writes_attempted: u64,
    /// Illegal writes the barrier rejected (must equal the attempts).
    pub illegal_writes_accepted: u64,
}

impl FaultPlan {
    /// A plan with nothing armed — a scaffold for tests that arm exactly
    /// one mechanism by hand.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            alloc_fault: None,
            kill_sweep: false,
            gc_every_safepoint: false,
            illegal_writes: false,
            rng: seed ^ 0xC4A5_5EED,
            kills_injected: 0,
            illegal_writes_attempted: 0,
            illegal_writes_accepted: 0,
        }
    }

    /// Derives a full plan from a seed: which mechanisms are armed, the
    /// faulted allocation index, and one-shot vs. persistent all come from
    /// seed bits, so `from_seed(s)` is a pure function of `s`.
    pub fn from_seed(seed: u64) -> Self {
        let mut s = seed;
        let r = splitmix(&mut s);
        let mut plan = FaultPlan::quiet(seed);
        plan.rng = splitmix(&mut s);
        if r & 0b0001 != 0 {
            plan.alloc_fault = Some(AllocFault {
                at: 1 + (splitmix(&mut s) % 512),
                persistent: r & 0b1_0000 != 0,
            });
        }
        plan.kill_sweep = r & 0b0010 != 0;
        plan.gc_every_safepoint = r & 0b0100 != 0;
        plan.illegal_writes = r & 0b1000 != 0;
        if plan.alloc_fault.is_none()
            && !plan.kill_sweep
            && !plan.gc_every_safepoint
            && !plan.illegal_writes
        {
            // Never derive a vacuous plan: default to the GC storm, the
            // mechanism that exercises the most bookkeeping.
            plan.gc_every_safepoint = true;
        }
        plan
    }

    /// Next draw from the plan's private stream.
    pub(crate) fn next(&mut self) -> u64 {
        splitmix(&mut self.rng)
    }
}

/// Deterministic summary of a clean kernel audit. Contains only counters
/// derived from kernel state, so identical states — e.g. two runs of the
/// same seeded [`FaultPlan`] — produce byte-identical `{:?}` renderings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AuditReport {
    /// The heap-space audit summary (heaps, objects, entry/exit items).
    pub space: SpaceAuditReport,
    /// Processes ever spawned.
    pub processes: u64,
    /// Processes still live.
    pub live: u64,
    /// Processes dead and fully reclaimed.
    pub dead: u64,
    /// Bytes currently debited from the user budget (root memlimit).
    pub user_bytes_charged: u64,
    /// Live shared heaps in the registry.
    pub shared_heaps: u64,
    /// Injected allocation faults that actually fired.
    pub alloc_faults_fired: u64,
    /// Kills the termination sweep requested.
    pub kills_injected: u64,
    /// Illegal cross-heap writes attempted against the barrier.
    pub illegal_writes_attempted: u64,
}

/// A broken kernel invariant found by [`crate::KaffeOs::audit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditViolation {
    /// The heap space's own audit failed (entry/exit conservation, page
    /// ownership, counter recounts, memlimit-tree conservation).
    Space(SpaceAuditViolation),
    /// The kernel degraded gracefully past an internal error during this
    /// run; the state survived but the invariant record is suspect.
    KernelFault {
        /// Which degradation path recorded the fault.
        kind: kaffeos_trace::KernelFaultKind,
        /// The first recorded fault.
        detail: String,
    },
    /// A dead process' heap is still alive — its memory was not fully
    /// reclaimed by the merge into the kernel heap.
    DeadHeapSurvives {
        /// The dead process.
        pid: Pid,
    },
    /// A dead process still owns a memlimit node.
    DeadMemlimitSurvives {
        /// The dead process.
        pid: Pid,
    },
    /// A dead process is still charged for a shared heap.
    DeadStillCharged {
        /// The dead process.
        pid: Pid,
        /// The shared heap still charging it.
        name: String,
    },
    /// A live process' memlimit debit disagrees with what its heap and
    /// shared-heap charges actually account for.
    ProcessAccounting {
        /// The process.
        pid: Pid,
        /// The memlimit's recorded debit.
        current: u64,
        /// Heap bytes + accounted entry/exit items.
        accounted: u64,
        /// Shared-heap sizes charged to the process.
        shm_charged: u64,
    },
    /// A shared heap names a sharer that is not a live process — its
    /// charge can never be credited back.
    ShmSharerDead {
        /// The shared heap.
        name: String,
        /// The stale sharer.
        pid: Pid,
    },
    /// A registered shared heap is gone or was never frozen.
    ShmHeapBroken {
        /// The shared heap.
        name: String,
    },
    /// The process table no longer maps pids one-to-one onto report rows
    /// (a `RunReport` would lose or double-count a process).
    ReportConservation {
        /// What broke.
        detail: String,
    },
    /// The write barrier accepted an injected illegal cross-heap write.
    IllegalWriteAccepted {
        /// How many were accepted.
        count: u64,
    },
    /// The shared JIT code cache's registry drifted from the processes'
    /// attachments (refcount mismatch, missing body, or byte-account
    /// drift).
    CodeCache {
        /// What broke.
        detail: String,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::Space(e) => write!(f, "heap space: {e}"),
            AuditViolation::KernelFault { kind, detail } => {
                write!(f, "kernel degraded past an internal error [{kind}]: {detail}")
            }
            AuditViolation::DeadHeapSurvives { pid } => {
                write!(f, "dead process {pid:?} still has a live heap")
            }
            AuditViolation::DeadMemlimitSurvives { pid } => {
                write!(f, "dead process {pid:?} still owns a memlimit")
            }
            AuditViolation::DeadStillCharged { pid, name } => {
                write!(f, "dead process {pid:?} still charged for shared heap {name}")
            }
            AuditViolation::ProcessAccounting {
                pid,
                current,
                accounted,
                shm_charged,
            } => write!(
                f,
                "process {pid:?}: memlimit records {current} bytes but heap accounts \
                 {accounted} + {shm_charged} shared"
            ),
            AuditViolation::ShmSharerDead { name, pid } => {
                write!(f, "shared heap {name} lists dead sharer {pid:?}")
            }
            AuditViolation::ShmHeapBroken { name } => {
                write!(f, "shared heap {name} is dead or unfrozen")
            }
            AuditViolation::ReportConservation { detail } => {
                write!(f, "report conservation: {detail}")
            }
            AuditViolation::IllegalWriteAccepted { count } => {
                write!(f, "barrier accepted {count} illegal cross-heap writes")
            }
            AuditViolation::CodeCache { detail } => {
                write!(f, "code cache: {detail}")
            }
        }
    }
}

impl std::error::Error for AuditViolation {}

impl From<SpaceAuditViolation> for AuditViolation {
    fn from(v: SpaceAuditViolation) -> Self {
        AuditViolation::Space(v)
    }
}
