//! The syscall surface: the user/kernel boundary of Figure 1.
//!
//! Guest code crosses into the kernel only through these intrinsics; the
//! kernel services each request atomically with respect to the green-thread
//! scheduler, so a thread inside a syscall can never be terminated while
//! kernel state is inconsistent (the paper's deferred-termination rule —
//! our syscalls are single-quantum, so the deferral window is the syscall
//! itself).

use kaffeos_vm::{IntrinsicRegistry, TypeDesc};

/// Syscall numbers, in registration order. `build_registry` registers in
/// exactly this order; a unit test pins the correspondence.
pub mod sysno {
    /// `sys.print(Str)` — append a line to the process stdout.
    pub const PRINT: u16 = 0;
    /// `sys.cycles() -> Int` — the process CPU account.
    pub const CYCLES: u16 = 1;
    /// `sys.clock() -> Int` — global virtual clock, cycles.
    pub const CLOCK: u16 = 2;
    /// `sys.yield()` — voluntarily end the quantum.
    pub const YIELD: u16 = 3;
    /// `sys.rand(Int) -> Int` — deterministic per-process PRNG.
    pub const RAND: u16 = 4;
    /// `sys.heap_used() -> Int` — bytes on the process heap.
    pub const HEAP_USED: u16 = 5;
    /// `sys.heap_limit() -> Int` — the process memlimit.
    pub const HEAP_LIMIT: u16 = 6;
    /// `sys.gc()` — collect the process heap now.
    pub const GC: u16 = 7;
    /// `proc.self_pid() -> Int`.
    pub const SELF_PID: u16 = 8;
    /// `proc.spawn(image, args, limit) -> Int` — pid or -1.
    pub const SPAWN: u16 = 9;
    /// `proc.kill(pid) -> Int` — request termination.
    pub const KILL: u16 = 10;
    /// `proc.wait(pid) -> Int` — block for the exit code.
    pub const WAIT: u16 = 11;
    /// `proc.exit(code)` — terminate the calling process.
    pub const EXIT: u16 = 12;
    /// `shm.create(name, class, count) -> Int` — build + freeze a shared heap.
    pub const SHM_CREATE: u16 = 13;
    /// `shm.lookup(name) -> Int` — attach (charged in full) or -1.
    pub const SHM_LOOKUP: u16 = 14;
    /// `shm.get(name, i) -> Object` — a shared object.
    pub const SHM_GET: u16 = 15;
    /// `proc.thread(class, method, arg) -> Int` — in-process green thread.
    pub const THREAD: u16 = 16;
    /// `net.send(Int bytes) -> Int` — transmit on the process' paced NIC;
    /// returns total bytes sent. The paper names network bandwidth as the
    /// next resource to manage (§2/§6); this is that extension.
    pub const NET_SEND: u16 = 17;
    /// `net.sent() -> Int` — total bytes this process has transmitted.
    pub const NET_SENT: u16 = 18;
    /// `proc.status(pid) -> Str` — procfs-style status text for a process
    /// (state, CPU split, heap use), or an empty string for an unknown pid.
    pub const PROC_STATUS: u16 = 19;
    /// `proc.meminfo() -> Str` — the whole memlimit tree, rendered.
    pub const PROC_MEMINFO: u16 = 20;
    /// `proc.profile(pid) -> Str` — the profiler's per-process summary
    /// (empty when profiling is disabled).
    pub const PROC_PROFILE: u16 = 21;
    /// `proc.heapinfo(pid) -> Str` — procfs-style heap layout text for one
    /// process (pages, nursery split, entry/exit items, GC counts). Always
    /// available; empty for an unknown pid.
    pub const PROC_HEAPINFO: u16 = 22;
    /// `proc.heapstats(pid) -> Str` — allocation/GC statistics for one
    /// process; includes per-site allocation rows when the heap
    /// observability plane is enabled. Empty for an unknown pid.
    pub const PROC_HEAPSTATS: u16 = 23;
    /// Number of registered syscalls.
    pub const COUNT: u16 = 24;

    /// Registry name of a syscall number, for trace events. Unknown ids
    /// (impossible through the registry) map to `"sys.unknown"`.
    pub fn name(id: u16) -> &'static str {
        match id {
            PRINT => "sys.print",
            CYCLES => "sys.cycles",
            CLOCK => "sys.clock",
            YIELD => "sys.yield",
            RAND => "sys.rand",
            HEAP_USED => "sys.heap_used",
            HEAP_LIMIT => "sys.heap_limit",
            GC => "sys.gc",
            SELF_PID => "proc.self_pid",
            SPAWN => "proc.spawn",
            KILL => "proc.kill",
            WAIT => "proc.wait",
            EXIT => "proc.exit",
            SHM_CREATE => "shm.create",
            SHM_LOOKUP => "shm.lookup",
            SHM_GET => "shm.get",
            THREAD => "proc.thread",
            NET_SEND => "net.send",
            NET_SENT => "net.sent",
            PROC_STATUS => "proc.status",
            PROC_MEMINFO => "proc.meminfo",
            PROC_PROFILE => "proc.profile",
            PROC_HEAPINFO => "proc.heapinfo",
            PROC_HEAPSTATS => "proc.heapstats",
            _ => "sys.unknown",
        }
    }

    /// Pre-formatted `[sys:name]` profiler leaf label for a syscall number.
    /// Static so the sampler's hot path hands the profile store a ready
    /// string instead of formatting one per sample.
    pub fn sys_label(id: u16) -> &'static str {
        match id {
            PRINT => "[sys:sys.print]",
            CYCLES => "[sys:sys.cycles]",
            CLOCK => "[sys:sys.clock]",
            YIELD => "[sys:sys.yield]",
            RAND => "[sys:sys.rand]",
            HEAP_USED => "[sys:sys.heap_used]",
            HEAP_LIMIT => "[sys:sys.heap_limit]",
            GC => "[sys:sys.gc]",
            SELF_PID => "[sys:proc.self_pid]",
            SPAWN => "[sys:proc.spawn]",
            KILL => "[sys:proc.kill]",
            WAIT => "[sys:proc.wait]",
            EXIT => "[sys:proc.exit]",
            SHM_CREATE => "[sys:shm.create]",
            SHM_LOOKUP => "[sys:shm.lookup]",
            SHM_GET => "[sys:shm.get]",
            THREAD => "[sys:proc.thread]",
            NET_SEND => "[sys:net.send]",
            NET_SENT => "[sys:net.sent]",
            PROC_STATUS => "[sys:proc.status]",
            PROC_MEMINFO => "[sys:proc.meminfo]",
            PROC_PROFILE => "[sys:proc.profile]",
            PROC_HEAPINFO => "[sys:proc.heapinfo]",
            PROC_HEAPSTATS => "[sys:proc.heapstats]",
            _ => "[sys:sys.unknown]",
        }
    }
}

/// Builds the intrinsic registry the class loader links against.
pub fn build_registry() -> IntrinsicRegistry {
    use TypeDesc::*;
    let mut r = IntrinsicRegistry::new();
    // sys.*
    r.register("sys.print", vec![Str], None);
    r.register("sys.cycles", vec![], Some(Int));
    r.register("sys.clock", vec![], Some(Int));
    r.register("sys.yield", vec![], None);
    r.register("sys.rand", vec![Int], Some(Int));
    r.register("sys.heap_used", vec![], Some(Int));
    r.register("sys.heap_limit", vec![], Some(Int));
    r.register("sys.gc", vec![], None);
    // proc.*
    r.register("proc.self_pid", vec![], Some(Int));
    r.register("proc.spawn", vec![Str, Str, Int], Some(Int));
    r.register("proc.kill", vec![Int], Some(Int));
    r.register("proc.wait", vec![Int], Some(Int));
    r.register("proc.exit", vec![Int], None);
    // shm.*
    r.register("shm.create", vec![Str, Str, Int], Some(Int));
    r.register("shm.lookup", vec![Str], Some(Int));
    r.register("shm.get", vec![Str, Int], Some(Class("Object".to_string())));
    // In-process green threads: run `Class.method(int)` concurrently with
    // the spawning thread, sharing the process heap, statics and namespace.
    r.register("proc.thread", vec![Str, Str, Int], Some(Int));
    // net.* — the paper's named future-work resource, modelled as a paced
    // per-process NIC in virtual time.
    r.register("net.send", vec![Int], Some(Int));
    r.register("net.sent", vec![], Some(Int));
    // The procfs-style introspection plane: kernel accounting state served
    // to guests as plain text, so in-VM tools (a `top`, a debugger) need no
    // privileged channel.
    r.register("proc.status", vec![Int], Some(Str));
    r.register("proc.meminfo", vec![], Some(Str));
    r.register("proc.profile", vec![Int], Some(Str));
    r.register("proc.heapinfo", vec![Int], Some(Str));
    r.register("proc.heapstats", vec![Int], Some(Str));
    debug_assert_eq!(r.len(), sysno::COUNT as usize);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_order_matches_sysno() {
        let r = build_registry();
        assert_eq!(r.by_name("sys.print"), Some(sysno::PRINT));
        assert_eq!(r.by_name("sys.cycles"), Some(sysno::CYCLES));
        assert_eq!(r.by_name("sys.clock"), Some(sysno::CLOCK));
        assert_eq!(r.by_name("sys.yield"), Some(sysno::YIELD));
        assert_eq!(r.by_name("sys.rand"), Some(sysno::RAND));
        assert_eq!(r.by_name("sys.heap_used"), Some(sysno::HEAP_USED));
        assert_eq!(r.by_name("sys.heap_limit"), Some(sysno::HEAP_LIMIT));
        assert_eq!(r.by_name("sys.gc"), Some(sysno::GC));
        assert_eq!(r.by_name("proc.self_pid"), Some(sysno::SELF_PID));
        assert_eq!(r.by_name("proc.spawn"), Some(sysno::SPAWN));
        assert_eq!(r.by_name("proc.kill"), Some(sysno::KILL));
        assert_eq!(r.by_name("proc.wait"), Some(sysno::WAIT));
        assert_eq!(r.by_name("proc.exit"), Some(sysno::EXIT));
        assert_eq!(r.by_name("shm.create"), Some(sysno::SHM_CREATE));
        assert_eq!(r.by_name("shm.lookup"), Some(sysno::SHM_LOOKUP));
        assert_eq!(r.by_name("shm.get"), Some(sysno::SHM_GET));
        assert_eq!(r.by_name("proc.thread"), Some(sysno::THREAD));
        assert_eq!(r.by_name("net.send"), Some(sysno::NET_SEND));
        assert_eq!(r.by_name("net.sent"), Some(sysno::NET_SENT));
        assert_eq!(r.by_name("proc.status"), Some(sysno::PROC_STATUS));
        assert_eq!(r.by_name("proc.meminfo"), Some(sysno::PROC_MEMINFO));
        assert_eq!(r.by_name("proc.profile"), Some(sysno::PROC_PROFILE));
        assert_eq!(r.by_name("proc.heapinfo"), Some(sysno::PROC_HEAPINFO));
        assert_eq!(r.by_name("proc.heapstats"), Some(sysno::PROC_HEAPSTATS));
        assert_eq!(r.len(), sysno::COUNT as usize);
    }

    #[test]
    fn sys_labels_match_names() {
        // The static label table is a cache of `[sys:{name}]`; keep the two
        // from drifting apart.
        for id in 0..=sysno::COUNT {
            assert_eq!(
                sysno::sys_label(id),
                format!("[sys:{}]", sysno::name(id)),
                "label cache out of sync for syscall {id}"
            );
        }
    }
}
