//! The KaffeOS kernel: process table, scheduler, syscall dispatch, GC
//! policy, and the termination protocol.
//!
//! The kernel is the trusted half of Figure 1. Guest code runs in user mode
//! and can be terminated at any safe point; kernel services (everything in
//! this file) run atomically with respect to the green-thread scheduler, so
//! kernel data structures are never left inconsistent by a termination —
//! the deferred-termination rule falls out of the quantum structure, and
//! threads additionally carry a `kernel_depth` that defers kills while set.

use std::collections::{HashMap, VecDeque};
use kaffeos_heap::FxHashMap;
use std::sync::Arc;

use kaffeos_heap::{
    costs, BarrierKind, BarrierStats, HeapId, HeapSpace, ObjRef, ProcTag, SpaceConfig, Value,
};
use kaffeos_memlimit::Kind;
use kaffeos_trace::SampleKind;
use kaffeos_vm::{
    step, ClassDef, ClassTable, Engine, ExecCtx, MethodIdx, RunExit, Thread, ThreadState,
    VmException,
};

use crate::faults::{AuditReport, AuditViolation, FaultPlan};
use crate::process::{CpuAccount, ExitStatus, ParkReason, Pid, ProcState, Process, SpawnOpts};
use crate::shm::{SharedHeap, ShmRegistry};
use crate::tenant::{
    Admission, OverloadPolicy, PendingRestart, QueuedSpawn, RestartRecord, TenantId, TenantLaunch,
    TenantPolicy, TenantState, TenantStats,
};
use crate::stdlib;
use crate::syscalls::{build_registry, sysno};

/// Fixed kernel-entry cost per syscall, in cycles.
const SYSCALL_BASE_CYCLES: u64 = 300;

/// Resolves a raw `(method index, pc)` stack walk into interned profiler
/// frame ids, outermost first; the leaf is refined by its pc bucket. An
/// empty walk (thread finished or killed at the boundary) becomes the
/// synthetic `(no stack)` frame.
fn resolve_frames(
    p: &mut kaffeos_trace::ProfileStore,
    table: &ClassTable,
    stack: &[(u32, u32)],
) -> Vec<u32> {
    let Some((&(leaf_method, leaf_pc), callers)) = stack.split_last() else {
        return vec![p.intern("(no stack)")];
    };
    let mut frames = Vec::with_capacity(stack.len());
    for &(m, _) in callers {
        frames.push(p.method_frame(m, || table.qualified_name(MethodIdx(m))));
    }
    frames.push(p.leaf_frame(leaf_method, leaf_pc, || {
        table.qualified_name(MethodIdx(leaf_method))
    }));
    frames
}
/// Upper bound on objects in one shared heap.
const SHM_MAX_OBJECTS: i64 = 1 << 20;

/// Kernel configuration.
#[derive(Debug, Clone)]
pub struct KaffeOsConfig {
    /// Write-barrier implementation (§4.1). `BarrierKind::None` disables
    /// isolation and is only meaningful together with `monolithic`.
    pub barrier: BarrierKind,
    /// Execution engine / cycle model (Figure 3 platforms).
    pub engine: Engine,
    /// Root memlimit for all user processes, bytes.
    pub user_budget: u64,
    /// Default per-process memory limit, bytes.
    pub default_process_limit: u64,
    /// Scheduler time slice in cycles.
    pub time_slice: u64,
    /// Run all guests on one heap with no per-process limits — the
    /// "commercial JVM without processes" baseline (IBM/n in Figure 4).
    pub monolithic: bool,
    /// Kernel GC cycle period in clock cycles (orphan check + kernel heap
    /// collection, §2).
    pub kernel_gc_period: u64,
    /// Record structured trace events at every kernel edge. Off by
    /// default; when off, zero events are recorded and no payload is ever
    /// constructed, and tracing has no cycle model, so the virtual clock
    /// is bit-identical either way.
    pub trace: bool,
    /// Ring capacity (events retained) when `trace` is on.
    pub trace_capacity: usize,
    /// Record weighted stack samples at virtual-time edges (quantum ends,
    /// syscall dispatch, GC) plus latency histograms. Off by default; the
    /// same `Option`-sink contract as `trace`: when off nothing runs, and
    /// sampling has no cycle model, so the virtual clock is bit-identical
    /// either way.
    pub profile: bool,
    /// Run the static heap-flow analyzer after every class-load batch and
    /// publish barrier-elision bitmaps: reference stores proven
    /// Local→Local skip the barrier's legality checks. Elision is
    /// host-wall-clock only — the virtual cycle model (and therefore every
    /// trace, profile, and Table-1 number) is bit-identical either way.
    /// Debug builds re-check elided stores against the real barrier.
    pub elide: bool,
    /// Heap observability plane: allocation-site profiling with survival
    /// stats, the GC/page timeline, and the live cross-heap edge census.
    /// Off by default; the same `Option`-sink contract as `trace` and
    /// `profile` — when off nothing is recorded and no closure runs, and
    /// the plane has no cycle model, so the virtual clock (and every
    /// golden trace/benchmark number) is bit-identical either way.
    pub heapprof: bool,
    /// Template-JIT tier (threshold, shared code-cache capacity). The tier
    /// changes wall-clock speed only: the virtual cycle model, traces,
    /// profiles, and every golden number are bit-identical with it on or
    /// off. Defaults honour the `KAFFEOS_JIT` environment toggle.
    pub jit: kaffeos_vm::JitConfig,
}

impl Default for KaffeOsConfig {
    fn default() -> Self {
        KaffeOsConfig {
            barrier: BarrierKind::NoHeapPointer,
            engine: Engine::KAFFEOS,
            user_budget: 256 << 20,
            default_process_limit: 16 << 20,
            time_slice: 50_000,
            monolithic: false,
            kernel_gc_period: 50_000_000,
            trace: false,
            trace_capacity: kaffeos_trace::DEFAULT_CAPACITY,
            profile: false,
            elide: true,
            heapprof: false,
            jit: kaffeos_vm::JitConfig::from_env(),
        }
    }
}

impl KaffeOsConfig {
    /// The full KaffeOS configuration with a given barrier variant.
    pub fn kaffeos(barrier: BarrierKind) -> Self {
        KaffeOsConfig {
            barrier,
            ..Default::default()
        }
    }

    /// A monolithic baseline VM with the given engine (no barriers, no
    /// per-process heaps or limits) capped at `heap_limit` bytes.
    pub fn monolithic(engine: Engine, heap_limit: u64) -> Self {
        KaffeOsConfig {
            barrier: BarrierKind::None,
            engine,
            user_budget: heap_limit,
            default_process_limit: heap_limit,
            monolithic: true,
            ..Default::default()
        }
    }
}

/// Kernel errors (not guest-visible exceptions).
#[derive(Debug)]
pub enum KernelError {
    /// An image failed to compile at registration time.
    Compile(kaffeos_cupc::CompileError),
    /// Class loading/verification failed.
    Vm(kaffeos_vm::VmError),
    /// Spawn of an unregistered image.
    UnknownImage(String),
    /// Operation on a pid that was never spawned.
    UnknownPid(Pid),
    /// The image has no usable `main` entry point.
    BadEntry(String),
    /// An image was registered twice under one name.
    DuplicateImage(String),
    /// The machine budget cannot cover the request (e.g. a hard
    /// reservation at spawn).
    OutOfMemory,
    /// A heap operation the kernel performs on a process' behalf failed.
    Heap(kaffeos_heap::HeapError),
    /// A kernel bookkeeping step that must not fail did fail. Surfaced as
    /// a typed error instead of a panic so an injected fault can never
    /// take down more than the process it targeted.
    Internal(&'static str),
    /// Admission control rejected a spawn: the tenant is at its
    /// concurrent-process cap and its admission queue is full (or it has
    /// none).
    AdmissionRejected {
        /// The rejecting tenant.
        tenant: TenantId,
        /// Its live process count at rejection.
        live: u32,
        /// Its concurrent-process cap.
        cap: u32,
    },
    /// Admission control rejected a spawn: the tenant's kill-storm
    /// circuit breaker is open.
    AdmissionBreakerOpen {
        /// The rejecting tenant.
        tenant: TenantId,
        /// Virtual cycle the breaker's cooldown ends.
        until: u64,
    },
    /// Admission control rejected a spawn: the tenant is shed under
    /// global memory pressure (graceful degradation).
    AdmissionShed {
        /// The shed tenant.
        tenant: TenantId,
    },
    /// Operation on a tenant id that was never created.
    UnknownTenant(TenantId),
}

impl core::fmt::Display for KernelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KernelError::Compile(e) => write!(f, "compile error: {e}"),
            KernelError::Vm(e) => write!(f, "vm error: {e}"),
            KernelError::UnknownImage(n) => write!(f, "unknown image {n}"),
            KernelError::UnknownPid(p) => write!(f, "unknown pid {p:?}"),
            KernelError::BadEntry(e) => write!(f, "bad entry point {e}"),
            KernelError::DuplicateImage(n) => write!(f, "duplicate image {n}"),
            KernelError::OutOfMemory => write!(f, "out of memory"),
            KernelError::Heap(e) => write!(f, "heap error: {e}"),
            KernelError::Internal(msg) => write!(f, "internal kernel invariant broken: {msg}"),
            KernelError::AdmissionRejected { tenant, live, cap } => write!(
                f,
                "admission rejected: tenant {} at cap ({live}/{cap}, queue full)",
                tenant.0
            ),
            KernelError::AdmissionBreakerOpen { tenant, until } => write!(
                f,
                "admission rejected: tenant {} circuit breaker open until cycle {until}",
                tenant.0
            ),
            KernelError::AdmissionShed { tenant } => write!(
                f,
                "admission rejected: tenant {} shed under memory pressure",
                tenant.0
            ),
            KernelError::UnknownTenant(t) => write!(f, "unknown tenant {}", t.0),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<kaffeos_heap::HeapError> for KernelError {
    fn from(e: kaffeos_heap::HeapError) -> Self {
        KernelError::Heap(e)
    }
}

impl From<kaffeos_cupc::CompileError> for KernelError {
    fn from(e: kaffeos_cupc::CompileError) -> Self {
        KernelError::Compile(e)
    }
}

impl From<kaffeos_vm::VmError> for KernelError {
    fn from(e: kaffeos_vm::VmError) -> Self {
        KernelError::Vm(e)
    }
}

/// Per-process view in a [`RunReport`].
#[derive(Debug, Clone)]
pub struct ProcessReport {
    /// Process id.
    pub pid: Pid,
    /// `image#pid` label.
    pub name: String,
    /// Exit status, or `None` if still live.
    pub status: Option<ExitStatus>,
    /// CPU account (exec / GC / kernel cycles).
    pub cpu: CpuAccount,
    /// Lines printed via `sys.print`.
    pub stdout: Vec<String>,
}

/// Result of a [`KaffeOs::run`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Global virtual clock at the end of the run, in cycles.
    pub clock: u64,
    /// `clock` converted at the modelled 500 MHz.
    pub virtual_seconds: f64,
    /// One report per process ever spawned, in pid order.
    pub processes: Vec<ProcessReport>,
    /// Write-barrier counters (Table 1).
    pub barrier: BarrierStats,
    /// Kernel CPU (kernel-heap GC, orphan merging).
    pub kernel_cpu: CpuAccount,
    /// True if runnable work remained but every thread was parked.
    pub deadlocked: bool,
    /// Scheduler quanta executed.
    pub quanta: u64,
}

/// The KaffeOS virtual machine: kernel + scheduler + heaps + classes.
pub struct KaffeOs {
    pub(crate) space: HeapSpace,
    pub(crate) table: ClassTable,
    config: KaffeOsConfig,
    shared_ns: u32,
    /// Namespace used to type-check images at registration time.
    template_ns: u32,
    string_class: kaffeos_vm::ClassIdx,
    monitors: FxHashMap<ObjRef, (u32, u32)>,
    procs: Vec<Process>,
    run_queue: VecDeque<(Pid, usize)>,
    clock: u64,
    quanta: u64,
    programs: HashMap<String, Arc<Vec<Arc<ClassDef>>>>,
    reloaded_defs: Vec<Arc<ClassDef>>,
    shm: ShmRegistry,
    kernel_cpu: CpuAccount,
    next_thread_id: u32,
    last_kernel_gc: u64,
    /// Monolithic mode: the single heap, namespace, and shared tables.
    mono_heap: Option<HeapId>,
    mono_ns: u32,
    mono_statics: FxHashMap<kaffeos_vm::ClassIdx, ObjRef>,
    mono_intern: FxHashMap<String, ObjRef>,
    /// Number of classes in the shared namespace (for the §3.2 ratio).
    shared_class_count: usize,
    /// Installed fault-injection schedule, if any.
    faults: Option<FaultPlan>,
    /// Internal errors the kernel degraded past instead of panicking.
    /// Non-empty means an invariant record is suspect; `audit` reports it.
    /// Always recorded (independently of tracing) because the auditor
    /// depends on it; with tracing on each is also emitted as an event.
    kernel_faults: Vec<kaffeos_trace::KernelFault>,
    /// Structured event sink shared with the heap space and memlimit tree.
    sink: kaffeos_trace::TraceSink,
    /// Profiler sink shared with the heap space (GC pause histograms are
    /// recorded at the collector's choke point).
    profile: kaffeos_trace::ProfileSink,
    /// Host-side total of bytecode instructions executed across all
    /// quanta. Observational only (throughput benchmarks); never feeds
    /// back into the clock, scheduling, or accounting.
    ops_executed: u64,
    /// Kernel-owned static heap-flow analysis. Re-run (and its elision
    /// bitmaps republished) after every class-load batch; summaries only
    /// move up the lattice, so bitmaps monotonically shrink and the
    /// republish is always sound.
    analysis: kaffeos_analyze::Analysis,
    /// Store sites that raised a segmentation violation at runtime,
    /// drained from guest threads at each quantum boundary. The oracle the
    /// soundness tests check static verdicts against.
    seg_sites: Vec<kaffeos_vm::SegSite>,
    /// Tenant table, indexed by [`TenantId`] (dense, creation order).
    tenants: Vec<TenantState>,
    /// Machine-wide graceful-degradation watermarks, if installed.
    overload: Option<OverloadPolicy>,
    /// Launches the tenant engine performed on its own (queued admissions
    /// and restarts), awaiting `drain_tenant_launches`.
    tenant_launches: Vec<TenantLaunch>,
    /// Process-shared JIT code cache (the ShareJIT artifact): one compiled
    /// body per `(class bytes, ordinal, elision, resolution)` key, shared
    /// by every process whose method matches.
    jit_cache: kaffeos_vm::CodeCache,
}

impl KaffeOs {
    /// Boots a VM: heap space, shared namespace, standard library.
    pub fn new(config: KaffeOsConfig) -> Self {
        let mut space = HeapSpace::new(SpaceConfig {
            barrier: config.barrier,
            user_budget: config.user_budget,
        });
        let sink = if config.trace {
            kaffeos_trace::TraceSink::enabled(config.trace_capacity)
        } else {
            kaffeos_trace::TraceSink::disabled()
        };
        space.set_trace_sink(sink.clone());
        let profile = if config.profile {
            kaffeos_trace::ProfileSink::enabled()
        } else {
            kaffeos_trace::ProfileSink::disabled()
        };
        space.set_profile_sink(profile.clone());
        if config.heapprof {
            space.set_heapprof_sink(kaffeos_trace::HeapProfSink::enabled());
        }
        let mut table = ClassTable::new(build_registry());
        let shared_ns = table.create_namespace("shared", None);
        let shared_class_count =
            stdlib::load_shared_stdlib(&mut table, shared_ns).expect("stdlib must load");
        // Template namespace: shared + reloaded classes, for compiling
        // images at registration time.
        let template_ns = table.create_namespace("template", Some(shared_ns));
        let reloaded_defs: Vec<Arc<ClassDef>> = stdlib::compile_reloaded(&table, template_ns)
            .expect("reloaded stdlib must compile")
            .into_iter()
            .map(|d| d.into_arc())
            .collect();
        for def in &reloaded_defs {
            table
                .load_class(template_ns, def.clone())
                .expect("reloaded stdlib must load");
        }
        let string_class = table.lookup(shared_ns, "String").expect("String loaded");

        let mono_heap = if config.monolithic {
            let root = space.root_memlimit();
            let ml = space
                .limits_mut()
                .create_child(root, Kind::Soft, config.user_budget, "mono")
                .expect("mono memlimit");
            Some(space.create_user_heap(ProcTag(u32::MAX), ml, "mono"))
        } else {
            None
        };
        let mono_ns = if config.monolithic {
            table.create_namespace("mono", Some(shared_ns))
        } else {
            template_ns
        };
        if config.monolithic {
            // Monolithic mode still gets Console/Random — once, shared by
            // all guests (that sharing is exactly the unsafety).
            let defs = stdlib::compile_reloaded(&table, mono_ns).expect("reloaded compile");
            for def in defs {
                table
                    .load_class(mono_ns, def.into_arc())
                    .expect("reloaded stdlib must load");
            }
        }

        let config_jit_cache_bytes = config.jit.cache_bytes;
        let mut os = KaffeOs {
            space,
            table,
            config,
            shared_ns,
            template_ns,
            string_class,
            monitors: FxHashMap::default(),
            procs: Vec::new(),
            run_queue: VecDeque::new(),
            clock: 0,
            quanta: 0,
            programs: HashMap::new(),
            reloaded_defs,
            shm: ShmRegistry::new(),
            kernel_cpu: CpuAccount::default(),
            next_thread_id: 1,
            last_kernel_gc: 0,
            mono_heap,
            mono_ns,
            mono_statics: FxHashMap::default(),
            mono_intern: FxHashMap::default(),
            shared_class_count,
            faults: None,
            kernel_faults: Vec::new(),
            sink,
            profile,
            ops_executed: 0,
            analysis: kaffeos_analyze::Analysis::default(),
            seg_sites: Vec::new(),
            tenants: Vec::new(),
            overload: None,
            tenant_launches: Vec::new(),
            jit_cache: kaffeos_vm::CodeCache::new(config_jit_cache_bytes),
        };
        os.republish_elision();
        os
    }

    /// The active configuration.
    pub fn config(&self) -> &KaffeOsConfig {
        &self.config
    }

    /// Re-runs the static analyzer (region, hierarchy, and escape passes)
    /// over every loaded class and republishes per-method facts for **all**
    /// methods: barrier-elision bitmaps, monitor-elision and dies-local
    /// bitmaps, and devirtualized call-site tables. Must run after each
    /// class-load batch (loads happen between quanta, so there is no window
    /// where a stale fact executes): a new override or field store can only
    /// *raise* region summaries — shrinking bitmaps and turning monomorphic
    /// sites polymorphic, never the reverse.
    fn republish_elision(&mut self) {
        if !self.config.elide {
            return;
        }
        self.analysis.run(&self.table);
        let bitmaps: Vec<Vec<u64>> = (0..self.table.methods.len())
            .map(|i| self.analysis.elision_bitmap(&self.table, MethodIdx(i as u32)))
            .collect();
        for (i, bm) in bitmaps.into_iter().enumerate() {
            let midx = MethodIdx(i as u32);
            self.table.set_elision(midx, bm);
            self.table.set_analysis_facts(
                midx,
                self.analysis.monitor_bitmap(midx),
                self.analysis.local_bitmap(midx),
                self.analysis.devirt_table(midx),
            );
        }
        self.invalidate_stale_bodies();
    }

    /// Invalidates compiled bodies whose baked-in analysis facts no longer
    /// match the published ones (class reload / analyzer republish) — a
    /// changed elision bitmap, a devirtualized site whose hierarchy gained
    /// an override, or a changed class definition. The method re-tiers
    /// from a cold counter and compiles under its new cache key; other
    /// processes whose facts still match keep sharing the old body under
    /// the old key.
    fn invalidate_stale_bodies(&mut self) {
        for proc in &mut self.procs {
            if matches!(proc.state, ProcState::Dead(_)) {
                continue;
            }
            // `attached()` walks in method order, so the invalidation
            // sequence (and thus the cache's eviction clock) is
            // deterministic.
            let jit_cache = &mut self.jit_cache;
            let table = &self.table;
            let stale: Vec<(MethodIdx, kaffeos_vm::MethodKey)> = proc
                .jit
                .attached()
                .filter(|(midx, ab)| jit_cache.key_for(table, *midx) != ab.key)
                .map(|(midx, ab)| (midx, ab.key))
                .collect();
            for (midx, key) in stale {
                *proc.jit.slot_mut(midx) = kaffeos_vm::BodySlot::Cold;
                self.jit_cache.invalidate(&key);
                proc.jit.counters.remove(&midx);
            }
        }
    }

    /// Runs the static heap-flow analyzer over everything currently
    /// loaded and returns the full results: per-site verdicts and the
    /// lint report (`kaffeos-lint` and the soundness tests read this).
    pub fn analysis(&self) -> kaffeos_analyze::Analysis {
        kaffeos_analyze::analyze(&self.table)
    }

    /// Reference-store sites that raised a segmentation violation at
    /// runtime, in execution order. Only *guest* stores appear here —
    /// kernel-level injected writes bypass guest bytecode entirely.
    pub fn seg_violation_sites(&self) -> &[kaffeos_vm::SegSite] {
        &self.seg_sites
    }

    /// The global class table (read-only): loaded classes, methods, and
    /// the *published* elision bitmaps the interpreter actually consults.
    pub fn class_table(&self) -> &ClassTable {
        &self.table
    }

    /// Loads additional classes into the **shared namespace** (e.g. the
    /// shared message types processes communicate through).
    pub fn load_shared_source(&mut self, source: &str) -> Result<(), KernelError> {
        let defs = kaffeos_cupc::compile(source, &self.table, self.shared_ns)?;
        for def in defs {
            self.table.load_class(self.shared_ns, def.into_arc())?;
            self.shared_class_count += 1;
        }
        self.republish_elision();
        Ok(())
    }

    /// Registers a program image from Cup source. The image is compiled
    /// and type-checked once against the template namespace; every spawn
    /// reloads its classes into the new process' namespace.
    pub fn register_image(&mut self, name: &str, source: &str) -> Result<(), KernelError> {
        if self.programs.contains_key(name) {
            return Err(KernelError::DuplicateImage(name.to_string()));
        }
        let defs = kaffeos_cupc::compile(source, &self.table, self.template_ns)?;
        self.programs.insert(
            name.to_string(),
            Arc::new(defs.into_iter().map(|d| d.into_arc()).collect()),
        );
        Ok(())
    }

    /// Registers a pre-built image (tests and benches).
    pub fn register_image_defs(&mut self, name: &str, defs: Vec<ClassDef>) {
        self.programs.insert(
            name.to_string(),
            Arc::new(defs.into_iter().map(|d| d.into_arc()).collect()),
        );
    }

    /// Spawns a process from a registered image with default CPU policy;
    /// `limit` overrides the default per-process memory limit. See
    /// [`KaffeOs::spawn_with`] for the full resource policy surface.
    pub fn spawn(
        &mut self,
        image: &str,
        args: &str,
        limit: Option<u64>,
    ) -> Result<Pid, KernelError> {
        self.spawn_with(
            image,
            args,
            SpawnOpts {
                mem_limit: limit,
                ..SpawnOpts::default()
            },
        )
    }

    /// Spawns a process from a registered image, entering the image's
    /// `main(String)` (or `main()` / `main(int)`) with `args`, under the
    /// given resource policy: memory limit (soft or hard/reserved), CPU
    /// budget, and proportional CPU share.
    pub fn spawn_with(
        &mut self,
        image: &str,
        args: &str,
        opts: SpawnOpts,
    ) -> Result<Pid, KernelError> {
        let defs = self
            .programs
            .get(image)
            .cloned()
            .ok_or_else(|| KernelError::UnknownImage(image.to_string()))?;
        let pid = Pid(self.procs.len() as u32 + 1);
        let label = format!("{image}#{}", pid.0);
        self.profile.set_label(pid.0, &label);
        self.space.heapprof().set_label(pid.0, &label);

        let (heap, memlimit, ns) = if self.config.monolithic {
            // Load image classes once into the single namespace.
            if self.table.lookup(self.mono_ns, "Main").is_none() || !self.image_loaded_mono(&defs) {
                for def in defs.iter() {
                    // Ignore duplicate-class errors: a second spawn of the
                    // same image reuses the loaded classes.
                    match self.table.load_class(self.mono_ns, def.clone()) {
                        Ok(_) => {}
                        Err(kaffeos_vm::VmError::DuplicateClass(_)) => {}
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            let heap = self
                .mono_heap
                .ok_or(KernelError::Internal("monolithic heap missing at spawn"))?;
            (heap, None, self.mono_ns)
        } else {
            let root = self.space.root_memlimit();
            let bytes = opts.mem_limit.unwrap_or(self.config.default_process_limit);
            let kind = if opts.mem_hard {
                Kind::Hard
            } else {
                Kind::Soft
            };
            let ml = self
                .space
                .limits_mut()
                .create_child(root, kind, bytes, label.clone())
                .map_err(|_| KernelError::OutOfMemory)?;
            let heap = self
                .space
                .create_user_heap(ProcTag(pid.0), ml, label.clone());
            let ns = self
                .table
                .create_namespace(label.clone(), Some(self.shared_ns));
            // Reloaded standard-library classes: per-process copies (§3.2).
            for def in self.reloaded_defs.clone() {
                self.table.load_class(ns, def)?;
            }
            for def in defs.iter() {
                self.table.load_class(ns, def.clone())?;
            }
            (heap, Some(ml), ns)
        };
        // The spawn loaded classes (reloaded stdlib + image): re-analyze
        // and republish elision bitmaps before anything runs.
        self.republish_elision();

        let mut proc = Process {
            pid,
            name: label,
            image: image.to_string(),
            state: ProcState::Running,
            heap,
            memlimit,
            ns,
            statics: FxHashMap::default(),
            intern: FxHashMap::default(),
            threads: Vec::new(),
            parked: HashMap::new(),
            cpu: CpuAccount::default(),
            stdout: Vec::new(),
            rng: 0x9E3779B97F4A7C15u64 ^ (pid.0 as u64) << 17,
            waiters: Vec::new(),
            charged_shm: Vec::new(),
            exit_code: None,
            cpu_limit: opts.cpu_limit,
            cpu_share: opts.cpu_share.max(1),
            cpu_overrun: false,
            net_bps: opts.net_bps,
            net_sent: 0,
            net_busy_until: 0,
            tenant: opts.tenant,
            spawn_args: args.to_string(),
            spawn_opts: opts,
            jit: kaffeos_vm::ProcJit::default(),
            devirt_calls: 0,
            monitors_elided: 0,
        };

        // Resolve the entry point: the image's class that declares a static
        // `main` (conventionally `Main`, but images sharing a monolithic
        // namespace need distinct entry class names).
        let entry_name = defs
            .iter()
            .find(|d| d.methods.iter().any(|m| m.name == "main" && m.is_static))
            .map(|d| d.name.clone())
            .ok_or_else(|| KernelError::BadEntry("image declares no static main".to_string()))?;
        let main_class = self
            .table
            .lookup(ns, &entry_name)
            .ok_or_else(|| KernelError::BadEntry(format!("no class {entry_name}")))?;
        let midx = self
            .table
            .find_method(main_class, "main")
            .ok_or_else(|| KernelError::BadEntry(format!("no method {entry_name}.main")))?;
        let m = self.table.method(midx);
        if !m.is_static {
            return Err(KernelError::BadEntry(
                "Main.main must be static".to_string(),
            ));
        }
        let thread_args: Vec<Value> = match m.params.as_slice() {
            [] => vec![],
            [kaffeos_vm::TypeDesc::Str] => {
                let s = self
                    .space
                    .alloc_str(heap, self.string_class.heap_class(), args)
                    .map_err(|_| KernelError::OutOfMemory)?;
                vec![Value::Ref(s)]
            }
            [kaffeos_vm::TypeDesc::Int] => {
                vec![Value::Int(args.trim().parse::<i64>().unwrap_or(0))]
            }
            other => {
                return Err(KernelError::BadEntry(format!(
                    "unsupported Main.main signature {other:?}"
                )))
            }
        };
        let tid = self.next_thread_id;
        self.next_thread_id += 1;
        proc.threads
            .push(Thread::new(tid, &self.table, midx, thread_args));
        self.procs.push(proc);
        self.run_queue.push_back((pid, 0));
        self.trace_emit(pid.0, || kaffeos_trace::Payload::Spawn {
            pid: pid.0,
            image: image.to_string(),
        });
        Ok(pid)
    }

    fn image_loaded_mono(&self, defs: &Arc<Vec<Arc<ClassDef>>>) -> bool {
        defs.iter()
            .all(|d| self.table.lookup(self.mono_ns, &d.name).is_some())
    }

    // ---- accessors ---------------------------------------------------------

    fn proc_index(&self, pid: Pid) -> Option<usize> {
        let idx = pid.0.checked_sub(1)? as usize;
        (idx < self.procs.len()).then_some(idx)
    }

    /// Process state.
    pub fn status(&self, pid: Pid) -> Option<ExitStatus> {
        let idx = self.proc_index(pid)?;
        match &self.procs[idx].state {
            ProcState::Dead(status) => Some(status.clone()),
            _ => None,
        }
    }

    /// Lines printed by the process so far.
    pub fn stdout(&self, pid: Pid) -> &[String] {
        self.proc_index(pid)
            .map(|i| self.procs[i].stdout.as_slice())
            .unwrap_or(&[])
    }

    /// CPU account of a process.
    pub fn cpu(&self, pid: Pid) -> CpuAccount {
        self.proc_index(pid)
            .map(|i| self.procs[i].cpu)
            .unwrap_or_default()
    }

    /// Global virtual clock in cycles.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Virtual seconds at the modelled 500 MHz clock.
    pub fn virtual_seconds(&self) -> f64 {
        costs::cycles_to_seconds(self.clock)
    }

    /// Host-side count of bytecode instructions executed so far. Purely
    /// observational — throughput benchmarks divide this by host wall time;
    /// it never influences the virtual clock or scheduling.
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    /// Write-barrier counters (Table 1).
    pub fn barrier_stats(&self) -> BarrierStats {
        self.space.barrier_stats()
    }

    /// Resets barrier counters (between benchmark configurations).
    pub fn reset_barrier_stats(&mut self) {
        self.space.reset_barrier_stats();
    }

    /// Direct heap-space access for tests and benches.
    pub fn space(&self) -> &HeapSpace {
        &self.space
    }

    /// Shared/reloaded class counts for the §3.2 sharing ratio.
    pub fn class_sharing_counts(&self) -> (usize, usize) {
        (self.shared_class_count, stdlib::RELOADED_CLASSES.len())
    }

    /// The shared-heap registry (read-only view).
    pub fn shm_registry(&self) -> &ShmRegistry {
        &self.shm
    }

    /// True if the process is still live.
    pub fn is_alive(&self, pid: Pid) -> bool {
        self.proc_index(pid)
            .map(|i| !matches!(self.procs[i].state, ProcState::Dead(_)))
            .unwrap_or(false)
    }

    // ---- tracing (the observability plane) ---------------------------------

    /// True if structured event tracing is recording.
    pub fn trace_enabled(&self) -> bool {
        self.sink.is_enabled()
    }

    /// The retained trace events, oldest first (empty when disabled).
    pub fn trace_events(&self) -> Vec<kaffeos_trace::Event> {
        self.sink.events()
    }

    /// The retained trace as JSON lines — the deterministic golden-trace
    /// format: same workload + same fault seed ⇒ byte-identical output.
    pub fn trace_jsonl(&self) -> String {
        self.sink.jsonl()
    }

    /// The retained trace in Chrome `trace_event` format, loadable in
    /// `chrome://tracing` / Perfetto.
    pub fn trace_chrome(&self) -> String {
        self.sink.chrome()
    }

    /// Per-process counters derived from the event stream. Maintained
    /// incrementally, so exact even after the ring has dropped old events.
    pub fn metrics(&self) -> kaffeos_trace::MetricsSnapshot {
        self.sink.metrics()
    }

    /// The memlimit node of a live process, for cross-checking trace
    /// charge/credit accounting against the tree.
    pub fn proc_memlimit(&self, pid: Pid) -> Option<kaffeos_memlimit::MemLimitId> {
        self.proc_index(pid).and_then(|i| self.procs[i].memlimit)
    }

    /// Stamps the sink with the current clock and the attributed pid, then
    /// records the payload built by `f` (never called when disabled).
    fn trace_emit(&self, pid: u32, f: impl FnOnce() -> kaffeos_trace::Payload) {
        if self.sink.is_enabled() {
            self.sink.set_clock(self.clock);
            self.sink.set_pid(pid);
            self.sink.emit_with(f);
        }
    }

    // ---- profiling & introspection (the virtual-time profiler) -------------

    /// True if the sampling profiler is recording.
    pub fn profile_enabled(&self) -> bool {
        self.profile.is_enabled()
    }

    /// The profile as Brendan-Gregg folded stacks — deterministic: same
    /// workload + same fault seed ⇒ byte-identical output (empty when
    /// profiling is off).
    pub fn profile_folded(&self) -> String {
        self.profile.folded()
    }

    /// The profile as a self-contained SVG flamegraph (empty when off).
    pub fn profile_flamegraph_svg(&self) -> String {
        self.profile.flamegraph_svg()
    }

    /// GC pause / syscall latency / quantum jitter histograms as
    /// deterministic text (empty when off).
    pub fn profile_histograms(&self) -> String {
        self.profile.histograms_text()
    }

    /// Per-process profile summary: sample totals by pool plus the top
    /// five leaf frames (empty when off).
    pub fn profile_summary(&self, pid: Pid) -> String {
        self.profile.summary(pid.0)
    }

    /// Per-pid sampled cycle totals, split exec/GC/kernel (empty when off).
    pub fn profile_totals(&self) -> std::collections::BTreeMap<u32, kaffeos_trace::PidTotals> {
        self.profile.totals()
    }

    /// Top `n` leaf frames for `pid` by sampled weight (empty when off).
    pub fn profile_top_leaves(&self, pid: Pid, n: usize) -> Vec<(String, u64)> {
        self.profile.top_leaves(pid.0, n)
    }

    /// procfs-style status text for one process — the text `proc.status`
    /// serves to guests. Always available (profiling not required); empty
    /// for an unknown pid.
    pub fn proc_status_text(&self, pid: Pid) -> String {
        use std::fmt::Write as _;
        let Some(idx) = self.proc_index(pid) else {
            return String::new();
        };
        let p = &self.procs[idx];
        let state = match &p.state {
            ProcState::Running => "running".to_string(),
            ProcState::Dying => "dying".to_string(),
            ProcState::Dead(status) => format!("dead({})", status.wait_code()),
        };
        let heap_used = self.space.heap_bytes(p.heap).unwrap_or(0);
        let heap_limit = p
            .memlimit
            .map(|ml| self.space.limits().limit(ml))
            .unwrap_or(self.config.user_budget);
        let mut out = String::new();
        let _ = writeln!(out, "pid:\t{}", p.pid.0);
        let _ = writeln!(out, "name:\t{}", p.name);
        let _ = writeln!(out, "image:\t{}", p.image);
        let _ = writeln!(out, "state:\t{state}");
        let _ = writeln!(out, "threads:\t{}", p.threads.len());
        let _ = writeln!(out, "cpu_exec:\t{}", p.cpu.exec);
        let _ = writeln!(out, "cpu_gc:\t{}", p.cpu.gc);
        let _ = writeln!(out, "cpu_kernel:\t{}", p.cpu.kernel);
        let _ = writeln!(out, "heap_used:\t{heap_used}");
        let _ = writeln!(out, "heap_limit:\t{heap_limit}");
        let _ = writeln!(out, "net_sent:\t{}", p.net_sent);
        let _ = writeln!(out, "jit_compiled:\t{}", p.jit.stats.compiled);
        let _ = writeln!(out, "jit_cache_hits:\t{}", p.jit.stats.hits);
        let _ = writeln!(out, "jit_shared_reuse:\t{}", p.jit.stats.reuse);
        let _ = writeln!(out, "jit_bytes:\t{}", p.jit.stats.bytes);
        let _ = writeln!(out, "devirt_calls:\t{}", p.devirt_calls);
        let _ = writeln!(out, "monitors_elided:\t{}", p.monitors_elided);
        out
    }

    /// `(devirtualized calls, monitor ops elided)` for a process — the
    /// counters behind the two analysis lines in `proc.status`. `None` for
    /// an unknown pid. Host observability only.
    pub fn analysis_counters(&self, pid: Pid) -> Option<(u64, u64)> {
        self.proc_index(pid)
            .map(|idx| (self.procs[idx].devirt_calls, self.procs[idx].monitors_elided))
    }

    /// Per-process JIT statistics (methods compiled, shared-cache hits and
    /// cross-process reuse, template bytes referenced). `None` for an
    /// unknown pid. Host observability only — never feeds virtual state.
    pub fn jit_stats(&self, pid: Pid) -> Option<kaffeos_vm::ProcJitStats> {
        self.proc_index(pid).map(|idx| self.procs[idx].jit.stats)
    }

    /// Cumulative counters of the process-shared code cache.
    pub fn jit_cache_stats(&self) -> kaffeos_vm::CacheStats {
        self.jit_cache.stats
    }

    /// `(bodies cached, bytes cached, byte capacity)` of the shared code
    /// cache.
    pub fn jit_cache_usage(&self) -> (usize, u64, u64) {
        (
            self.jit_cache.len(),
            self.jit_cache.bytes(),
            self.jit_cache.capacity(),
        )
    }

    /// Deterministic shared-cache registry snapshot in key order:
    /// `(key, refcount, body bytes, creator pid)`. Lifecycle tests compare
    /// this across replays; it never feeds virtual state.
    pub fn jit_cache_snapshot(&self) -> Vec<(kaffeos_vm::MethodKey, u32, u64, u32)> {
        self.jit_cache.snapshot()
    }

    /// The whole memlimit tree rendered as indented text — the text
    /// `proc.meminfo` serves to guests. Always available.
    pub fn meminfo_text(&self) -> String {
        self.space
            .limits()
            .render_tree(self.space.root_memlimit())
    }

    /// A `kaffeos-top` snapshot: one row per process with the CPU split,
    /// heap pressure against the memlimit, and — when the profiler is on —
    /// the hottest sampled leaf frame. Rows are in pid order, so the table
    /// is deterministic like everything else derived from virtual time.
    pub fn top_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>4} {:<14} {:<9} {:>12} {:>12} {:>10} {:>10} {:>10} {:>9} {:>13}  TOP-METHOD",
            "PID", "NAME", "STATE", "EXEC", "GC", "KERNEL", "HEAP", "LIMIT", "JIT", "DEVIRT/ELIDE"
        );
        for p in &self.procs {
            let state = match &p.state {
                ProcState::Running => "running".to_string(),
                ProcState::Dying => "dying".to_string(),
                ProcState::Dead(status) => format!("dead({})", status.wait_code()),
            };
            let heap_used = self.space.heap_bytes(p.heap).unwrap_or(0);
            let heap_limit = p
                .memlimit
                .map(|ml| self.space.limits().limit(ml))
                .unwrap_or(self.config.user_budget);
            let top = self
                .profile
                .top_leaves(p.pid.0, 1)
                .into_iter()
                .next()
                .map(|(frame, _)| frame)
                .unwrap_or_else(|| "-".to_string());
            // Compiled methods plus shared-body reuses: "3+2" reads as
            // "3 compiled here, 2 picked up warm from the shared cache".
            let jit = format!("{}+{}", p.jit.stats.compiled, p.jit.stats.reuse);
            // Devirtualized calls / elided monitor ops: the whole-program
            // analysis' runtime payoff at a glance.
            let devirt = format!("{}/{}", p.devirt_calls, p.monitors_elided);
            let _ = writeln!(
                out,
                "{:>4} {:<14} {:<9} {:>12} {:>12} {:>10} {:>10} {:>10} {:>9} {:>13}  {top}",
                p.pid.0,
                p.name,
                state,
                p.cpu.exec,
                p.cpu.gc,
                p.cpu.kernel,
                heap_used,
                heap_limit,
                jit,
                devirt
            );
        }
        out
    }

    // ---- heap observability (allocation sites, dumps, the timeline) --------

    /// True if the heap-observability plane is recording.
    pub fn heapprof_enabled(&self) -> bool {
        self.space.heapprof().is_enabled()
    }

    /// Display name for a heap-layer class tag: the loaded class's name,
    /// or the VM's array sentinels (`int[]`, `float[]`, `Object[]`).
    fn class_tag_name(&self, tag: u32) -> String {
        let id = kaffeos_heap::ClassId(tag);
        if id == kaffeos_vm::INT_ARRAY_CLASS {
            return "int[]".to_string();
        }
        if id == kaffeos_vm::FLOAT_ARRAY_CLASS {
            return "float[]".to_string();
        }
        if id == kaffeos_vm::REF_ARRAY_CLASS {
            return "Object[]".to_string();
        }
        if (tag as usize) < self.table.classes.len() {
            self.table.class(self.table.from_heap_class(id)).name.clone()
        } else {
            format!("class#{tag}")
        }
    }

    /// Allocation-site profile as folded stacks weighted by **bytes**
    /// (`pid;Class.method@bN;Class bytes` lines, sorted; empty when off).
    pub fn heapprof_folded_bytes(&self) -> String {
        self.space
            .heapprof()
            .folded_bytes(&|tag| self.class_tag_name(tag))
    }

    /// Allocation-site profile as folded stacks weighted by **object
    /// counts** (empty when off).
    pub fn heapprof_folded_objects(&self) -> String {
        self.space
            .heapprof()
            .folded_objects(&|tag| self.class_tag_name(tag))
    }

    /// The bytes-weighted allocation profile as a self-contained SVG
    /// flamegraph (empty when off).
    pub fn heapprof_flamegraph_svg(&self) -> String {
        self.space
            .heapprof()
            .flamegraph_svg(&|tag| self.class_tag_name(tag))
    }

    /// Per-site survival table: allocations vs died-young vs died-old vs
    /// tenured, as deterministic text (empty when off).
    pub fn heapprof_survival(&self) -> String {
        self.space
            .heapprof()
            .survival_text(&|tag| self.class_tag_name(tag))
    }

    /// The GC/page timeline as JSON-lines: page claim/release/promote/
    /// retag, per-collection records, and occupancy samples (empty when
    /// off).
    pub fn heapprof_timeline(&self) -> String {
        self.space.heapprof().timeline_jsonl()
    }

    /// Per-heap GC pause and minor-reclaim histograms as deterministic
    /// text (empty when off).
    pub fn heapprof_histograms(&self) -> String {
        self.space.heapprof().heap_hists_text()
    }

    /// The live cross-heap edge census: `(raw method, pc)` sites with
    /// may-cross / shared-frozen counts, sorted (empty when off). The
    /// `u32::MAX` method sentinel groups kernel/trusted stores that never
    /// execute guest bytecode.
    pub fn heapprof_census(&self) -> Vec<kaffeos_trace::CensusSite> {
        self.space.heapprof().census()
    }

    /// Deterministic whole-space heap dump as JSON-lines: a `dumpmeta`
    /// header (virtual clock, quanta, process count), one `class` line per
    /// loaded class tag, then the heap/page/object/edge walk (see
    /// `kaffeos_heap`'s dump module). Always available — a pure function
    /// of the virtual state, byte-identical across runs of the same
    /// `(program, seed)`.
    pub fn heap_dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"dumpmeta\",\"clock\":{},\"quanta\":{},\"procs\":{}}}",
            self.clock,
            self.quanta,
            self.procs.len()
        );
        for tag in 0..self.table.classes.len() as u32 {
            let _ = writeln!(
                out,
                "{{\"type\":\"class\",\"tag\":{tag},\"name\":\"{}\"}}",
                self.class_tag_name(tag)
            );
        }
        out.push_str(&self.space.dump_jsonl());
        out
    }

    /// Walked per-heap live-byte/object recounts (ground truth for
    /// reconciling dumps against accounting; always available).
    pub fn heap_recounts(&self) -> Vec<kaffeos_heap::HeapRecount> {
        self.space.recount_heaps()
    }

    /// procfs-style heap layout text for one process — the text
    /// `proc.heapinfo` serves to guests. Always available (the
    /// observability plane is not required); empty for an unknown pid.
    pub fn proc_heapinfo_text(&self, pid: Pid) -> String {
        use std::fmt::Write as _;
        let Some(idx) = self.proc_index(pid) else {
            return String::new();
        };
        let p = &self.procs[idx];
        let Ok(snap) = self.space.snapshot(p.heap) else {
            return String::new();
        };
        let mut out = String::new();
        let _ = writeln!(out, "pid:\t{}", p.pid.0);
        let _ = writeln!(out, "heap:\t{}", snap.id.index());
        let _ = writeln!(out, "label:\t{}", snap.label);
        let _ = writeln!(out, "bytes_used:\t{}", snap.bytes_used);
        let _ = writeln!(out, "objects:\t{}", snap.objects);
        let _ = writeln!(out, "pages:\t{}", snap.pages);
        let _ = writeln!(out, "nursery_pages:\t{}", snap.nursery_pages);
        let _ = writeln!(out, "remset:\t{}", snap.remset_size);
        let _ = writeln!(out, "entry_items:\t{}", snap.entry_items);
        let _ = writeln!(out, "exit_items:\t{}", snap.exit_items);
        let _ = writeln!(out, "gc_count:\t{}", snap.gc_count);
        let _ = writeln!(out, "minor_gcs:\t{}", snap.minor_gcs);
        let _ = writeln!(out, "frozen:\t{}", snap.frozen);
        out
    }

    /// procfs-style heap statistics text for one process — the text
    /// `proc.heapstats` serves to guests: the accounting counters always,
    /// plus per-allocation-site rows when the observability plane is on.
    /// Empty for an unknown pid.
    pub fn proc_heapstats_text(&self, pid: Pid) -> String {
        use std::fmt::Write as _;
        let Some(idx) = self.proc_index(pid) else {
            return String::new();
        };
        let p = &self.procs[idx];
        let Ok(snap) = self.space.snapshot(p.heap) else {
            return String::new();
        };
        let mut out = String::new();
        let _ = writeln!(out, "pid:\t{}", p.pid.0);
        let _ = writeln!(out, "bytes_used:\t{}", snap.bytes_used);
        let _ = writeln!(out, "objects:\t{}", snap.objects);
        let _ = writeln!(out, "gc_count:\t{}", snap.gc_count);
        let _ = writeln!(out, "minor_gcs:\t{}", snap.minor_gcs);
        if self.heapprof_enabled() {
            // Per-site rows for this pid, in the store's sorted site order.
            let _ = writeln!(out, "sites:");
            for ((site_pid, leaf, class), s) in self.space.heapprof().site_stats() {
                if site_pid != pid.0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  {leaf};{}\tallocs={} bytes={} died_young={} died_old={} tenured={}",
                    self.class_tag_name(class),
                    s.allocs,
                    s.bytes,
                    s.freed_minor,
                    s.freed_full,
                    s.tenured,
                );
            }
        }
        out
    }

    // ---- fault injection and auditing (the chaos-kernel harness) -----------

    /// Records an internal error the kernel degraded past instead of
    /// panicking; [`KaffeOs::audit`] reports the first one.
    fn kernel_fault(&mut self, kind: kaffeos_trace::KernelFaultKind, detail: String) {
        if self.sink.is_enabled() {
            self.sink.set_clock(self.clock);
            self.sink.emit_with(|| kaffeos_trace::Payload::KernelFault {
                kind,
                detail: detail.clone(),
            });
        }
        self.kernel_faults
            .push(kaffeos_trace::KernelFault { kind, detail });
    }

    /// Internal errors recorded by graceful degradation this run.
    pub fn kernel_faults(&self) -> &[kaffeos_trace::KernelFault] {
        &self.kernel_faults
    }

    /// Installs a fault-injection schedule. The allocation fault (if armed)
    /// is armed on the heap space immediately; the sweep/GC/illegal-write
    /// mechanisms fire from the scheduler loop.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        if let Some(fault) = plan.alloc_fault {
            self.space.set_alloc_fault(fault);
        }
        self.faults = Some(plan);
    }

    /// The installed fault plan, if any (counters reflect what has fired).
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Disarms fault injection (the plan's counters are returned).
    pub fn clear_faults(&mut self) -> Option<FaultPlan> {
        self.space.clear_alloc_fault();
        self.faults.take()
    }

    /// Fires the quantum-boundary fault mechanisms: the termination sweep
    /// and the illegal cross-heap write probe.
    fn apply_quantum_faults(&mut self) {
        let Some(mut plan) = self.faults.take() else {
            return;
        };
        if plan.kill_sweep {
            let live: Vec<Pid> = self
                .procs
                .iter()
                .filter(|p| !matches!(p.state, ProcState::Dead(_)))
                .map(|p| p.pid)
                .collect();
            if !live.is_empty() {
                let victim = live[(plan.next() % live.len() as u64) as usize];
                plan.kills_injected += 1;
                self.trace_emit(0, || kaffeos_trace::Payload::FaultInjected {
                    kind: kaffeos_trace::InjectionKind::KillSweep { victim: victim.0 },
                });
                if let Err(e) = self.kill(victim) {
                    self.kernel_fault(
                        kaffeos_trace::KernelFaultKind::Sweep,
                        format!("fault sweep: kill({victim:?}) failed: {e}"),
                    );
                }
            }
        }
        if plan.illegal_writes && self.config.barrier.enforces() && !self.config.monolithic {
            self.inject_illegal_write(&mut plan);
        }
        self.faults = Some(plan);
    }

    /// Attempts one illegal user-to-user cross-heap reference store between
    /// two seeded-chosen live processes. The write barrier must reject it
    /// with a segmentation violation; an accepted write is an audit
    /// violation. The two probe objects are unreachable garbage afterwards
    /// and are reclaimed by ordinary collection.
    fn inject_illegal_write(&mut self, plan: &mut FaultPlan) {
        let live: Vec<HeapId> = self
            .procs
            .iter()
            .filter(|p| !matches!(p.state, ProcState::Dead(_)))
            .map(|p| p.heap)
            .collect();
        if live.len() < 2 {
            return;
        }
        let a = (plan.next() % live.len() as u64) as usize;
        let b = (a + 1 + (plan.next() % (live.len() as u64 - 1)) as usize) % live.len();
        let class = self.string_class.heap_class();
        // Either allocation may fail (the armed allocation fault or a full
        // memlimit) — a failed probe is simply skipped.
        let Ok(src) = self.space.alloc_fields(live[a], class, 1) else {
            return;
        };
        let Ok(dst) = self.space.alloc_fields(live[b], class, 1) else {
            return;
        };
        plan.illegal_writes_attempted += 1;
        self.trace_emit(0, || kaffeos_trace::Payload::FaultInjected {
            kind: kaffeos_trace::InjectionKind::IllegalWrite,
        });
        match self.space.store_ref(src, 0, Value::Ref(dst), false) {
            Err(kaffeos_heap::HeapError::SegViolation(_)) => {}
            Ok(_) => {
                plan.illegal_writes_accepted += 1;
            }
            Err(e) => {
                // Any other rejection still contains the write, but means
                // the probe hit an unexpected path worth recording.
                self.kernel_fault(
                    kaffeos_trace::KernelFaultKind::Probe,
                    format!("illegal-write probe failed with a non-barrier error: {e:?}"),
                );
            }
        }
    }

    /// Re-derives every invariant the kernel's isolation and accounting
    /// story depends on, reporting the first violation:
    ///
    /// 1. the heap space's audit (entry/exit reference-count conservation,
    ///    page ownership, counter recounts, memlimit-tree conservation);
    /// 2. no internal error was degraded past during the run;
    /// 3. full reclamation: every dead process' heap is gone, its memlimit
    ///    removed, and no shared heap still charges it;
    /// 4. exact accounting: every live process' memlimit debit equals its
    ///    heap's accounted bytes plus its shared-heap charges;
    /// 5. shared-heap registry sanity: heaps alive and frozen, all sharers
    ///    live;
    /// 6. report conservation: pids map one-to-one onto process-table rows
    ///    so no [`RunReport`] row is lost or double-counted;
    /// 7. the barrier rejected every injected illegal write.
    pub fn audit(&self) -> Result<AuditReport, AuditViolation> {
        let space = self.space.audit()?;

        if let Some(fault) = self.kernel_faults.first() {
            return Err(AuditViolation::KernelFault {
                kind: fault.kind,
                detail: fault.detail.clone(),
            });
        }

        for (i, p) in self.procs.iter().enumerate() {
            if p.pid.0 as usize != i + 1 {
                return Err(AuditViolation::ReportConservation {
                    detail: format!("row {i} holds pid {:?}", p.pid),
                });
            }
            if matches!(p.state, ProcState::Dead(_)) {
                if !self.config.monolithic && self.space.heap_alive(p.heap) {
                    return Err(AuditViolation::DeadHeapSurvives { pid: p.pid });
                }
                if p.memlimit.is_some() {
                    return Err(AuditViolation::DeadMemlimitSurvives { pid: p.pid });
                }
                if let Some(name) = self.shm.charged_to(p.pid).into_iter().next() {
                    return Err(AuditViolation::DeadStillCharged { pid: p.pid, name });
                }
            } else if !self.config.monolithic {
                let Some(ml) = p.memlimit else {
                    return Err(AuditViolation::ReportConservation {
                        detail: format!("live process {:?} has no memlimit", p.pid),
                    });
                };
                let accounted = self.space.accounted_bytes(p.heap).unwrap_or(u64::MAX);
                let shm_charged: u64 = self
                    .shm
                    .charged_to(p.pid)
                    .iter()
                    .filter_map(|name| self.shm.get(name))
                    .map(|s| s.size)
                    .sum();
                let current = self.space.limits().current(ml);
                if accounted.saturating_add(shm_charged) != current {
                    return Err(AuditViolation::ProcessAccounting {
                        pid: p.pid,
                        current,
                        accounted,
                        shm_charged,
                    });
                }
            }
        }

        for (name, shm) in self.shm.iter() {
            if !self.space.heap_alive(shm.heap)
                || self.space.snapshot(shm.heap).map(|s| !s.frozen).unwrap_or(true)
            {
                return Err(AuditViolation::ShmHeapBroken { name: name.clone() });
            }
            for &sharer in &shm.sharers {
                if !self.is_alive(sharer) {
                    return Err(AuditViolation::ShmSharerDead {
                        name: name.clone(),
                        pid: sharer,
                    });
                }
            }
        }

        if let Some(plan) = &self.faults {
            if plan.illegal_writes_accepted > 0 {
                return Err(AuditViolation::IllegalWriteAccepted {
                    count: plan.illegal_writes_accepted,
                });
            }
        }

        // Code-cache conservation: every refcount in the shared cache must
        // equal the number of live attachments (dead processes detach at
        // reap), every attached key must still be resident (eviction only
        // claims refs == 0 entries; invalidation drops the attachment
        // first), and the cache's byte account must match its entries.
        {
            let mut attached: std::collections::BTreeMap<kaffeos_vm::MethodKey, u32> =
                std::collections::BTreeMap::new();
            for p in &self.procs {
                if matches!(p.state, ProcState::Dead(_)) {
                    if p.jit.attached().next().is_some() {
                        return Err(AuditViolation::CodeCache {
                            detail: format!("dead process {:?} still holds attachments", p.pid),
                        });
                    }
                    continue;
                }
                for key in p.jit.attached_keys() {
                    *attached.entry(key).or_insert(0) += 1;
                }
            }
            let mut cache_bytes = 0u64;
            let mut cached: std::collections::BTreeMap<kaffeos_vm::MethodKey, u32> =
                std::collections::BTreeMap::new();
            for (key, refs, bytes, _creator) in self.jit_cache.snapshot() {
                cached.insert(key, refs);
                cache_bytes += bytes;
            }
            for (key, n) in &attached {
                match cached.get(key) {
                    None => {
                        return Err(AuditViolation::CodeCache {
                            detail: format!("attached body {key:?} missing from cache"),
                        })
                    }
                    Some(refs) if refs != n => {
                        return Err(AuditViolation::CodeCache {
                            detail: format!(
                                "refcount drift on {key:?}: cache says {refs}, {n} attached"
                            ),
                        })
                    }
                    Some(_) => {}
                }
            }
            for (key, refs) in &cached {
                if *refs != attached.get(key).copied().unwrap_or(0) {
                    return Err(AuditViolation::CodeCache {
                        detail: format!("cache entry {key:?} has {refs} refs but no attachments"),
                    });
                }
            }
            if cache_bytes != self.jit_cache.bytes() {
                return Err(AuditViolation::CodeCache {
                    detail: format!(
                        "byte account drift: entries sum to {cache_bytes}, cache says {}",
                        self.jit_cache.bytes()
                    ),
                });
            }
        }

        let live = self
            .procs
            .iter()
            .filter(|p| !matches!(p.state, ProcState::Dead(_)))
            .count() as u64;
        Ok(AuditReport {
            space,
            processes: self.procs.len() as u64,
            live,
            dead: self.procs.len() as u64 - live,
            user_bytes_charged: self.space.limits().current(self.space.root_memlimit()),
            shared_heaps: self.shm.len() as u64,
            alloc_faults_fired: self.space.alloc_faults_fired(),
            kills_injected: self.faults.as_ref().map_or(0, |p| p.kills_injected),
            illegal_writes_attempted: self
                .faults
                .as_ref()
                .map_or(0, |p| p.illegal_writes_attempted),
        })
    }

    // ---- termination (§2, "Safe termination of processes") -----------------

    /// Requests termination of a process. User-mode threads die at their
    /// next safe point; threads inside the kernel (non-zero `kernel_depth`)
    /// die when they leave it; parked threads die immediately (they are at
    /// a safe point by construction).
    pub fn kill(&mut self, pid: Pid) -> Result<(), KernelError> {
        let idx = self.proc_index(pid).ok_or(KernelError::UnknownPid(pid))?;
        if matches!(self.procs[idx].state, ProcState::Dead(_)) {
            return Ok(());
        }
        self.trace_emit(pid.0, || kaffeos_trace::Payload::KillRequested { target: pid.0 });
        self.procs[idx].state = ProcState::Dying;
        for t in &mut self.procs[idx].threads {
            t.kill_requested = true;
        }
        if self.sink.is_enabled() {
            // Threads inside the kernel survive until they leave it: record
            // each deferral so traces show why a kill was not immediate.
            let deferred: Vec<u32> = self.procs[idx]
                .threads
                .iter()
                .filter(|t| t.kernel_depth > 0 && !matches!(t.state, ThreadState::Done))
                .map(|t| t.id)
                .collect();
            for thread in deferred {
                self.trace_emit(pid.0, || kaffeos_trace::Payload::KillDeferred {
                    target: pid.0,
                    thread,
                });
            }
        }
        // Parked / monitor-blocked threads sit at a safe point between
        // quanta: finish them now unless they are in kernel mode.
        let parked: Vec<usize> = self.procs[idx]
            .threads
            .iter()
            .enumerate()
            .filter(|(i, t)| {
                (matches!(t.state, ThreadState::Blocked(_))
                    || self.procs[idx].parked.contains_key(i))
                    && t.kernel_depth == 0
            })
            .map(|(i, _)| i)
            .collect();
        for i in parked {
            let t = &mut self.procs[idx].threads[i];
            for m in t.held_monitors.drain(..) {
                self.monitors.remove(&m);
            }
            t.frames.clear();
            t.values.clear();
            t.state = ThreadState::Done;
            self.procs[idx].parked.remove(&i);
        }
        if self.procs[idx].all_threads_done() {
            self.reap(pid, ExitStatus::Killed);
        }
        Ok(())
    }

    /// Reclaims a finished process: credits its shared-heap charges, merges
    /// its heap into the kernel heap (full reclamation, §2), removes its
    /// memlimit, and wakes waiters.
    fn reap(&mut self, pid: Pid, status: ExitStatus) {
        let Some(idx) = self.proc_index(pid) else {
            self.kernel_fault(
                kaffeos_trace::KernelFaultKind::Reap,
                format!("reap of unknown pid {pid:?}"),
            );
            return;
        };
        debug_assert!(!matches!(self.procs[idx].state, ProcState::Dead(_)));

        // Release any monitors still held by (now dead) threads.
        let held: Vec<ObjRef> = self.procs[idx]
            .threads
            .iter_mut()
            .flat_map(|t| t.held_monitors.drain(..).collect::<Vec<_>>())
            .collect();
        for m in held {
            self.monitors.remove(&m);
        }

        // Credit the shared-heap charges ("sharers do not have to be
        // charged asynchronously if another sharer exits").
        let charged = self.shm.charged_to(pid);
        for name in charged {
            if let Some(size) = self.shm.remove_sharer(&name, pid) {
                self.trace_emit(pid.0, || kaffeos_trace::Payload::ShmDetached {
                    name: name.clone(),
                });
                if let Some(ml) = self.procs[idx].memlimit {
                    if let Err(e) = self.space.limits_mut().credit(ml, size) {
                        self.kernel_fault(
                            kaffeos_trace::KernelFaultKind::ShmCredit,
                            format!("reap {pid:?}: shm charge for {name} was not debited: {e:?}"),
                        );
                    }
                }
            }
        }

        if !self.config.monolithic {
            // Merge the heap; everything unreachable becomes kernel garbage
            // collected by the next kernel GC cycle.
            let heap = self.procs[idx].heap;
            // Per-tenant heap telemetry: snapshot the dying heap before the
            // merge erases it, so tenant reports can say what each tenant's
            // processes left behind and how much collection they ran.
            if let Some(tenant) = self.procs[idx].tenant {
                if let Ok(snap) = self.space.snapshot(heap) {
                    if let Some(st) = self.tenants.get_mut(tenant.0 as usize) {
                        st.stats.heap_bytes_reaped += snap.bytes_used;
                        st.stats.heap_objects_reaped += snap.objects;
                        st.stats.heap_gcs += snap.gc_count;
                        st.stats.heap_minor_gcs += snap.minor_gcs;
                    }
                }
            }
            if self.sink.is_enabled() {
                // The merge emits heap-layer events stamped with the sink
                // clock; make sure it reads the pre-merge kernel clock.
                self.sink.set_clock(self.clock);
                self.sink.set_pid(pid.0);
            }
            self.space.heapprof().set_context(pid.0, self.clock);
            match self.space.merge_into_kernel(heap) {
                Ok(report) => {
                    self.kernel_cpu.gc += report.cycles;
                    self.clock += report.cycles;
                }
                Err(e) => {
                    self.kernel_fault(
                        kaffeos_trace::KernelFaultKind::HeapMerge,
                        format!("reap {pid:?}: heap merge failed: {e:?}"),
                    );
                }
            }
            if self.sink.is_enabled() {
                // Credits from removing the memlimit happen after the merge
                // advanced the clock.
                self.sink.set_clock(self.clock);
            }
            if let Some(ml) = self.procs[idx].memlimit {
                if let Err(e) = self.space.limits_mut().drain_and_remove(ml) {
                    self.kernel_fault(
                        kaffeos_trace::KernelFaultKind::MemlimitRemove,
                        format!("reap {pid:?}: memlimit not removable after merge: {e:?}"),
                    );
                }
            }
            self.procs[idx].memlimit = None;
        }

        // Class unloading: the dead process' namespace stops resolving
        // (shared classes are unaffected; monolithic mode shares one
        // namespace, which must outlive any single guest).
        if !self.config.monolithic {
            self.table.drop_namespace(self.procs[idx].ns);
        }
        self.procs[idx].statics.clear();
        self.procs[idx].intern.clear();
        self.procs[idx].parked.clear();
        // Detach compiled bodies from the shared cache. Entries stay
        // resident at refcount zero (warm cache — the ShareJIT payoff: a
        // respawned process re-attaches without recompiling); eviction only
        // reclaims them under byte pressure.
        for key in self.procs[idx].jit.attached_keys() {
            self.jit_cache.detach(&key);
        }
        self.procs[idx].jit.bodies.clear();
        self.procs[idx].jit.counters.clear();
        let status = if self.procs[idx].cpu_overrun && status == ExitStatus::Killed {
            ExitStatus::CpuLimitExceeded
        } else {
            status
        };
        self.procs[idx].state = ProcState::Dead(status.clone());

        // Wake waiters with the exit code.
        let waiters = std::mem::take(&mut self.procs[idx].waiters);
        let code = status.wait_code();
        self.trace_emit(pid.0, || kaffeos_trace::Payload::Exit {
            kind: match &status {
                ExitStatus::Exited(_) => kaffeos_trace::ExitKind::Exited,
                ExitStatus::Killed => kaffeos_trace::ExitKind::Killed,
                ExitStatus::CpuLimitExceeded => kaffeos_trace::ExitKind::CpuLimitExceeded,
                ExitStatus::UncaughtException { .. } => kaffeos_trace::ExitKind::UncaughtException,
            },
            code,
        });
        for (wpid, wtidx) in waiters {
            if let Some(widx) = self.proc_index(wpid) {
                if matches!(self.procs[widx].state, ProcState::Dead(_)) {
                    continue;
                }
                self.procs[widx].parked.remove(&wtidx);
                let t = &mut self.procs[widx].threads[wtidx];
                t.kernel_depth = t.kernel_depth.saturating_sub(1);
                t.resume_with(Some(Value::Int(code)));
                self.run_queue.push_back((wpid, wtidx));
            }
        }

        // Tenant bookkeeping: free the admission slot, classify the exit,
        // and (for supervised tenants) schedule a backed-off restart.
        self.tenant_note_exit(idx, &status);
    }

    // ---- tenancy: admission, restarts, degradation (§4.2) -------------------

    /// Creates a tenant with the given policy and returns its id. Tenants
    /// are never destroyed; ids are dense and stable.
    pub fn create_tenant(&mut self, name: &str, policy: TenantPolicy) -> TenantId {
        let id = TenantId(self.tenants.len() as u32);
        self.tenants.push(TenantState::new(id, name.to_string(), policy));
        id
    }

    /// Installs (or clears) the machine-wide graceful-degradation policy.
    pub fn set_overload_policy(&mut self, policy: Option<OverloadPolicy>) {
        self.overload = policy;
    }

    /// Spawns a process for a tenant through admission control: below the
    /// cap the spawn happens immediately; at the cap it queues FIFO if the
    /// queue has room; otherwise it is rejected with a typed error. A shed
    /// tenant or an open circuit breaker rejects outright.
    pub fn spawn_for_tenant(
        &mut self,
        tenant: TenantId,
        image: &str,
        args: &str,
        opts: SpawnOpts,
    ) -> Result<Admission, KernelError> {
        let ti = tenant.0 as usize;
        if ti >= self.tenants.len() {
            return Err(KernelError::UnknownTenant(tenant));
        }
        self.tenants[ti].stats.offered += 1;
        if self.tenants[ti].shed {
            self.tenants[ti].stats.rejected_shed += 1;
            self.trace_emit(0, || kaffeos_trace::Payload::TenantRejected {
                tenant: tenant.0,
                reason: "shed",
            });
            return Err(KernelError::AdmissionShed { tenant });
        }
        if let Some(until) = self.tenants[ti].breaker_open_until {
            if self.clock < until {
                self.tenants[ti].stats.rejected_breaker += 1;
                self.trace_emit(0, || kaffeos_trace::Payload::TenantRejected {
                    tenant: tenant.0,
                    reason: "breaker_open",
                });
                return Err(KernelError::AdmissionBreakerOpen { tenant, until });
            }
            self.tenants[ti].breaker_open_until = None;
            self.trace_emit(0, || kaffeos_trace::Payload::BreakerClosed { tenant: tenant.0 });
        }
        let live = self.tenants[ti].live.len() as u32;
        let cap = self.tenants[ti].policy.max_procs;
        if live < cap {
            let mut opts = opts;
            opts.tenant = Some(tenant);
            let pid = self.spawn_with(image, args, opts)?;
            let st = &mut self.tenants[ti];
            st.live.push(pid);
            st.stats.admitted += 1;
            self.trace_emit(pid.0, || kaffeos_trace::Payload::TenantAdmitted {
                tenant: tenant.0,
                child: pid.0,
            });
            return Ok(Admission::Admitted(pid));
        }
        let st = &mut self.tenants[ti];
        if st.queue.len() < st.policy.queue_capacity {
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            st.queue.push_back(QueuedSpawn {
                ticket,
                image: image.to_string(),
                args: args.to_string(),
                opts,
            });
            st.stats.queued += 1;
            self.trace_emit(0, || kaffeos_trace::Payload::TenantQueued {
                tenant: tenant.0,
                ticket,
            });
            return Ok(Admission::Queued { ticket });
        }
        st.stats.rejected_cap += 1;
        self.trace_emit(0, || kaffeos_trace::Payload::TenantRejected {
            tenant: tenant.0,
            reason: "at_cap",
        });
        Err(KernelError::AdmissionRejected { tenant, live, cap })
    }

    /// Reap-time tenant bookkeeping: frees the admission slot, feeds the
    /// circuit breaker, and schedules a supervised restart for failures.
    fn tenant_note_exit(&mut self, idx: usize, status: &ExitStatus) {
        let Some(tenant) = self.procs[idx].tenant else {
            return;
        };
        let ti = tenant.0 as usize;
        if ti >= self.tenants.len() {
            return;
        }
        let pid = self.procs[idx].pid;
        let cause = status.cause();
        let clock = self.clock;
        let st = &mut self.tenants[ti];
        st.live.retain(|&p| p != pid);
        st.stats.exits.note(cause);
        if !cause.is_failure() {
            st.consecutive_failures = 0;
            return;
        }
        let rp = st.policy.restart;
        if !st.shed && rp.breaker_threshold > 0 {
            // Kill-storm circuit breaker: count failures in a sliding
            // virtual-time window (sheds are policy, not storms — they
            // never feed the breaker).
            st.failure_times.push_back(clock);
            while st
                .failure_times
                .front()
                .is_some_and(|&f| clock.saturating_sub(f) > rp.breaker_window)
            {
                st.failure_times.pop_front();
            }
            if st.breaker_open_until.is_none()
                && st.failure_times.len() as u32 >= rp.breaker_threshold
            {
                let until = clock.saturating_add(rp.breaker_cooldown);
                st.breaker_open_until = Some(until);
                st.stats.breaker_opens += 1;
                st.failure_times.clear();
                self.trace_emit(pid.0, || kaffeos_trace::Payload::BreakerOpened {
                    tenant: tenant.0,
                    until,
                });
            }
        }
        if rp.restart_on_failure {
            let image = self.procs[idx].image.clone();
            let args = self.procs[idx].spawn_args.clone();
            let opts = self.procs[idx].spawn_opts;
            self.tenant_schedule_restart(ti, image, args, opts);
        }
    }

    /// Schedules one supervised restart with the next backoff step, or
    /// abandons supervision past `max_restarts`.
    fn tenant_schedule_restart(&mut self, ti: usize, image: String, args: String, opts: SpawnOpts) {
        let clock = self.clock;
        let st = &mut self.tenants[ti];
        st.consecutive_failures += 1;
        let attempt = st.consecutive_failures;
        let rp = st.policy.restart;
        if attempt > rp.max_restarts {
            st.stats.restarts_abandoned += 1;
            return;
        }
        let due = clock.saturating_add(rp.backoff_delay(attempt));
        let log_index = st.restart_log.len();
        st.restart_log.push(RestartRecord {
            image: image.clone(),
            attempt,
            scheduled_at: clock,
            due,
            launched_at: None,
            pid: None,
        });
        st.pending_restarts.push_back(PendingRestart {
            image,
            args,
            opts,
            attempt,
            due,
            log_index,
        });
        let tid = st.id.0;
        self.trace_emit(0, || kaffeos_trace::Payload::RestartScheduled {
            tenant: tid,
            attempt,
            due,
        });
    }

    /// One tenant-policy step, run between quanta: applies degradation
    /// watermarks, closes elapsed breakers, launches due restarts, and
    /// drains admission queues into freed slots — all in tenant-id / FIFO
    /// order, driven purely by the virtual clock.
    fn tenant_tick(&mut self) {
        if self.tenants.is_empty() {
            return;
        }
        self.apply_overload_shedding();
        for ti in 0..self.tenants.len() {
            if let Some(until) = self.tenants[ti].breaker_open_until {
                if self.clock >= until {
                    self.tenants[ti].breaker_open_until = None;
                    let tid = self.tenants[ti].id.0;
                    self.trace_emit(0, || kaffeos_trace::Payload::BreakerClosed { tenant: tid });
                }
            }
            // Launch due restarts, oldest first.
            loop {
                let st = &self.tenants[ti];
                if st.shed || st.breaker_open_until.is_some() {
                    break;
                }
                let Some(pr) = st.pending_restarts.front() else {
                    break;
                };
                if pr.due > self.clock || st.live.len() as u32 >= st.policy.max_procs {
                    break;
                }
                let Some(pr) = self.tenants[ti].pending_restarts.pop_front() else {
                    break;
                };
                self.tenant_launch_restart(ti, pr);
            }
            // Drain queued admissions into free slots, ticket order.
            loop {
                let st = &self.tenants[ti];
                if st.shed
                    || st.breaker_open_until.is_some()
                    || st.queue.is_empty()
                    || st.live.len() as u32 >= st.policy.max_procs
                {
                    break;
                }
                let Some(q) = self.tenants[ti].queue.pop_front() else {
                    break;
                };
                let tenant = self.tenants[ti].id;
                let mut opts = q.opts;
                opts.tenant = Some(tenant);
                match self.spawn_with(&q.image, &q.args, opts) {
                    Ok(pid) => {
                        let at = self.clock;
                        let st = &mut self.tenants[ti];
                        st.live.push(pid);
                        st.stats.admitted += 1;
                        self.tenant_launches.push(TenantLaunch {
                            tenant,
                            ticket: Some(q.ticket),
                            pid,
                            at,
                        });
                        self.trace_emit(pid.0, || kaffeos_trace::Payload::TenantAdmitted {
                            tenant: tenant.0,
                            child: pid.0,
                        });
                    }
                    Err(_) => {
                        // The spawn itself failed (e.g. an injected
                        // allocation fault): drop the request, count it.
                        self.tenants[ti].stats.spawn_failures += 1;
                        self.trace_emit(0, || kaffeos_trace::Payload::TenantRejected {
                            tenant: tenant.0,
                            reason: "spawn_failed",
                        });
                    }
                }
            }
        }
    }

    /// Launches one due restart; a failed respawn re-enters the backoff
    /// ladder as one more consecutive failure.
    fn tenant_launch_restart(&mut self, ti: usize, pr: PendingRestart) {
        let tenant = self.tenants[ti].id;
        let mut opts = pr.opts;
        opts.tenant = Some(tenant);
        match self.spawn_with(&pr.image, &pr.args, opts) {
            Ok(pid) => {
                let at = self.clock;
                let st = &mut self.tenants[ti];
                st.live.push(pid);
                st.stats.restarts += 1;
                if let Some(rec) = st.restart_log.get_mut(pr.log_index) {
                    rec.launched_at = Some(at);
                    rec.pid = Some(pid);
                }
                self.tenant_launches.push(TenantLaunch {
                    tenant,
                    ticket: None,
                    pid,
                    at,
                });
                let attempt = pr.attempt;
                self.trace_emit(pid.0, || kaffeos_trace::Payload::RestartLaunched {
                    tenant: tenant.0,
                    child: pid.0,
                    attempt,
                });
            }
            Err(_) => {
                self.tenant_schedule_restart(ti, pr.image, pr.args, pr.opts);
            }
        }
    }

    /// Graceful degradation: past the high watermark, shed the lowest-
    /// priority unshed tenant (ties break toward the younger id) — kill
    /// its processes, hold its restarts, reject its admissions. One shed
    /// per tick, and never while a previous shed is still draining, so
    /// pressure relief is observed before the next victim is chosen.
    /// Below the low watermark, restore every shed tenant.
    fn apply_overload_shedding(&mut self) {
        let Some(pol) = self.overload else {
            return;
        };
        let used = self.space.limits().current(self.space.root_memlimit());
        if used >= pol.shed_high_bytes {
            let draining = self.tenants.iter().any(|st| st.shed && !st.live.is_empty());
            if draining {
                return;
            }
            let victim = (0..self.tenants.len())
                .filter(|&ti| !self.tenants[ti].shed)
                .min_by_key(|&ti| (self.tenants[ti].policy.priority, std::cmp::Reverse(ti)));
            let Some(ti) = victim else {
                return;
            };
            self.tenants[ti].shed = true;
            self.tenants[ti].stats.sheds += 1;
            let tid = self.tenants[ti].id.0;
            self.trace_emit(0, || kaffeos_trace::Payload::TenantShed { tenant: tid });
            for pid in self.tenants[ti].live.clone() {
                let _ = self.kill(pid);
            }
        } else if used <= pol.shed_low_bytes {
            for ti in 0..self.tenants.len() {
                if self.tenants[ti].shed {
                    self.tenants[ti].shed = false;
                    let tid = self.tenants[ti].id.0;
                    self.trace_emit(0, || kaffeos_trace::Payload::TenantRestored { tenant: tid });
                }
            }
        }
    }

    /// Earliest virtual cycle at which the tenant engine has timed work
    /// (a pending restart coming due, a breaker cooldown ending with work
    /// waiting behind it), for the scheduler's idle fast-forward. `None`
    /// when no tenants exist, so untenanted kernels behave bit-identically
    /// to before the engine existed.
    fn next_tenant_wake(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        for st in &self.tenants {
            if st.shed {
                // Nothing clock-driven unsheds a tenant; skip it.
                continue;
            }
            let gate = st.breaker_open_until.unwrap_or(0);
            for pr in &st.pending_restarts {
                let t = pr.due.max(gate);
                // A restart already due but held by the process cap is not
                // clock-driven — a future exit unblocks it, not time.
                if t > self.clock {
                    best = Some(best.map_or(t, |b: u64| b.min(t)));
                }
            }
            if !st.queue.is_empty() && gate > self.clock {
                // Queued admissions blocked only by the breaker launch at
                // cooldown end.
                best = Some(best.map_or(gate, |b: u64| b.min(gate)));
            }
        }
        best
    }

    /// The name a tenant was created with.
    pub fn tenant_name(&self, tenant: TenantId) -> Option<&str> {
        self.tenants.get(tenant.0 as usize).map(|st| st.name.as_str())
    }

    /// Tenant stats, or `None` for an unknown tenant.
    pub fn tenant_stats(&self, tenant: TenantId) -> Option<&TenantStats> {
        self.tenants.get(tenant.0 as usize).map(|st| &st.stats)
    }

    /// Every scheduled restart of a tenant, in scheduling order (empty
    /// for unknown tenants).
    pub fn tenant_restart_log(&self, tenant: TenantId) -> &[RestartRecord] {
        self.tenants
            .get(tenant.0 as usize)
            .map(|st| st.restart_log.as_slice())
            .unwrap_or(&[])
    }

    /// Live pids currently accounted to a tenant, in admission order.
    pub fn tenant_live_pids(&self, tenant: TenantId) -> Vec<Pid> {
        self.tenants
            .get(tenant.0 as usize)
            .map(|st| st.live.clone())
            .unwrap_or_default()
    }

    /// Depth of a tenant's admission queue.
    pub fn tenant_queue_len(&self, tenant: TenantId) -> usize {
        self.tenants
            .get(tenant.0 as usize)
            .map(|st| st.queue.len())
            .unwrap_or(0)
    }

    /// The tenant a process is accounted to, if any.
    pub fn tenant_of(&self, pid: Pid) -> Option<TenantId> {
        self.proc_index(pid).and_then(|i| self.procs[i].tenant)
    }

    /// `Some(until)` while a tenant's circuit breaker is open.
    pub fn tenant_breaker_open_until(&self, tenant: TenantId) -> Option<u64> {
        self.tenants
            .get(tenant.0 as usize)
            .and_then(|st| st.breaker_open_until)
    }

    /// True while a tenant is shed under graceful degradation.
    pub fn tenant_is_shed(&self, tenant: TenantId) -> bool {
        self.tenants
            .get(tenant.0 as usize)
            .is_some_and(|st| st.shed)
    }

    /// Drains the launches the tenant engine performed on its own (queued
    /// admissions resolving, supervised restarts), in launch order.
    pub fn drain_tenant_launches(&mut self) -> Vec<TenantLaunch> {
        std::mem::take(&mut self.tenant_launches)
    }

    /// Advances the idle virtual clock to `t` (no-op if already past):
    /// the embedder's analogue of the scheduler's own idle fast-forward,
    /// for open-loop drivers that inject work at future arrival times.
    pub fn advance_clock_to(&mut self, t: u64) {
        self.clock = self.clock.max(t);
    }

    // ---- garbage collection -------------------------------------------------

    /// Collects one process' heap, charging the cycles to that process
    /// (§2: GC time is attributed to the process whose heap is collected).
    pub fn gc_process(&mut self, pid: Pid) -> Result<kaffeos_heap::GcReport, KernelError> {
        let idx = self.proc_index(pid).ok_or(KernelError::UnknownPid(pid))?;
        let roots = self.procs[idx].all_roots();
        let heap = self.procs[idx].heap;
        let scan: u64 = self.procs[idx]
            .threads
            .iter()
            .map(|t| t.stack_scan_size())
            .sum::<u64>()
            * costs::GC_STACK_SCAN_PER_SLOT;
        if self.sink.is_enabled() {
            // Heap-layer GC events are stamped with the sink clock.
            self.sink.set_clock(self.clock);
            self.sink.set_pid(pid.0);
        }
        self.space.heapprof().set_context(pid.0, self.clock);
        let report = self.space.gc(heap, &roots)?;
        self.procs[idx].cpu.gc += report.cycles + scan;
        self.clock += report.cycles + scan;
        if self.sink.is_enabled() {
            self.sink.set_clock(self.clock);
        }
        // Kernel-initiated collections (the `sys.gc` path, embedder calls)
        // have no single running thread to walk; the whole pause lands
        // under the synthetic `[gc]` frame. Together with the quantum
        // boundary's GC share this covers every `cpu.gc` increment, so the
        // profiler's per-pid GC totals reconcile exactly.
        if self.profile.is_enabled() {
            let pause = report.cycles + scan;
            self.profile.with(|p| {
                let frame = p.intern("[gc]");
                p.add_sample(pid.0, vec![frame], pause, SampleKind::Gc);
            });
        }
        // Sharer release: if this process no longer holds exit items into a
        // charged shared heap, credit it (§2: "After the process garbage
        // collects the last exit item to a shared heap, that shared heap's
        // memory is credited to the sharer's budget").
        let charged = self.shm.charged_to(pid);
        for name in charged {
            let Some(shm_heap) = self.shm.get(&name).map(|s| s.heap) else {
                continue;
            };
            let still_referencing = self
                .space
                .exit_item_count(heap)
                .map(|_| self.heap_references_heap(heap, shm_heap))
                .unwrap_or(false);
            if !still_referencing {
                if let Some(size) = self.shm.remove_sharer(&name, pid) {
                    self.trace_emit(pid.0, || kaffeos_trace::Payload::ShmDetached {
                        name: name.clone(),
                    });
                    if let Some(ml) = self.procs[idx].memlimit {
                        self.space
                            .limits_mut()
                            .credit(ml, size)
                            .map_err(|_| KernelError::Internal("shm charge was not debited"))?;
                    }
                }
            }
        }
        Ok(report)
    }

    /// **Minor** (nursery-only) collection of one process' heap: scans the
    /// heap's nursery pages plus its remembered set, promoting survivors —
    /// a cheap way for an embedder to trim allocation churn between full
    /// collections.
    ///
    /// Host-plane only, deliberately asymmetric to [`gc_process`]: no
    /// modelled cycles are charged, the virtual clock does not advance, and
    /// no trace events or profile samples are recorded (beyond the real
    /// memlimit credits for reclaimed bytes). The modelled kernel never
    /// calls this itself — the scheduler's GC points remain full
    /// collections — so Figure 3/4 and Table 1 outputs are unaffected by
    /// whether an embedder uses it.
    ///
    /// [`gc_process`]: KaffeOs::gc_process
    pub fn minor_gc_process(&mut self, pid: Pid) -> Result<kaffeos_heap::MinorGcReport, KernelError> {
        let idx = self.proc_index(pid).ok_or(KernelError::UnknownPid(pid))?;
        let roots = self.procs[idx].all_roots();
        let heap = self.procs[idx].heap;
        self.space.heapprof().set_context(pid.0, self.clock);
        Ok(self.space.gc_minor(heap, &roots)?)
    }

    fn heap_references_heap(&self, from: HeapId, to: HeapId) -> bool {
        // An exit item in `from` whose target lives on `to`.
        self.space.heap_exits_into(from, to)
    }

    /// One kernel GC cycle: merge orphaned shared heaps, then collect the
    /// kernel heap. Charged to the system, not to any process.
    pub fn kernel_gc(&mut self) -> kaffeos_heap::GcReport {
        // "The kernel garbage collector checks for orphaned shared heaps at
        // the beginning of each GC cycle and merges them into the kernel
        // heap" (§2).
        for name in self.shm.orphans() {
            if let Some(shm) = self.shm.remove(&name) {
                self.trace_emit(0, || kaffeos_trace::Payload::ShmOrphaned {
                    name: name.clone(),
                });
                if self.space.heap_alive(shm.heap) {
                    if self.sink.is_enabled() {
                        self.sink.set_clock(self.clock);
                        self.sink.set_pid(0);
                    }
                    self.space.heapprof().set_context(0, self.clock);
                    match self.space.merge_into_kernel(shm.heap) {
                        Ok(report) => {
                            self.kernel_cpu.gc += report.cycles;
                            self.clock += report.cycles;
                        }
                        Err(e) => {
                            self.kernel_fault(
                                kaffeos_trace::KernelFaultKind::OrphanMerge,
                                format!(
                                    "kernel_gc: orphan shared-heap merge of {name} failed: {e:?}"
                                ),
                            );
                        }
                    }
                }
            }
        }
        // Kernel heap roots: live shared-heap objects pinned by the
        // registry are on *shared* heaps, not the kernel heap, so the
        // kernel heap is collected with no external roots.
        let kernel = self.space.kernel_heap();
        if self.sink.is_enabled() {
            self.sink.set_clock(self.clock);
            self.sink.set_pid(0);
        }
        self.space.heapprof().set_context(0, self.clock);
        let report = match self.space.gc(kernel, &[]) {
            Ok(report) => report,
            Err(e) => {
                self.kernel_fault(
                    kaffeos_trace::KernelFaultKind::KernelGc,
                    format!("kernel_gc: kernel heap collection failed: {e:?}"),
                );
                kaffeos_heap::GcReport {
                    heap: kernel,
                    charged_to: ProcTag(0),
                    cycles: 0,
                    objects_freed: 0,
                    bytes_freed: 0,
                    objects_live: 0,
                    exit_items_freed: 0,
                    roots: 0,
                }
            }
        };
        self.kernel_cpu.gc += report.cycles;
        self.clock += report.cycles;
        self.last_kernel_gc = self.clock;
        report
    }

    // ---- the scheduler --------------------------------------------------------

    /// Runs until every process has exited, the run queue drains, or the
    /// clock passes `deadline` cycles (if given). Returns the run report.
    pub fn run(&mut self, deadline: Option<u64>) -> RunReport {
        self.run_inner(deadline, false)
    }

    /// Like [`KaffeOs::run`], but also returns as soon as any process
    /// exits — exact observation of crash events for restart policies.
    pub fn run_until_exit(&mut self, deadline: Option<u64>) -> RunReport {
        self.run_inner(deadline, true)
    }

    fn run_inner(&mut self, deadline: Option<u64>, stop_on_exit: bool) -> RunReport {
        let mut deadlocked = false;
        let dead_at_entry = self
            .procs
            .iter()
            .filter(|p| matches!(p.state, ProcState::Dead(_)))
            .count();
        loop {
            if stop_on_exit {
                let dead_now = self
                    .procs
                    .iter()
                    .filter(|p| matches!(p.state, ProcState::Dead(_)))
                    .count();
                if dead_now > dead_at_entry {
                    break;
                }
            }
            if let Some(deadline) = deadline {
                if self.clock >= deadline {
                    break;
                }
            }
            // Tenant policy step: shedding watermarks, breaker cooldowns,
            // due restarts, queued admissions. Exact no-op without tenants.
            self.tenant_tick();
            self.wake_unblocked();
            let Some((pid, tidx)) = self.run_queue.pop_front() else {
                // Nothing runnable. If the only sleepers are timed events
                // (paced sends, pending tenant restarts), fast-forward the
                // virtual clock to the earliest wake-up — waiting costs
                // wall time but no CPU.
                let wake = match (self.next_timed_wake(), self.next_tenant_wake()) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                if let Some(t) = wake {
                    if let Some(deadline) = deadline {
                        if t >= deadline {
                            self.clock = deadline;
                            break;
                        }
                    }
                    self.clock = self.clock.max(t);
                    continue;
                }
                // Otherwise: threads parked with no way to wake is a
                // deadlock.
                deadlocked = self.procs.iter().any(|p| {
                    !matches!(p.state, ProcState::Dead(_))
                        && p.threads.iter().enumerate().any(|(i, t)| {
                            matches!(t.state, ThreadState::Blocked(_)) || p.parked.contains_key(&i)
                        })
                });
                break;
            };
            let Some(idx) = self.proc_index(pid) else {
                continue;
            };
            if matches!(self.procs[idx].state, ProcState::Dead(_)) {
                continue;
            }
            if self.procs[idx].threads[tidx].state == ThreadState::Done {
                continue;
            }
            if self.clock.saturating_sub(self.last_kernel_gc) >= self.config.kernel_gc_period {
                self.kernel_gc();
            }
            self.quanta += 1;
            let exit = self.run_quantum(idx, tidx);
            self.dispatch_exit(pid, tidx, exit);
            self.enforce_cpu_limit(pid);
            self.apply_quantum_faults();
        }
        self.report(deadlocked)
    }

    /// Promotes monitor-blocked threads whose monitor became free, and
    /// timed parks (paced `net.send`s) whose wake time has passed.
    fn wake_unblocked(&mut self) {
        for idx in 0..self.procs.len() {
            if matches!(self.procs[idx].state, ProcState::Dead(_)) {
                continue;
            }
            let pid = self.procs[idx].pid;
            for tidx in 0..self.procs[idx].threads.len() {
                if let ThreadState::Blocked(obj) = self.procs[idx].threads[tidx].state {
                    let free = !self.monitors.contains_key(&obj);
                    if free {
                        self.procs[idx].threads[tidx].state = ThreadState::Runnable;
                        self.run_queue.push_back((pid, tidx));
                    }
                }
            }
            let mut due: Vec<(usize, i64)> = self.procs[idx]
                .parked
                .iter()
                .filter_map(|(&tidx, reason)| match reason {
                    ParkReason::Until(t, result) if *t <= self.clock => {
                        Some((tidx, *result))
                    }
                    _ => None,
                })
                .collect();
            // `parked` is a HashMap; sort so wake order (and therefore the
            // run queue and every trace) is deterministic.
            due.sort_unstable_by_key(|&(tidx, _)| tidx);
            for (tidx, result) in due {
                self.procs[idx].parked.remove(&tidx);
                self.procs[idx].threads[tidx].resume_with(Some(Value::Int(result)));
                self.run_queue.push_back((pid, tidx));
            }
        }
    }

    /// Earliest timed-park wake-up across live processes, if any.
    fn next_timed_wake(&self) -> Option<u64> {
        self.procs
            .iter()
            .filter(|p| !matches!(p.state, ProcState::Dead(_)))
            .flat_map(|p| p.parked.values())
            .filter_map(|r| match r {
                ParkReason::Until(t, _) => Some(*t),
                _ => None,
            })
            .min()
    }

    /// Executes one time slice of one thread.
    fn run_quantum(&mut self, idx: usize, tidx: usize) -> RunExit {
        let pid_u32 = self.procs[idx].pid.0;
        let thread_id = self.procs[idx].threads[tidx].id;
        // Stamps the sink with the quantum-start clock; heap events emitted
        // while the guest runs carry this timestamp (the kernel clock only
        // advances when the quantum's cycles are drained below).
        self.trace_emit(pid_u32, || kaffeos_trace::Payload::QuantumStart {
            thread: thread_id,
        });
        // Heap-observability context: records emitted while the guest runs
        // (allocs, barrier census, GC retries) carry the quantum-start
        // clock, the same convention the trace sink uses.
        self.space.heapprof().set_context(pid_u32, self.clock);
        // Extra GC roots: other threads of the heap-sharing group. In
        // KaffeOS mode that is the process' other threads; in monolithic
        // mode every thread of every process shares the heap (that very
        // scan is part of what isolation buys you).
        let (extra, extra_scan_slots): (Vec<ObjRef>, u64) = if self.config.monolithic {
            let roots = self
                .procs
                .iter()
                .flat_map(|p| p.threads.iter().flat_map(|t| t.stack_roots()))
                .collect();
            let slots = self
                .procs
                .iter()
                .flat_map(|p| p.threads.iter().map(|t| t.stack_scan_size()))
                .sum();
            (roots, slots)
        } else {
            let roots = self.procs[idx]
                .threads
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != tidx)
                .flat_map(|(_, t)| t.stack_roots())
                .collect();
            let slots = self.procs[idx]
                .threads
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != tidx)
                .map(|(_, t)| t.stack_scan_size())
                .sum();
            (roots, slots)
        };
        let engine = self.config.engine;
        // Weighted round-robin: a process' quantum is proportional to its
        // CPU share, giving coarse proportional CPU scheduling.
        let time_slice = self.config.time_slice * self.procs[idx].cpu_share as u64 / 100;
        let heap = self.procs[idx].heap;
        let ns = self.procs[idx].ns;
        let monolithic = self.config.monolithic;

        let jit_enabled = self.config.jit.enabled;
        let jit_threshold = self.config.jit.threshold;
        let proc = &mut self.procs[idx];
        let threads = &mut proc.threads;
        let (statics, intern) = if monolithic {
            (&mut self.mono_statics, &mut self.mono_intern)
        } else {
            (&mut proc.statics, &mut proc.intern)
        };
        let thread = &mut threads[tidx];
        // The JIT runtime borrows the per-process state and the shared
        // cache together; `None` keeps the tier fully out of the loop.
        let jit = jit_enabled.then_some(kaffeos_vm::JitRt {
            proc: &mut proc.jit,
            cache: &mut self.jit_cache,
            threshold: jit_threshold,
            pid: pid_u32,
        });
        let mut ctx = ExecCtx {
            space: &mut self.space,
            table: &self.table,
            ns,
            heap,
            trusted: false,
            engine,
            statics,
            intern,
            string_class: self.string_class,
            monitors: &mut self.monitors,
            extra_roots: &extra,
            extra_scan_slots,
            gc_every_safepoint: self
                .faults
                .as_ref()
                .is_some_and(|plan| plan.gc_every_safepoint),
            jit,
        };
        let granted = time_slice.max(1);
        let exit = step(thread, &mut ctx, granted);
        let drained = thread.drain_cycles();
        self.ops_executed += core::mem::take(&mut thread.ops);
        self.seg_sites.append(&mut thread.seg_sites);
        let devirt_calls = core::mem::take(&mut thread.devirt_calls);
        let monitors_elided = core::mem::take(&mut thread.monitors_elided);
        // Stack walk for the profiler, taken at the quantum boundary —
        // exactly where the drained cycles stopped accruing. Gated so a
        // disabled profiler allocates nothing.
        let sampled_stack = self
            .profile
            .is_enabled()
            .then(|| thread.sample_stack());
        let proc = &mut self.procs[idx];
        proc.cpu.exec += drained.exec();
        proc.cpu.gc += drained.gc;
        proc.devirt_calls += devirt_calls;
        proc.monitors_elided += monitors_elided;
        self.clock += drained.total;
        if self.sink.is_enabled() {
            // QuantumEnd keeps the quantum-*start* timestamp still on the
            // sink; the Chrome exporter computes the end as `at + cycles`
            // (stamping the advanced clock would double-count the quantum).
            self.sink.set_pid(pid_u32);
            self.sink.emit_with(|| kaffeos_trace::Payload::QuantumEnd {
                thread: thread_id,
                cycles: drained.total,
                gc_cycles: drained.gc,
            });
            self.sink.set_clock(self.clock);
        }
        if let Some(stack) = sampled_stack {
            let table = &self.table;
            self.profile.with(|p| {
                let frames = resolve_frames(p, table, &stack);
                p.record_quantum_jitter(granted.abs_diff(drained.total));
                if drained.gc > 0 {
                    // The GC share gets its own sample under a synthetic
                    // leaf, so flamegraphs separate mutator time from the
                    // collections the same stack triggered.
                    let gc_leaf = p.intern("[gc]");
                    let mut gc_frames = frames.clone();
                    gc_frames.push(gc_leaf);
                    p.add_sample(pid_u32, gc_frames, drained.gc, SampleKind::Gc);
                }
                p.add_sample(pid_u32, frames, drained.exec(), SampleKind::Exec);
            });
        }
        exit
    }

    /// Enforces the per-process CPU budget; returns true if the process
    /// was terminated for exceeding it.
    fn enforce_cpu_limit(&mut self, pid: Pid) -> bool {
        let Some(idx) = self.proc_index(pid) else {
            return false;
        };
        let Some(limit) = self.procs[idx].cpu_limit else {
            return false;
        };
        if matches!(self.procs[idx].state, ProcState::Dead(_))
            || self.procs[idx].cpu.total() <= limit
        {
            return false;
        }
        // Over budget: the kernel kills the process like any other kill,
        // but records the reason.
        let _ = self.kill(pid);
        // `kill` may have completed the reap with status Killed if every
        // thread was parked; rewrite the status in that case, otherwise
        // remember the reason for the eventual reap.
        let Some(idx) = self.proc_index(pid) else {
            return true;
        };
        match &self.procs[idx].state {
            ProcState::Dead(ExitStatus::Killed) => {
                self.procs[idx].state = ProcState::Dead(ExitStatus::CpuLimitExceeded);
            }
            ProcState::Dead(_) => {}
            _ => {
                self.procs[idx].cpu_overrun = true;
            }
        }
        true
    }

    /// Routes a quantum's exit back into kernel state.
    fn dispatch_exit(&mut self, pid: Pid, tidx: usize, exit: RunExit) {
        let Some(idx) = self.proc_index(pid) else {
            self.kernel_fault(
                kaffeos_trace::KernelFaultKind::Dispatch,
                format!("dispatch_exit for unknown pid {pid:?}"),
            );
            return;
        };
        match exit {
            RunExit::Preempted => {
                self.run_queue.push_back((pid, tidx));
            }
            RunExit::Blocked(_) => {
                // Thread parked on a monitor; woken by wake_unblocked.
            }
            RunExit::Finished(value) => {
                if self.procs[idx].all_threads_done() {
                    let code = self.procs[idx].exit_code.unwrap_or(match value {
                        Some(Value::Int(v)) => v,
                        _ => 0,
                    });
                    self.reap(pid, ExitStatus::Exited(code));
                }
            }
            RunExit::Killed => {
                if self.procs[idx].all_threads_done() {
                    let status = match self.procs[idx].exit_code {
                        Some(code) => ExitStatus::Exited(code),
                        None => ExitStatus::Killed,
                    };
                    self.reap(pid, status);
                }
            }
            RunExit::Unhandled(ex) => {
                let (class, message) = self.describe_exception(&ex);
                if self.procs[idx].all_threads_done() {
                    self.reap(pid, ExitStatus::UncaughtException { class, message });
                } else {
                    self.procs[idx]
                        .stdout
                        .push(format!("[thread died: {class}: {message}]"));
                }
            }
            RunExit::Fault(e) => {
                // A VM fault is a kernel bug for verified code; kill the
                // process, never the system.
                self.procs[idx].stdout.push(format!("[vm fault: {e}]"));
                let _ = self.kill(pid);
            }
            RunExit::Syscall { id, args } => {
                let clock_at_entry = self.clock;
                self.kernel_cpu.kernel += SYSCALL_BASE_CYCLES;
                self.clock += SYSCALL_BASE_CYCLES;
                self.procs[idx].cpu.kernel += SYSCALL_BASE_CYCLES;
                // Kernel-mode sample: exactly the base cost billed to
                // `cpu.kernel` above, on the stack that made the call, under
                // a synthetic `[sys:name]` leaf. Clock advances *inside* the
                // syscall (GC, reaps) are charged elsewhere and sampled at
                // their own points, so per-pid kernel totals reconcile.
                if self.profile.is_enabled() {
                    let stack = self.procs[idx].threads[tidx].sample_stack();
                    let table = &self.table;
                    self.profile.with(|p| {
                        let mut frames = resolve_frames(p, table, &stack);
                        frames.push(p.intern(sysno::sys_label(id)));
                        p.add_sample(pid.0, frames, SYSCALL_BASE_CYCLES, SampleKind::Kernel);
                    });
                }
                self.trace_emit(pid.0, || kaffeos_trace::Payload::SyscallEnter {
                    sysno: id,
                    name: sysno::name(id),
                });
                let outcome = self.syscall(pid, tidx, id, args);
                self.trace_emit(pid.0, || kaffeos_trace::Payload::SyscallLeave {
                    sysno: id,
                    name: sysno::name(id),
                });
                // Latency = every cycle the virtual clock moved while the
                // kernel serviced the call (base cost + GC + teardown...).
                self.profile
                    .record_syscall_latency(sysno::name(id), self.clock - clock_at_entry);
                match outcome {
                    SyscallOutcome::Resume(value) => {
                        let Some(idx) = self.proc_index(pid) else {
                            return;
                        };
                        self.procs[idx].threads[tidx].resume_with(value);
                        self.run_queue.push_back((pid, tidx));
                    }
                    SyscallOutcome::Raise(ex) => {
                        let Some(idx) = self.proc_index(pid) else {
                            return;
                        };
                        self.procs[idx].threads[tidx].pending_exception = Some(ex);
                        self.run_queue.push_back((pid, tidx));
                    }
                    SyscallOutcome::Parked => {}
                    SyscallOutcome::Reschedule => {
                        self.run_queue.push_back((pid, tidx));
                    }
                }
            }
        }
    }

    fn describe_exception(&self, ex: &VmException) -> (String, String) {
        match ex {
            VmException::Guest(obj) => {
                let class = self
                    .space
                    .class_of(*obj)
                    .ok()
                    .map(|id| {
                        self.table
                            .class(self.table.from_heap_class(id))
                            .name
                            .clone()
                    })
                    .unwrap_or_else(|| "<stale>".to_string());
                let message = self
                    .space
                    .load(*obj, 0)
                    .ok()
                    .and_then(|v| v.as_ref())
                    .and_then(|m| self.space.str_value(m).ok().map(|s| s.to_string()))
                    .unwrap_or_default();
                (class, message)
            }
            VmException::Builtin(kind, msg) => (kind.class_name().to_string(), msg.clone()),
        }
    }

    // ---- syscall service -------------------------------------------------------

    fn syscall(&mut self, pid: Pid, tidx: usize, id: u16, args: Vec<Value>) -> SyscallOutcome {
        let Some(idx) = self.proc_index(pid) else {
            return SyscallOutcome::Resume(None);
        };
        match id {
            sysno::PRINT => {
                let text = self.arg_str(&args, 0).unwrap_or_default();
                self.procs[idx].stdout.push(text);
                SyscallOutcome::Resume(None)
            }
            sysno::CYCLES => {
                let total = self.procs[idx].cpu.total() as i64;
                SyscallOutcome::Resume(Some(Value::Int(total)))
            }
            sysno::CLOCK => SyscallOutcome::Resume(Some(Value::Int(self.clock as i64))),
            sysno::YIELD => SyscallOutcome::Resume(None),
            sysno::RAND => {
                let bound = self.arg_int(&args, 0);
                let v = self.procs[idx].next_rand(bound);
                SyscallOutcome::Resume(Some(Value::Int(v)))
            }
            sysno::HEAP_USED => {
                let used = self.space.heap_bytes(self.procs[idx].heap).unwrap_or(0) as i64;
                SyscallOutcome::Resume(Some(Value::Int(used)))
            }
            sysno::HEAP_LIMIT => {
                let limit = self.procs[idx]
                    .memlimit
                    .map(|ml| self.space.limits().limit(ml))
                    .unwrap_or(self.config.user_budget) as i64;
                SyscallOutcome::Resume(Some(Value::Int(limit)))
            }
            sysno::GC => {
                let _ = self.gc_process(pid);
                SyscallOutcome::Resume(None)
            }
            sysno::SELF_PID => SyscallOutcome::Resume(Some(Value::Int(pid.0 as i64))),
            sysno::SPAWN => {
                let image = self.arg_str(&args, 0).unwrap_or_default();
                let argstr = self.arg_str(&args, 1).unwrap_or_default();
                let limit = self.arg_int(&args, 2);
                let limit = (limit > 0).then_some(limit as u64);
                match self.spawn(&image, &argstr, limit) {
                    Ok(child) => SyscallOutcome::Resume(Some(Value::Int(child.0 as i64))),
                    Err(_) => SyscallOutcome::Resume(Some(Value::Int(-1))),
                }
            }
            sysno::KILL => {
                let target = Pid(self.arg_int(&args, 0) as u32);
                match self.kill(target) {
                    Ok(()) => SyscallOutcome::Resume(Some(Value::Int(0))),
                    Err(_) => SyscallOutcome::Resume(Some(Value::Int(-1))),
                }
            }
            sysno::WAIT => {
                let target = Pid(self.arg_int(&args, 0) as u32);
                let Some(target_idx) = self.proc_index(target) else {
                    return SyscallOutcome::Resume(Some(Value::Int(-3)));
                };
                if let ProcState::Dead(status) = &self.procs[target_idx].state {
                    return SyscallOutcome::Resume(Some(Value::Int(status.wait_code())));
                }
                // Park in the kernel: the thread is inside a kernel wait,
                // so a kill of *this* process is deferred until the wait
                // returns (kernel_depth), per §2.
                self.procs[target_idx].waiters.push((pid, tidx));
                let Some(idx) = self.proc_index(pid) else {
                    return SyscallOutcome::Resume(Some(Value::Int(-3)));
                };
                self.procs[idx]
                    .parked
                    .insert(tidx, ParkReason::WaitFor(target));
                self.procs[idx].threads[tidx].kernel_depth += 1;
                SyscallOutcome::Parked
            }
            sysno::EXIT => {
                let code = self.arg_int(&args, 0);
                self.procs[idx].exit_code = Some(code);
                // Kill our own threads; the calling thread dies at its next
                // safe point (immediately on resume).
                let _ = self.kill(pid);
                if self.is_alive(pid) {
                    SyscallOutcome::Reschedule
                } else {
                    SyscallOutcome::Parked
                }
            }
            sysno::THREAD => {
                let class = self.arg_str(&args, 0).unwrap_or_default();
                let method = self.arg_str(&args, 1).unwrap_or_default();
                let arg = self.arg_int(&args, 2);
                match self.spawn_thread(pid, &class, &method, arg) {
                    Ok(tid) => SyscallOutcome::Resume(Some(Value::Int(tid as i64))),
                    Err(msg) => SyscallOutcome::Raise(VmException::Builtin(
                        kaffeos_vm::BuiltinEx::IllegalState,
                        msg,
                    )),
                }
            }
            sysno::NET_SEND => {
                let bytes = self.arg_int(&args, 0).max(0) as u64;
                self.net_send(pid, tidx, bytes)
            }
            sysno::NET_SENT => {
                let total = self.procs[idx].net_sent as i64;
                SyscallOutcome::Resume(Some(Value::Int(total)))
            }
            sysno::SHM_CREATE => self.shm_create(pid, &args),
            sysno::SHM_LOOKUP => self.shm_lookup(pid, &args),
            sysno::SHM_GET => self.shm_get(pid, &args),
            // The procfs plane: kernel accounting state rendered to text
            // and returned as a guest string on the *caller's* heap — the
            // bytes are charged to whoever asked, like everything else.
            sysno::PROC_STATUS => {
                let target = Pid(self.arg_int(&args, 0) as u32);
                let text = self.proc_status_text(target);
                self.resume_str(pid, &text)
            }
            sysno::PROC_MEMINFO => {
                let text = self.meminfo_text();
                self.resume_str(pid, &text)
            }
            sysno::PROC_PROFILE => {
                let target = Pid(self.arg_int(&args, 0) as u32);
                let text = self.profile_summary(target);
                self.resume_str(pid, &text)
            }
            sysno::PROC_HEAPINFO => {
                let target = Pid(self.arg_int(&args, 0) as u32);
                let text = self.proc_heapinfo_text(target);
                self.resume_str(pid, &text)
            }
            sysno::PROC_HEAPSTATS => {
                let target = Pid(self.arg_int(&args, 0) as u32);
                let text = self.proc_heapstats_text(target);
                self.resume_str(pid, &text)
            }
            other => {
                debug_assert!(false, "unknown syscall {other}");
                SyscallOutcome::Resume(None)
            }
        }
    }

    /// Starts an in-process thread on `Class.method`, which must be static
    /// and take one `int` (or no) parameter.
    fn spawn_thread(
        &mut self,
        pid: Pid,
        class: &str,
        method: &str,
        arg: i64,
    ) -> Result<u32, String> {
        let idx = self
            .proc_index(pid)
            .ok_or_else(|| format!("proc.thread: unknown pid {pid:?}"))?;
        let ns = self.procs[idx].ns;
        let cidx = self
            .table
            .lookup(ns, class)
            .ok_or_else(|| format!("proc.thread: unknown class {class}"))?;
        let midx = self
            .table
            .find_method(cidx, method)
            .ok_or_else(|| format!("proc.thread: unknown method {class}.{method}"))?;
        let m = self.table.method(midx);
        if !m.is_static {
            return Err(format!("proc.thread: {class}.{method} must be static"));
        }
        let thread_args = match m.params.as_slice() {
            [] => vec![],
            [kaffeos_vm::TypeDesc::Int] => vec![Value::Int(arg)],
            other => {
                return Err(format!(
                    "proc.thread: unsupported signature {other:?} for {class}.{method}"
                ))
            }
        };
        let tid = self.next_thread_id;
        self.next_thread_id += 1;
        let tidx = self.procs[idx].threads.len();
        self.procs[idx]
            .threads
            .push(Thread::new(tid, &self.table, midx, thread_args));
        self.run_queue.push_back((pid, tidx));
        Ok(tid)
    }

    /// Services `net.send`: account the bytes and pace the sender against
    /// the process' modelled NIC. With a bandwidth cap, a send occupies the
    /// NIC for `bytes / bps` virtual seconds; the calling thread parks until
    /// the NIC drains (network time is not CPU time, so parked waiting
    /// costs no cycles — but it *is* wall time on the virtual clock).
    fn net_send(&mut self, pid: Pid, tidx: usize, bytes: u64) -> SyscallOutcome {
        let Some(idx) = self.proc_index(pid) else {
            return SyscallOutcome::Resume(None);
        };
        self.procs[idx].net_sent += bytes;
        let total = self.procs[idx].net_sent as i64;
        let Some(bps) = self.procs[idx].net_bps else {
            return SyscallOutcome::Resume(Some(Value::Int(total)));
        };
        let bps = bps.max(1);
        let drain_cycles = bytes.saturating_mul(costs::CLOCK_HZ) / bps;
        let busy_from = self.procs[idx].net_busy_until.max(self.clock);
        let busy_until = busy_from.saturating_add(drain_cycles);
        self.procs[idx].net_busy_until = busy_until;
        if busy_until <= self.clock {
            return SyscallOutcome::Resume(Some(Value::Int(total)));
        }
        // Park until the NIC drains; resumed (with the result pushed) by
        // wake_unblocked once the clock passes `busy_until`.
        self.procs[idx]
            .parked
            .insert(tidx, ParkReason::Until(busy_until, total));
        SyscallOutcome::Parked
    }

    /// Allocates `text` as a guest string on the caller's heap and resumes
    /// the syscall with it; allocation failure surfaces as the caller's own
    /// `OutOfMemoryError` (the reply is charged to the asking process).
    fn resume_str(&mut self, pid: Pid, text: &str) -> SyscallOutcome {
        let Some(idx) = self.proc_index(pid) else {
            return SyscallOutcome::Resume(None);
        };
        let heap = self.procs[idx].heap;
        match self
            .space
            .alloc_str(heap, self.string_class.heap_class(), text)
        {
            Ok(s) => SyscallOutcome::Resume(Some(Value::Ref(s))),
            Err(_) => SyscallOutcome::Raise(VmException::Builtin(
                kaffeos_vm::BuiltinEx::OutOfMemory,
                "procfs reply allocation failed".to_string(),
            )),
        }
    }

    fn arg_str(&self, args: &[Value], i: usize) -> Option<String> {
        match args.get(i) {
            Some(Value::Ref(r)) => self.space.str_value(*r).ok().map(|s| s.to_string()),
            _ => None,
        }
    }

    fn arg_int(&self, args: &[Value], i: usize) -> i64 {
        match args.get(i) {
            Some(Value::Int(v)) => *v,
            _ => 0,
        }
    }

    // ---- shared heaps (§2, "Direct sharing between processes") --------------

    fn shm_create(&mut self, pid: Pid, args: &[Value]) -> SyscallOutcome {
        let Some(idx) = self.proc_index(pid) else {
            return SyscallOutcome::Resume(None);
        };
        let Some(name) = self.arg_str(args, 0) else {
            return SyscallOutcome::Raise(VmException::Builtin(
                kaffeos_vm::BuiltinEx::NullPointer,
                "shm.create name".to_string(),
            ));
        };
        let Some(class_name) = self.arg_str(args, 1) else {
            return SyscallOutcome::Raise(VmException::Builtin(
                kaffeos_vm::BuiltinEx::NullPointer,
                "shm.create class".to_string(),
            ));
        };
        let count = self.arg_int(args, 2);
        if self.shm.contains(&name) || !(1..=SHM_MAX_OBJECTS).contains(&count) {
            return SyscallOutcome::Raise(VmException::Builtin(
                kaffeos_vm::BuiltinEx::IllegalState,
                format!("shm.create({name})"),
            ));
        }
        // Shared types come out of the central shared namespace (§3.1), so
        // every process agrees on them.
        let Some(class) = self.table.lookup(self.shared_ns, &class_name) else {
            return SyscallOutcome::Raise(VmException::Builtin(
                kaffeos_vm::BuiltinEx::IllegalState,
                format!("{class_name} is not a shared class"),
            ));
        };
        let Some(creator_ml) = self.procs[idx].memlimit else {
            return SyscallOutcome::Raise(VmException::Builtin(
                kaffeos_vm::BuiltinEx::IllegalState,
                "shared heaps are unavailable in monolithic mode".to_string(),
            ));
        };

        // While being created, the heap hangs off a soft memlimit child of
        // the creator's memlimit: separately accounted but bounded by the
        // creator's ability to pay (§2).
        let limit = self.space.limits().limit(creator_ml);
        let Ok(shm_ml) = self.space.limits_mut().create_child(
            creator_ml,
            Kind::Soft,
            limit,
            format!("shm:{name}"),
        ) else {
            return SyscallOutcome::Raise(VmException::Builtin(
                kaffeos_vm::BuiltinEx::OutOfMemory,
                "shm.create memlimit".to_string(),
            ));
        };
        let heap = self
            .space
            .create_shared_heap(ProcTag(pid.0), shm_ml, format!("shm:{name}"));

        // Populate: `count` instances of the shared class, fields zeroed.
        let nfields = self.table.class(class).instance_fields.len();
        let field_types: Vec<kaffeos_vm::TypeDesc> = self
            .table
            .class(class)
            .instance_fields
            .iter()
            .map(|f| f.ty.clone())
            .collect();
        let mut objects = Vec::with_capacity(count as usize);
        for _ in 0..count {
            match self.space.alloc_fields(heap, class.heap_class(), nfields) {
                Ok(obj) => {
                    for (slot, ty) in field_types.iter().enumerate() {
                        let default = match ty {
                            kaffeos_vm::TypeDesc::Int => Value::Int(0),
                            kaffeos_vm::TypeDesc::Float => Value::Float(0.0),
                            _ => continue,
                        };
                        if let Err(e) = self.space.store_prim(obj, slot, default) {
                            self.kernel_fault(
                                kaffeos_trace::KernelFaultKind::ShmCreate,
                                format!("shm.create({name}): zeroing a fresh object failed: {e:?}"),
                            );
                        }
                    }
                    objects.push(obj);
                }
                Err(_) => {
                    // Creation failed: merge the half-built heap away and
                    // remove its memlimit.
                    let _ = self.space.merge_into_kernel(heap);
                    let _ = self.space.limits_mut().drain_and_remove(shm_ml);
                    return SyscallOutcome::Raise(VmException::Builtin(
                        kaffeos_vm::BuiltinEx::OutOfMemory,
                        format!("shm.create({name})"),
                    ));
                }
            }
        }

        // Freeze: size fixed for life, reference fields immutable. The
        // population charge is credited and the creator is charged the
        // full size like any other sharer.
        let size = match self.space.freeze_shared(heap) {
            Ok(size) => size,
            Err(e) => {
                self.kernel_fault(
                    kaffeos_trace::KernelFaultKind::ShmCreate,
                    format!("shm.create({name}): freeze failed: {e:?}"),
                );
                let _ = self.space.merge_into_kernel(heap);
                let _ = self.space.limits_mut().drain_and_remove(shm_ml);
                return SyscallOutcome::Raise(VmException::Builtin(
                    kaffeos_vm::BuiltinEx::IllegalState,
                    format!("shm.create({name}): freeze"),
                ));
            }
        };
        if let Err(e) = self.space.limits_mut().remove(shm_ml) {
            self.kernel_fault(
                kaffeos_trace::KernelFaultKind::ShmCreate,
                format!("shm.create({name}): population charge not fully credited at freeze: {e:?}"),
            );
        }
        if self.space.limits_mut().debit(creator_ml, size).is_err() {
            let _ = self.space.merge_into_kernel(heap);
            return SyscallOutcome::Raise(VmException::Builtin(
                kaffeos_vm::BuiltinEx::OutOfMemory,
                format!("shm.create({name}): sharer charge"),
            ));
        }

        self.kernel_cpu.kernel += costs::ALLOC_BASE * count as u64;
        self.shm.insert(SharedHeap {
            name: name.clone(),
            heap,
            size,
            objects,
            sharers: vec![pid],
        });
        self.trace_emit(pid.0, || kaffeos_trace::Payload::ShmFrozen {
            name: name.clone(),
            bytes: size,
        });
        self.trace_emit(pid.0, || kaffeos_trace::Payload::ShmAttached { name: name.clone() });
        self.procs[idx].charged_shm.push(name);
        SyscallOutcome::Resume(Some(Value::Int(count)))
    }

    fn shm_lookup(&mut self, pid: Pid, args: &[Value]) -> SyscallOutcome {
        let Some(idx) = self.proc_index(pid) else {
            return SyscallOutcome::Resume(Some(Value::Int(-1)));
        };
        let Some(name) = self.arg_str(args, 0) else {
            return SyscallOutcome::Resume(Some(Value::Int(-1)));
        };
        let Some(shm) = self.shm.get(&name) else {
            return SyscallOutcome::Resume(Some(Value::Int(-1)));
        };
        let count = shm.objects.len() as i64;
        let size = shm.size;
        if shm.sharers.contains(&pid) {
            return SyscallOutcome::Resume(Some(Value::Int(count)));
        }
        // Charge the new sharer in full (§2: "If other processes look up
        // the shared heap, they are charged that amount").
        if let Some(ml) = self.procs[idx].memlimit {
            if self.space.limits_mut().debit(ml, size).is_err() {
                return SyscallOutcome::Raise(VmException::Builtin(
                    kaffeos_vm::BuiltinEx::OutOfMemory,
                    format!("shm.lookup({name}): sharer charge"),
                ));
            }
        }
        self.shm.add_sharer(&name, pid);
        self.trace_emit(pid.0, || kaffeos_trace::Payload::ShmAttached { name: name.clone() });
        self.procs[idx].charged_shm.push(name);
        SyscallOutcome::Resume(Some(Value::Int(count)))
    }

    fn shm_get(&mut self, pid: Pid, args: &[Value]) -> SyscallOutcome {
        let Some(name) = self.arg_str(args, 0) else {
            return SyscallOutcome::Raise(VmException::Builtin(
                kaffeos_vm::BuiltinEx::NullPointer,
                "shm.get name".to_string(),
            ));
        };
        let index = self.arg_int(args, 1);
        let Some(shm) = self.shm.get(&name) else {
            return SyscallOutcome::Raise(VmException::Builtin(
                kaffeos_vm::BuiltinEx::IllegalState,
                format!("no shared heap {name}"),
            ));
        };
        if !shm.sharers.contains(&pid) {
            return SyscallOutcome::Raise(VmException::Builtin(
                kaffeos_vm::BuiltinEx::IllegalState,
                format!("shm.get({name}) before lookup"),
            ));
        }
        match shm.objects.get(index as usize) {
            Some(&obj) => SyscallOutcome::Resume(Some(Value::Ref(obj))),
            None => SyscallOutcome::Raise(VmException::Builtin(
                kaffeos_vm::BuiltinEx::IndexOutOfBounds,
                format!("shm.get({name}, {index})"),
            )),
        }
    }

    fn report(&self, deadlocked: bool) -> RunReport {
        RunReport {
            clock: self.clock,
            virtual_seconds: costs::cycles_to_seconds(self.clock),
            processes: self
                .procs
                .iter()
                .map(|p| ProcessReport {
                    pid: p.pid,
                    name: p.name.clone(),
                    status: match &p.state {
                        ProcState::Dead(s) => Some(s.clone()),
                        _ => None,
                    },
                    cpu: p.cpu,
                    stdout: p.stdout.clone(),
                })
                .collect(),
            barrier: self.space.barrier_stats(),
            kernel_cpu: self.kernel_cpu,
            deadlocked,
            quanta: self.quanta,
        }
    }
}

enum SyscallOutcome {
    /// Push an optional result and requeue the thread.
    Resume(Option<Value>),
    /// Inject a guest exception and requeue.
    Raise(VmException),
    /// Thread was parked kernel-side; something else will requeue it.
    Parked,
    /// No result to push; requeue.
    Reschedule,
}
