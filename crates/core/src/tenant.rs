//! Tenancy: admission control, supervised restarts, and graceful
//! degradation.
//!
//! The paper's servlet experiment (§4.2, Figure 4) casts KaffeOS as a
//! multi-tenant server: each customer's servlets run as processes whose
//! resource limits confine abuse, and "the system administrator restarts
//! whatever crashes". This module turns that administrator into kernel
//! policy:
//!
//! * an **admission controller** — each tenant declares a concurrent-
//!   process cap; spawns beyond the cap queue FIFO (bounded) or are
//!   rejected with a typed [`crate::KernelError`], and queued spawns
//!   launch deterministically, in ticket order, as slots free;
//! * a **restart engine** — a tenant can opt into restart-on-failure:
//!   every non-clean exit (kill, CPU overrun, OOM, uncaught exception)
//!   schedules a respawn after a capped exponential backoff *in virtual
//!   time*, so crash loops consume bounded restart work;
//! * a **kill-storm circuit breaker** — when failures cluster (the
//!   fault-plan termination sweep, a crash loop), the breaker opens:
//!   admissions are rejected and pending restarts held until a cooldown
//!   elapses, bounding supervision work under a storm;
//! * **graceful degradation** — an optional machine-wide
//!   [`OverloadPolicy`] watches the root memlimit; past the high
//!   watermark the kernel sheds the lowest-priority tenant (killing its
//!   processes, parking its restarts, rejecting its admissions) and
//!   restores shed tenants once pressure falls below the low watermark.
//!
//! Everything is driven by the virtual clock and iterated in tenant-id /
//! FIFO order — no wall time, no hash-map iteration — so a scenario's
//! per-tenant SLO report is a pure function of (scenario, seed).

use std::collections::VecDeque;

use crate::process::{CauseCounts, Pid, SpawnOpts};

/// Tenant identifier: a dense index into the kernel's tenant table, in
/// creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

/// Supervised-restart policy: what the paper's "administrator restarts
/// whatever crashes" becomes when the kernel does it, with backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Respawn processes of this tenant whose exits are failures (killed,
    /// CPU overrun, OOM, uncaught exception). Clean exits never restart.
    pub restart_on_failure: bool,
    /// Give up after this many *consecutive* failures (a clean exit
    /// resets the count). Bounds total respawn work in a crash loop.
    pub max_restarts: u32,
    /// First backoff delay, in virtual cycles; attempt `n` waits
    /// `min(backoff_base << (n-1), backoff_cap)`.
    pub backoff_base: u64,
    /// Backoff saturation, in virtual cycles.
    pub backoff_cap: u64,
    /// Failures within [`RestartPolicy::breaker_window`] that open the
    /// circuit breaker; 0 disables the breaker.
    pub breaker_threshold: u32,
    /// Sliding virtual-time window the threshold counts over, in cycles.
    pub breaker_window: u64,
    /// How long an opened breaker stays open, in cycles. While open,
    /// admissions are rejected and pending restarts are held.
    pub breaker_cooldown: u64,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            restart_on_failure: false,
            max_restarts: 32,
            backoff_base: 1_000_000,       // 2 ms at the modelled 500 MHz
            backoff_cap: 64_000_000,       // 128 ms
            breaker_threshold: 4,
            breaker_window: 100_000_000,   // 200 ms
            breaker_cooldown: 200_000_000, // 400 ms
        }
    }
}

impl RestartPolicy {
    /// Backoff delay for the given 1-based attempt:
    /// `min(backoff_base << (attempt-1), backoff_cap)`, saturating.
    pub fn backoff_delay(&self, attempt: u32) -> u64 {
        if self.backoff_base == 0 {
            return 0;
        }
        let shift = attempt.saturating_sub(1);
        // A shift that would drop bits has already passed the cap.
        if shift >= self.backoff_base.leading_zeros() {
            return self.backoff_cap;
        }
        (self.backoff_base << shift).min(self.backoff_cap)
    }
}

/// Per-tenant admission and scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Concurrent-process cap enforced at admission.
    pub max_procs: u32,
    /// Spawns beyond the cap queue FIFO up to this depth; 0 means
    /// queue-nothing (reject immediately at the cap).
    pub queue_capacity: usize,
    /// Degradation priority: under global memory pressure the *lowest*
    /// priority unshed tenant is shed first.
    pub priority: u32,
    /// Supervised-restart policy.
    pub restart: RestartPolicy,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            max_procs: 8,
            queue_capacity: 16,
            priority: 100,
            restart: RestartPolicy::default(),
        }
    }
}

/// Machine-wide graceful-degradation policy, installed with
/// `KaffeOs::set_overload_policy`. Watermarks are bytes debited from the
/// root memlimit (every live heap, entry/exit item, and shared-heap
/// charge counts — the same number `audit` reconciles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadPolicy {
    /// Shed the lowest-priority tenant when usage reaches this.
    pub shed_high_bytes: u64,
    /// Restore shed tenants when usage falls back to this (hysteresis:
    /// keep it below `shed_high_bytes`).
    pub shed_low_bytes: u64,
}

/// Outcome of an admission-controlled spawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// A slot was free; the process is spawned and runnable.
    Admitted(Pid),
    /// The tenant is at its cap; the spawn is queued under this ticket
    /// and will launch (FIFO) when a slot frees. The eventual launch is
    /// reported through `KaffeOs::drain_tenant_launches`.
    Queued {
        /// FIFO admission ticket, unique per tenant.
        ticket: u64,
    },
}

/// A launch the tenant engine performed on its own (a queued admission
/// whose slot freed, or a supervised restart), reported to the embedder
/// via `KaffeOs::drain_tenant_launches` so drivers can map tickets and
/// respawns to pids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantLaunch {
    /// The tenant launched for.
    pub tenant: TenantId,
    /// The admission ticket this launch resolves (`None` for restarts).
    pub ticket: Option<u64>,
    /// The new process.
    pub pid: Pid,
    /// Virtual cycle of the launch.
    pub at: u64,
}

/// One scheduled supervised restart, recorded whether or not it has
/// launched yet — the exact-backoff audit trail the policy tests check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestartRecord {
    /// Image being respawned.
    pub image: String,
    /// 1-based consecutive-failure attempt; the backoff delay is exactly
    /// `policy.restart.backoff_delay(attempt)`.
    pub attempt: u32,
    /// Virtual cycle the failure was observed and the restart scheduled.
    pub scheduled_at: u64,
    /// Virtual cycle the restart becomes due (`scheduled_at + backoff`).
    pub due: u64,
    /// Virtual cycle the respawn actually launched (`None` while pending
    /// or abandoned). May exceed `due` when the breaker or shedding held
    /// it, or when no slot was free.
    pub launched_at: Option<u64>,
    /// The respawned pid once launched.
    pub pid: Option<Pid>,
}

/// Per-tenant counters, all monotonic; exact, not sampled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// `spawn_for_tenant` calls.
    pub offered: u64,
    /// Spawns admitted (immediately or from the queue).
    pub admitted: u64,
    /// Spawns that waited in the admission queue.
    pub queued: u64,
    /// Spawns rejected at the cap with a full (or absent) queue.
    pub rejected_cap: u64,
    /// Spawns rejected while the circuit breaker was open.
    pub rejected_breaker: u64,
    /// Spawns rejected while the tenant was shed.
    pub rejected_shed: u64,
    /// Queued admissions dropped because the underlying spawn failed.
    pub spawn_failures: u64,
    /// Supervised restarts actually launched.
    pub restarts: u64,
    /// Restarts abandoned at `max_restarts`.
    pub restarts_abandoned: u64,
    /// Times the circuit breaker opened.
    pub breaker_opens: u64,
    /// Times this tenant was shed.
    pub sheds: u64,
    /// Exits of this tenant's processes, by typed cause.
    pub exits: CauseCounts,
    /// Live heap bytes this tenant's processes held at reap, summed —
    /// the residue its workloads leave for the kernel collector.
    pub heap_bytes_reaped: u64,
    /// Live objects at reap, summed over this tenant's processes.
    pub heap_objects_reaped: u64,
    /// Full collections run on this tenant's heaps (counted at reap).
    pub heap_gcs: u64,
    /// Minor (nursery) collections on this tenant's heaps (at reap).
    pub heap_minor_gcs: u64,
}

/// A spawn parked in the admission queue.
#[derive(Debug, Clone)]
pub(crate) struct QueuedSpawn {
    pub ticket: u64,
    pub image: String,
    pub args: String,
    pub opts: SpawnOpts,
}

/// A supervised restart waiting for its due time (and a free slot).
#[derive(Debug, Clone)]
pub(crate) struct PendingRestart {
    pub image: String,
    pub args: String,
    pub opts: SpawnOpts,
    pub attempt: u32,
    pub due: u64,
    /// Index into [`TenantState::restart_log`] to stamp on launch.
    pub log_index: usize,
}

/// Kernel-side per-tenant state. All orderings are deterministic: `live`
/// keeps admission order, queues are FIFO, and the kernel iterates
/// tenants in id order.
#[derive(Debug)]
pub(crate) struct TenantState {
    pub id: TenantId,
    pub name: String,
    pub policy: TenantPolicy,
    /// Live pids accounted to this tenant, in admission order.
    pub live: Vec<Pid>,
    /// Bounded FIFO admission queue.
    pub queue: VecDeque<QueuedSpawn>,
    /// Scheduled restarts, in scheduling order (due times are monotonic
    /// because backoff delays never shrink within a failure streak).
    pub pending_restarts: VecDeque<PendingRestart>,
    /// Consecutive failures; resets on a clean exit. Drives backoff.
    pub consecutive_failures: u32,
    /// Failure timestamps inside the breaker window.
    pub failure_times: VecDeque<u64>,
    /// `Some(until)` while the circuit breaker is open.
    pub breaker_open_until: Option<u64>,
    /// Shed under global memory pressure (graceful degradation).
    pub shed: bool,
    /// Next admission ticket.
    pub next_ticket: u64,
    /// Monotonic counters.
    pub stats: TenantStats,
    /// Every scheduled restart, in order.
    pub restart_log: Vec<RestartRecord>,
}

impl TenantState {
    pub(crate) fn new(id: TenantId, name: String, policy: TenantPolicy) -> Self {
        TenantState {
            id,
            name,
            policy,
            live: Vec::new(),
            queue: VecDeque::new(),
            pending_restarts: VecDeque::new(),
            consecutive_failures: 0,
            failure_times: VecDeque::new(),
            breaker_open_until: None,
            shed: false,
            next_ticket: 0,
            stats: TenantStats::default(),
            restart_log: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_from_base_and_saturates_at_cap() {
        let rp = RestartPolicy {
            backoff_base: 1_000,
            backoff_cap: 6_000,
            ..RestartPolicy::default()
        };
        assert_eq!(rp.backoff_delay(1), 1_000);
        assert_eq!(rp.backoff_delay(2), 2_000);
        assert_eq!(rp.backoff_delay(3), 4_000);
        assert_eq!(rp.backoff_delay(4), 6_000, "capped");
        assert_eq!(rp.backoff_delay(100), 6_000, "shift saturates safely");
    }

    #[test]
    fn backoff_attempt_zero_behaves_like_attempt_one() {
        let rp = RestartPolicy::default();
        assert_eq!(rp.backoff_delay(0), rp.backoff_delay(1));
    }
}
