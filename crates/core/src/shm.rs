//! Shared-heap registry: the direct-sharing mechanism of §2.
//!
//! Lifecycle, exactly as the paper describes it: a process picks shared
//! types out of the central shared namespace, creates the heap, populates
//! it (charged to the creator through a soft memlimit child of the
//! creator's memlimit), then the heap is **frozen** — its size is fixed for
//! life and the reference fields of its objects become immutable. Every
//! process that looks the heap up is charged its full size; when a process
//! garbage-collects its last exit item into the heap (or terminates), its
//! charge is credited back. When the last sharer is gone the heap is
//! **orphaned**, and the kernel collector merges it into the kernel heap at
//! the start of its next cycle.

use std::collections::BTreeMap;

use kaffeos_heap::{HeapId, ObjRef};

use crate::process::Pid;

/// One registered shared heap.
#[derive(Debug)]
pub struct SharedHeap {
    /// Name in the central shared namespace.
    pub name: String,
    /// The underlying (frozen) heap.
    pub heap: HeapId,
    /// Frozen size in bytes; the amount charged to every sharer.
    pub size: u64,
    /// Shared objects, indexable by `shm.get`.
    pub objects: Vec<ObjRef>,
    /// Processes currently charged for this heap.
    pub sharers: Vec<Pid>,
}

/// The kernel's table of live shared heaps, keyed by their name in the
/// central shared namespace. A `BTreeMap` so every iteration (orphan
/// sweeps, audits, `charged_to`) is deterministic across instances.
#[derive(Debug, Default)]
pub struct ShmRegistry {
    heaps: BTreeMap<String, SharedHeap>,
}

impl ShmRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a freshly frozen heap with its creator as first sharer.
    pub fn insert(&mut self, shm: SharedHeap) {
        debug_assert!(!self.heaps.contains_key(&shm.name));
        self.heaps.insert(shm.name.clone(), shm);
    }

    /// True if a shared heap of this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.heaps.contains_key(name)
    }

    /// The shared heap registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&SharedHeap> {
        self.heaps.get(name)
    }

    /// Records `pid` as a sharer (on `shm.lookup`); idempotent.
    pub fn add_sharer(&mut self, name: &str, pid: Pid) -> bool {
        match self.heaps.get_mut(name) {
            Some(shm) if !shm.sharers.contains(&pid) => {
                shm.sharers.push(pid);
                true
            }
            _ => false,
        }
    }

    /// Drops `pid` as a sharer; returns the heap size to credit back if the
    /// pid was charged.
    pub fn remove_sharer(&mut self, name: &str, pid: Pid) -> Option<u64> {
        let shm = self.heaps.get_mut(name)?;
        let before = shm.sharers.len();
        shm.sharers.retain(|&p| p != pid);
        (shm.sharers.len() != before).then_some(shm.size)
    }

    /// Names of heaps with no sharers left — candidates for the kernel
    /// collector's orphan merge.
    pub fn orphans(&self) -> Vec<String> {
        self.heaps
            .iter()
            .filter(|(_, s)| s.sharers.is_empty())
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Removes an orphan from the registry (after the kernel merges it).
    pub fn remove(&mut self, name: &str) -> Option<SharedHeap> {
        self.heaps.remove(name)
    }

    /// All heaps a pid is currently charged for.
    pub fn charged_to(&self, pid: Pid) -> Vec<String> {
        self.heaps
            .iter()
            .filter(|(_, s)| s.sharers.contains(&pid))
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Iterates over all registered shared heaps.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &SharedHeap)> {
        self.heaps.iter()
    }

    /// Number of live shared heaps.
    pub fn len(&self) -> usize {
        self.heaps.len()
    }

    /// True if no shared heap is registered.
    pub fn is_empty(&self) -> bool {
        self.heaps.is_empty()
    }
}
