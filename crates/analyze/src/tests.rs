//! Unit tests: region lattice, verdicts, lints, and never-panic bail-out.

use crate::{analyze, EscapeClass, LintKind, Region, Verdict};
use kaffeos_vm::{
    ClassBuilder, ClassDef, ClassTable, Const, IntrinsicRegistry, MethodBuilder, Op, TypeDesc,
};

fn obj() -> TypeDesc {
    TypeDesc::Class("Object".to_string())
}

/// Loads the minimal guest stdlib plus the given classes into one table.
fn table_with(registry: IntrinsicRegistry, defs: Vec<ClassDef>) -> (ClassTable, u32) {
    let mut table = ClassTable::new(registry);
    let ns = table.create_namespace("t", None);
    let base = [
        ClassBuilder::root("Object").build(),
        ClassBuilder::new("String").build(),
        ClassBuilder::new("Exception").field("msg", TypeDesc::Str).build(),
    ];
    for def in base.into_iter().chain(defs) {
        table.load_class(ns, def.into_arc()).unwrap();
    }
    (table, ns)
}

#[test]
fn join_is_a_lattice() {
    use Region::*;
    for r in [Local, KernelConst, SharedFrozen, MayCross, Top] {
        assert_eq!(r.join(r), r);
        assert_eq!(r.join(Top), Top);
        assert_eq!(Top.join(r), Top);
    }
    assert_eq!(Local.join(SharedFrozen), MayCross);
    assert_eq!(SharedFrozen.join(KernelConst), MayCross);
    assert_eq!(Local.join(MayCross), MayCross);
}

#[test]
fn local_into_local_store_is_elided() {
    let mut b = ClassBuilder::new("A").field("f", obj());
    let a = b.pool(Const::Class("A".to_string()));
    let o = b.pool(Const::Class("Object".to_string()));
    let f = b.pool(Const::Field {
        class: "A".to_string(),
        name: "f".to_string(),
    });
    let def = b
        .method(
            MethodBuilder::of_static("m")
                .ops([Op::New(a), Op::New(o), Op::PutField(f), Op::Return])
                .build(),
        )
        .build();
    let (table, ns) = table_with(IntrinsicRegistry::new(), vec![def]);
    let cls = table.lookup(ns, "A").unwrap();
    let m = table.find_method(cls, "m").unwrap();

    let an = analyze(&table);
    assert_eq!(an.site(m, 2).expect("store site").verdict, Verdict::Elide);
    let bm = an.elision_bitmap(&table, m);
    assert_eq!(bm.len(), 1);
    assert_ne!(bm[0] & (1 << 2), 0, "bit for pc 2 must be set");
    assert!(an.lints.is_empty(), "nothing to lint: {:?}", an.lints);
}

#[test]
fn parameter_store_is_not_elided() {
    let mut b = ClassBuilder::new("A").field("f", obj());
    let a = b.pool(Const::Class("A".to_string()));
    let f = b.pool(Const::Field {
        class: "A".to_string(),
        name: "f".to_string(),
    });
    let def = b
        .method(
            MethodBuilder::of_static("m")
                .param(obj())
                .ops([Op::New(a), Op::Load(0), Op::PutField(f), Op::Return])
                .build(),
        )
        .build();
    let (table, ns) = table_with(IntrinsicRegistry::new(), vec![def]);
    let cls = table.lookup(ns, "A").unwrap();
    let m = table.find_method(cls, "m").unwrap();

    let an = analyze(&table);
    let site = an.site(m, 2).expect("store site");
    assert_eq!(site.verdict, Verdict::Unknown);
    assert_eq!(site.val, Region::MayCross);
    assert!(an.elision_bitmap(&table, m).is_empty());
}

#[test]
fn static_call_summary_keeps_store_elidable() {
    let mut b = ClassBuilder::new("A").field("f", obj());
    let a = b.pool(Const::Class("A".to_string()));
    let o = b.pool(Const::Class("Object".to_string()));
    let f = b.pool(Const::Field {
        class: "A".to_string(),
        name: "f".to_string(),
    });
    let mk = b.pool(Const::Method {
        class: "A".to_string(),
        name: "mk".to_string(),
    });
    let def = b
        .method(
            MethodBuilder::of_static("mk")
                .returns(obj())
                .ops([Op::New(o), Op::ReturnVal])
                .build(),
        )
        .method(
            MethodBuilder::of_static("main")
                .ops([Op::New(a), Op::CallStatic(mk), Op::PutField(f), Op::Return])
                .build(),
        )
        .build();
    let (table, ns) = table_with(IntrinsicRegistry::new(), vec![def]);
    let cls = table.lookup(ns, "A").unwrap();
    let main = table.find_method(cls, "main").unwrap();

    let an = analyze(&table);
    // `mk` provably returns a fresh local allocation, so the stored value
    // is Local and the barrier is elidable.
    assert_eq!(an.site(main, 2).expect("store site").verdict, Verdict::Elide);
}

/// Builds the virtual-call fixture: `A.get` returns its receiver
/// (`MayCross` summary), `A.main` stores a fresh object into the call's
/// result. Optional extra defs (e.g. an override) load after `A`.
fn virtual_fixture(extra: Vec<ClassDef>) -> (ClassTable, u32) {
    let mut b = ClassBuilder::new("A").field("f", obj());
    let a = b.pool(Const::Class("A".to_string()));
    let o = b.pool(Const::Class("Object".to_string()));
    let f = b.pool(Const::Field {
        class: "A".to_string(),
        name: "f".to_string(),
    });
    let get = b.pool(Const::Method {
        class: "A".to_string(),
        name: "get".to_string(),
    });
    let def = b
        .method(
            MethodBuilder::instance("get")
                .returns(TypeDesc::Class("A".to_string()))
                .ops([Op::Load(0), Op::ReturnVal])
                .build(),
        )
        .method(
            MethodBuilder::of_static("main")
                .ops([
                    Op::New(a),
                    Op::CallVirtual(get),
                    Op::New(o),
                    Op::PutField(f),
                    Op::Return,
                ])
                .build(),
        )
        .build();
    table_with(
        IntrinsicRegistry::new(),
        std::iter::once(def).chain(extra).collect(),
    )
}

#[test]
fn monomorphic_virtual_call_is_sharpened_and_devirtualized() {
    let (table, ns) = virtual_fixture(Vec::new());
    let cls = table.lookup(ns, "A").unwrap();
    let main = table.find_method(cls, "main").unwrap();
    let get = table.find_method(cls, "get").unwrap();

    let an = analyze(&table);
    // With no loaded override, CHA proves the only reachable target is
    // `A.get`, whose summary is MayCross (it returns its receiver) — not
    // the old blanket Top, so the site no longer lints.
    let site = an.site(main, 3).expect("store site");
    assert_eq!(site.recv, Region::MayCross);
    assert_eq!(site.verdict, Verdict::Unknown);
    assert!(
        !an.lints.iter().any(|l| l.kind == LintKind::SegViolationCandidate),
        "sharpened site must not lint: {:?}",
        an.lints
    );
    assert_eq!(an.devirt_table(main), vec![(1, get)]);
    assert_eq!(an.devirt_counts(), (1, 0));
}

#[test]
fn loaded_override_makes_the_site_polymorphic() {
    let sub = ClassBuilder::new("B")
        .extends("A")
        .method(
            MethodBuilder::instance("get")
                .returns(TypeDesc::Class("A".to_string()))
                .ops([Op::Load(0), Op::ReturnVal])
                .build(),
        )
        .build();
    let (table, ns) = virtual_fixture(vec![sub]);
    let cls = table.lookup(ns, "A").unwrap();
    let main = table.find_method(cls, "main").unwrap();

    let an = analyze(&table);
    // Two reachable targets: the summaries still join (MayCross here),
    // but nothing devirtualizes.
    let site = an.site(main, 3).expect("store site");
    assert_eq!(site.recv, Region::MayCross);
    assert!(an.devirt_table(main).is_empty());
    assert_eq!(an.devirt_counts(), (0, 1));
}

#[test]
fn shm_get_result_is_frozen_and_write_is_linted() {
    let mut r = IntrinsicRegistry::new();
    r.register("shm.get", vec![TypeDesc::Str, TypeDesc::Int], Some(obj()));
    let mut b = ClassBuilder::new("A").field("f", obj());
    let s = b.pool(Const::Str("buf".to_string()));
    let shm = b.pool(Const::Intrinsic("shm.get".to_string()));
    let a = b.pool(Const::Class("A".to_string()));
    let o = b.pool(Const::Class("Object".to_string()));
    let f = b.pool(Const::Field {
        class: "A".to_string(),
        name: "f".to_string(),
    });
    let def = b
        .method(
            MethodBuilder::of_static("m")
                .ops([
                    Op::ConstStr(s),
                    Op::ConstInt(0),
                    Op::Syscall(shm),
                    Op::CheckCast(a),
                    Op::New(o),
                    Op::PutField(f),
                    Op::Return,
                ])
                .build(),
        )
        .build();
    let (table, ns) = table_with(r, vec![def]);
    let cls = table.lookup(ns, "A").unwrap();
    let m = table.find_method(cls, "m").unwrap();

    let an = analyze(&table);
    let site = an.site(m, 5).expect("store site");
    assert_eq!(site.recv, Region::SharedFrozen, "CheckCast keeps the region");
    assert_eq!(site.verdict, Verdict::FrozenWrite);
    assert!(an
        .lints
        .iter()
        .any(|l| l.kind == LintKind::WriteAfterFreeze && l.pc == 5 && l.method == "m"));
}

#[test]
fn field_summary_flows_between_methods_regardless_of_order() {
    let mut b = ClassBuilder::new("A").field("f", obj());
    let a = b.pool(Const::Class("A".to_string()));
    let f = b.pool(Const::Field {
        class: "A".to_string(),
        name: "f".to_string(),
    });
    // `read` comes first so a single pass would see the field as still
    // Local; the fixpoint must circle back after `taint` raises it.
    let def = b
        .method(
            MethodBuilder::of_static("read")
                .ops([
                    Op::New(a),
                    Op::New(a),
                    Op::GetField(f),
                    Op::PutField(f),
                    Op::Return,
                ])
                .build(),
        )
        .method(
            MethodBuilder::of_static("taint")
                .param(obj())
                .ops([Op::New(a), Op::Load(0), Op::PutField(f), Op::Return])
                .build(),
        )
        .build();
    let (table, ns) = table_with(IntrinsicRegistry::new(), vec![def]);
    let cls = table.lookup(ns, "A").unwrap();
    let read = table.find_method(cls, "read").unwrap();

    let an = analyze(&table);
    let site = an.site(read, 3).expect("store site");
    assert_eq!(site.val, Region::MayCross, "field summary must taint reads");
    assert_eq!(site.verdict, Verdict::Unknown);
}

#[test]
fn unreachable_code_is_linted_but_implicit_tail_return_is_not() {
    let def = ClassBuilder::new("A")
        .method(
            MethodBuilder::of_static("m")
                .ops([Op::Return, Op::ConstInt(1), Op::Pop, Op::Return])
                .build(),
        )
        .build();
    let (table, _) = table_with(IntrinsicRegistry::new(), vec![def]);

    let an = analyze(&table);
    let dead: Vec<_> = an
        .lints
        .iter()
        .filter(|l| l.kind == LintKind::UnreachableCode)
        .collect();
    assert_eq!(dead.len(), 1, "{:?}", an.lints);
    assert_eq!(dead[0].pc, 1);
    assert!(dead[0].msg.contains("1..3"), "{}", dead[0].msg);
}

#[test]
fn allocating_loop_without_calls_is_linted() {
    let mut b = ClassBuilder::new("A");
    let a = b.pool(Const::Class("A".to_string()));
    let def = b
        .method(
            MethodBuilder::of_static("m")
                .locals(1)
                .ops([
                    Op::ConstInt(10),
                    Op::Store(0),
                    Op::New(a), // loop body start (pc 2)
                    Op::Pop,
                    Op::Load(0),
                    Op::ConstInt(1),
                    Op::Sub,
                    Op::Dup,
                    Op::Store(0),
                    Op::JumpIfTrue(2),
                    Op::Return,
                ])
                .build(),
        )
        .build();
    let (table, ns) = table_with(IntrinsicRegistry::new(), vec![def]);
    let cls = table.lookup(ns, "A").unwrap();
    let m = table.find_method(cls, "m").unwrap();

    let an = analyze(&table);
    assert!(!an.is_bailed(m));
    assert!(an
        .lints
        .iter()
        .any(|l| l.kind == LintKind::AllocInLoopNoSafepoint && l.pc == 2));
}

#[test]
fn join_laws_hold_exhaustively() {
    use Region::*;
    const ALL: [Region; 5] = [Local, KernelConst, SharedFrozen, MayCross, Top];
    for a in ALL {
        assert_eq!(a.join(a), a, "idempotence: {a:?}");
        assert_eq!(a.join(Top), Top, "Top absorbs: {a:?}");
        for b in ALL {
            assert_eq!(a.join(b), b.join(a), "commutativity: {a:?} {b:?}");
            for c in ALL {
                assert_eq!(
                    a.join(b).join(c),
                    a.join(b.join(c)),
                    "associativity: {a:?} {b:?} {c:?}"
                );
            }
        }
    }
    // The escape domain escalates with `max`, so its order is the law.
    assert!(EscapeClass::FrameLocal < EscapeClass::ProcessLocal);
    assert!(EscapeClass::ProcessLocal < EscapeClass::MayCross);
}

#[test]
fn cyclic_hierarchy_defeats_devirtualization_without_hanging() {
    let sub = ClassBuilder::new("B")
        .extends("A")
        .method(
            MethodBuilder::instance("get")
                .returns(TypeDesc::Class("A".to_string()))
                .ops([Op::Load(0), Op::ReturnVal])
                .build(),
        )
        .build();
    let (mut table, ns) = virtual_fixture(vec![sub]);
    let a_cls = table.lookup(ns, "A").unwrap();
    let b_cls = table.lookup(ns, "B").unwrap();
    let main = table.find_method(a_cls, "main").unwrap();
    // Corrupt the chain into a cycle: B's superclass is B itself. The
    // bounded subclass walk must bail (not spin), and CHA must treat the
    // site as unsharpenable rather than guess a target set.
    table.classes[b_cls.0 as usize].super_idx = Some(b_cls);

    let an = analyze(&table);
    assert!(an.devirt_table(main).is_empty(), "cyclic chain must not devirtualize");
    let (mono, _poly) = an.devirt_counts();
    assert_eq!(mono, 0);
}

#[test]
fn monitor_on_frame_local_receiver_is_elided() {
    let mut b = ClassBuilder::new("A");
    let o = b.pool(Const::Class("Object".to_string()));
    let def = b
        .method(
            MethodBuilder::of_static("m")
                .locals(1)
                .ops([
                    Op::New(o),
                    Op::Store(0),
                    Op::Load(0),
                    Op::MonitorEnter,
                    Op::Load(0),
                    Op::MonitorExit,
                    Op::Return,
                ])
                .build(),
        )
        .build();
    let (table, ns) = table_with(IntrinsicRegistry::new(), vec![def]);
    let cls = table.lookup(ns, "A").unwrap();
    let m = table.find_method(cls, "m").unwrap();

    let an = analyze(&table);
    assert_eq!(an.escape_class(m, 0), Some(EscapeClass::FrameLocal));
    assert_eq!(an.monitor_counts(), (2, 2));
    let bm = an.monitor_bitmap(m);
    assert_ne!(bm[0] & (1 << 3), 0, "enter at pc 3 elidable");
    assert_ne!(bm[0] & (1 << 5), 0, "exit at pc 5 elidable");
}

#[test]
fn monitor_on_escaping_receiver_is_not_elided() {
    let mut b = ClassBuilder::new("A");
    let o = b.pool(Const::Class("Object".to_string()));
    let def = b
        .method(
            MethodBuilder::of_static("m")
                .returns(obj())
                .locals(1)
                .ops([
                    Op::New(o),
                    Op::Store(0),
                    Op::Load(0),
                    Op::MonitorEnter,
                    Op::Load(0),
                    Op::MonitorExit,
                    Op::Load(0),
                    Op::ReturnVal,
                ])
                .build(),
        )
        .build();
    let (table, ns) = table_with(IntrinsicRegistry::new(), vec![def]);
    let cls = table.lookup(ns, "A").unwrap();
    let m = table.find_method(cls, "m").unwrap();

    let an = analyze(&table);
    // The receiver is returned, so it may outlive the frame: both monitor
    // ops must stay dynamic.
    assert_eq!(an.escape_class(m, 0), Some(EscapeClass::MayCross));
    assert_eq!(an.monitor_counts(), (0, 2));
    assert!(an.monitor_bitmap(m).is_empty());
}

#[test]
fn loop_allocated_receiver_stays_frame_local_across_back_edge() {
    // Regression for the merge rule: the loop-head merge sees the
    // pre-loop `None` against the back edge's fresh site. Since every
    // tracked occurrence dies in that merge, the site must be silently
    // forgotten — not killed — and each iteration's monitor pair elides.
    let mut b = ClassBuilder::new("A");
    let o = b.pool(Const::Class("Object".to_string()));
    let def = b
        .method(
            MethodBuilder::of_static("m")
                .locals(2)
                .ops([
                    Op::ConstInt(10),
                    Op::Store(0),
                    Op::New(o), // pc 2: loop head, fresh lock each iteration
                    Op::Store(1),
                    Op::Load(1),
                    Op::MonitorEnter,
                    Op::Load(1),
                    Op::MonitorExit,
                    Op::Load(0),
                    Op::ConstInt(1),
                    Op::Sub,
                    Op::Dup,
                    Op::Store(0),
                    Op::JumpIfTrue(2),
                    Op::Return,
                ])
                .build(),
        )
        .build();
    let (table, ns) = table_with(IntrinsicRegistry::new(), vec![def]);
    let cls = table.lookup(ns, "A").unwrap();
    let m = table.find_method(cls, "m").unwrap();

    let an = analyze(&table);
    assert_eq!(an.escape_class(m, 2), Some(EscapeClass::FrameLocal));
    assert_eq!(an.monitor_counts(), (2, 2));
    let bm = an.monitor_bitmap(m);
    assert_ne!(bm[0] & (1 << 5), 0, "enter at pc 5 elidable");
    assert_ne!(bm[0] & (1 << 7), 0, "exit at pc 7 elidable");
}

#[test]
fn clean_receiver_store_gets_the_dies_local_bit() {
    let mut b = ClassBuilder::new("A").field("f", obj());
    let a = b.pool(Const::Class("A".to_string()));
    let f = b.pool(Const::Field {
        class: "A".to_string(),
        name: "f".to_string(),
    });
    let def = b
        .method(
            MethodBuilder::of_static("m")
                .param(obj())
                .ops([Op::New(a), Op::Load(0), Op::PutField(f), Op::Return])
                .build(),
        )
        .build();
    let (table, ns) = table_with(IntrinsicRegistry::new(), vec![def]);
    let cls = table.lookup(ns, "A").unwrap();
    let m = table.find_method(cls, "m").unwrap();

    let an = analyze(&table);
    // The store itself is not barrier-elidable (the value is a parameter,
    // region MayCross), but the receiver is provably still on its birth
    // nursery page — the dies-local and elide bits are independent.
    assert!(an.elision_bitmap(&table, m).is_empty());
    let lm = an.local_bitmap(m);
    assert_ne!(lm[0] & (1 << 2), 0, "dies-local bit at pc 2");
}

/// Two locks, two methods, opposite acquisition orders.
fn deadlock_fixture() -> (ClassTable, u32) {
    let mut b = ClassBuilder::new("A");
    let la = b.pool(Const::Class("LockA".to_string()));
    let lb = b.pool(Const::Class("LockB".to_string()));
    let nest = |outer, inner| {
        MethodBuilder::of_static(if outer == la { "ab" } else { "ba" })
            .locals(2)
            .ops([
                Op::New(outer),
                Op::Store(0),
                Op::Load(0),
                Op::MonitorEnter,
                Op::New(inner),
                Op::Store(1),
                Op::Load(1),
                Op::MonitorEnter,
                Op::Load(1),
                Op::MonitorExit,
                Op::Load(0),
                Op::MonitorExit,
                Op::Return,
            ])
            .build()
    };
    let def = b.method(nest(la, lb)).method(nest(lb, la)).build();
    table_with(
        IntrinsicRegistry::new(),
        vec![
            ClassBuilder::new("LockA").build(),
            ClassBuilder::new("LockB").build(),
            def,
        ],
    )
}

#[test]
fn opposite_lock_orders_are_linted_as_deadlock_candidates() {
    let (table, _) = deadlock_fixture();
    let an = analyze(&table);
    let deadlocks: Vec<_> = an
        .lints
        .iter()
        .filter(|l| l.kind == LintKind::DeadlockCandidate)
        .collect();
    assert_eq!(deadlocks.len(), 2, "both edges of the cycle lint: {:?}", an.lints);
    assert!(deadlocks.iter().any(|l| l.msg.contains("LockA -> LockB")));
    assert!(deadlocks.iter().any(|l| l.msg.contains("LockB -> LockA")));
}

#[test]
fn nested_same_class_locks_do_not_lint() {
    let mut b = ClassBuilder::new("A");
    let la = b.pool(Const::Class("LockA".to_string()));
    let def = b
        .method(
            MethodBuilder::of_static("aa")
                .locals(2)
                .ops([
                    Op::New(la),
                    Op::Store(0),
                    Op::Load(0),
                    Op::MonitorEnter,
                    Op::New(la),
                    Op::Store(1),
                    Op::Load(1),
                    Op::MonitorEnter,
                    Op::Load(1),
                    Op::MonitorExit,
                    Op::Load(0),
                    Op::MonitorExit,
                    Op::Return,
                ])
                .build(),
        )
        .build();
    let (table, _) = table_with(
        IntrinsicRegistry::new(),
        vec![ClassBuilder::new("LockA").build(), def],
    );
    let an = analyze(&table);
    // Re-entrant same-class nesting is routine; self-edges are excluded.
    assert!(
        !an.lints.iter().any(|l| l.kind == LintKind::DeadlockCandidate),
        "{:?}",
        an.lints
    );
}

#[test]
fn syscall_under_lock_is_linted() {
    let mut r = IntrinsicRegistry::new();
    r.register("sched.yield", vec![], None);
    let mut b = ClassBuilder::new("A");
    let la = b.pool(Const::Class("LockA".to_string()));
    let y = b.pool(Const::Intrinsic("sched.yield".to_string()));
    let def = b
        .method(
            MethodBuilder::of_static("m")
                .locals(1)
                .ops([
                    Op::New(la),
                    Op::Store(0),
                    Op::Load(0),
                    Op::MonitorEnter,
                    Op::Syscall(y),
                    Op::Load(0),
                    Op::MonitorExit,
                    Op::Return,
                ])
                .build(),
        )
        .build();
    let (table, _) = table_with(r, vec![ClassBuilder::new("LockA").build(), def]);
    let an = analyze(&table);
    let lint = an
        .lints
        .iter()
        .find(|l| l.kind == LintKind::LockHeldAcrossSyscall)
        .unwrap_or_else(|| panic!("expected lock-held-across-syscall: {:?}", an.lints));
    assert_eq!(lint.pc, 4);
    assert!(lint.msg.contains("sched.yield"), "{}", lint.msg);
    assert!(lint.msg.contains("LockA"), "{}", lint.msg);
}

#[test]
fn analyzer_bails_but_never_panics_on_mangled_bytecode() {
    let def = ClassBuilder::new("A")
        .method(MethodBuilder::of_static("m").op(Op::Return).build())
        .build();
    let (mut table, ns) = table_with(IntrinsicRegistry::new(), vec![def]);
    let cls = table.lookup(ns, "A").unwrap();
    let m = table.find_method(cls, "m").unwrap();

    for bad in [
        vec![Op::Pop, Op::Return],            // stack underflow
        vec![Op::Jump(1000)],                 // jump out of range
        vec![Op::Load(9), Op::Return],        // local out of range
        vec![Op::PutField(77), Op::Return],   // pool index out of range
        vec![Op::Dup, Op::Return],            // dup on empty stack
    ] {
        table.methods[m.0 as usize].code.ops = bad;
        let an = analyze(&table);
        assert!(an.is_bailed(m), "mangled method must bail");
        assert!(an.elision_bitmap(&table, m).is_empty());
    }
}
