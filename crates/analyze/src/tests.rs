//! Unit tests: region lattice, verdicts, lints, and never-panic bail-out.

use crate::{analyze, LintKind, Region, Verdict};
use kaffeos_vm::{
    ClassBuilder, ClassDef, ClassTable, Const, IntrinsicRegistry, MethodBuilder, Op, TypeDesc,
};

fn obj() -> TypeDesc {
    TypeDesc::Class("Object".to_string())
}

/// Loads the minimal guest stdlib plus the given classes into one table.
fn table_with(registry: IntrinsicRegistry, defs: Vec<ClassDef>) -> (ClassTable, u32) {
    let mut table = ClassTable::new(registry);
    let ns = table.create_namespace("t", None);
    let base = [
        ClassBuilder::root("Object").build(),
        ClassBuilder::new("String").build(),
        ClassBuilder::new("Exception").field("msg", TypeDesc::Str).build(),
    ];
    for def in base.into_iter().chain(defs) {
        table.load_class(ns, def.into_arc()).unwrap();
    }
    (table, ns)
}

#[test]
fn join_is_a_lattice() {
    use Region::*;
    for r in [Local, KernelConst, SharedFrozen, MayCross, Top] {
        assert_eq!(r.join(r), r);
        assert_eq!(r.join(Top), Top);
        assert_eq!(Top.join(r), Top);
    }
    assert_eq!(Local.join(SharedFrozen), MayCross);
    assert_eq!(SharedFrozen.join(KernelConst), MayCross);
    assert_eq!(Local.join(MayCross), MayCross);
}

#[test]
fn local_into_local_store_is_elided() {
    let mut b = ClassBuilder::new("A").field("f", obj());
    let a = b.pool(Const::Class("A".to_string()));
    let o = b.pool(Const::Class("Object".to_string()));
    let f = b.pool(Const::Field {
        class: "A".to_string(),
        name: "f".to_string(),
    });
    let def = b
        .method(
            MethodBuilder::of_static("m")
                .ops([Op::New(a), Op::New(o), Op::PutField(f), Op::Return])
                .build(),
        )
        .build();
    let (table, ns) = table_with(IntrinsicRegistry::new(), vec![def]);
    let cls = table.lookup(ns, "A").unwrap();
    let m = table.find_method(cls, "m").unwrap();

    let an = analyze(&table);
    assert_eq!(an.site(m, 2).expect("store site").verdict, Verdict::Elide);
    let bm = an.elision_bitmap(&table, m);
    assert_eq!(bm.len(), 1);
    assert_ne!(bm[0] & (1 << 2), 0, "bit for pc 2 must be set");
    assert!(an.lints.is_empty(), "nothing to lint: {:?}", an.lints);
}

#[test]
fn parameter_store_is_not_elided() {
    let mut b = ClassBuilder::new("A").field("f", obj());
    let a = b.pool(Const::Class("A".to_string()));
    let f = b.pool(Const::Field {
        class: "A".to_string(),
        name: "f".to_string(),
    });
    let def = b
        .method(
            MethodBuilder::of_static("m")
                .param(obj())
                .ops([Op::New(a), Op::Load(0), Op::PutField(f), Op::Return])
                .build(),
        )
        .build();
    let (table, ns) = table_with(IntrinsicRegistry::new(), vec![def]);
    let cls = table.lookup(ns, "A").unwrap();
    let m = table.find_method(cls, "m").unwrap();

    let an = analyze(&table);
    let site = an.site(m, 2).expect("store site");
    assert_eq!(site.verdict, Verdict::Unknown);
    assert_eq!(site.val, Region::MayCross);
    assert!(an.elision_bitmap(&table, m).is_empty());
}

#[test]
fn static_call_summary_keeps_store_elidable() {
    let mut b = ClassBuilder::new("A").field("f", obj());
    let a = b.pool(Const::Class("A".to_string()));
    let o = b.pool(Const::Class("Object".to_string()));
    let f = b.pool(Const::Field {
        class: "A".to_string(),
        name: "f".to_string(),
    });
    let mk = b.pool(Const::Method {
        class: "A".to_string(),
        name: "mk".to_string(),
    });
    let def = b
        .method(
            MethodBuilder::of_static("mk")
                .returns(obj())
                .ops([Op::New(o), Op::ReturnVal])
                .build(),
        )
        .method(
            MethodBuilder::of_static("main")
                .ops([Op::New(a), Op::CallStatic(mk), Op::PutField(f), Op::Return])
                .build(),
        )
        .build();
    let (table, ns) = table_with(IntrinsicRegistry::new(), vec![def]);
    let cls = table.lookup(ns, "A").unwrap();
    let main = table.find_method(cls, "main").unwrap();

    let an = analyze(&table);
    // `mk` provably returns a fresh local allocation, so the stored value
    // is Local and the barrier is elidable.
    assert_eq!(an.site(main, 2).expect("store site").verdict, Verdict::Elide);
}

#[test]
fn virtual_call_result_is_top_and_linted_as_receiver() {
    let mut b = ClassBuilder::new("A").field("f", obj());
    let a = b.pool(Const::Class("A".to_string()));
    let o = b.pool(Const::Class("Object".to_string()));
    let f = b.pool(Const::Field {
        class: "A".to_string(),
        name: "f".to_string(),
    });
    let get = b.pool(Const::Method {
        class: "A".to_string(),
        name: "get".to_string(),
    });
    let def = b
        .method(
            MethodBuilder::instance("get")
                .returns(TypeDesc::Class("A".to_string()))
                .ops([Op::Load(0), Op::ReturnVal])
                .build(),
        )
        .method(
            MethodBuilder::of_static("main")
                .ops([
                    Op::New(a),
                    Op::CallVirtual(get),
                    Op::New(o),
                    Op::PutField(f),
                    Op::Return,
                ])
                .build(),
        )
        .build();
    let (table, ns) = table_with(IntrinsicRegistry::new(), vec![def]);
    let cls = table.lookup(ns, "A").unwrap();
    let main = table.find_method(cls, "main").unwrap();

    let an = analyze(&table);
    let site = an.site(main, 3).expect("store site");
    assert_eq!(site.recv, Region::Top);
    assert_eq!(site.verdict, Verdict::Unknown);
    assert!(an
        .lints
        .iter()
        .any(|l| l.kind == LintKind::SegViolationCandidate && l.pc == 3 && l.method == "main"));
}

#[test]
fn shm_get_result_is_frozen_and_write_is_linted() {
    let mut r = IntrinsicRegistry::new();
    r.register("shm.get", vec![TypeDesc::Str, TypeDesc::Int], Some(obj()));
    let mut b = ClassBuilder::new("A").field("f", obj());
    let s = b.pool(Const::Str("buf".to_string()));
    let shm = b.pool(Const::Intrinsic("shm.get".to_string()));
    let a = b.pool(Const::Class("A".to_string()));
    let o = b.pool(Const::Class("Object".to_string()));
    let f = b.pool(Const::Field {
        class: "A".to_string(),
        name: "f".to_string(),
    });
    let def = b
        .method(
            MethodBuilder::of_static("m")
                .ops([
                    Op::ConstStr(s),
                    Op::ConstInt(0),
                    Op::Syscall(shm),
                    Op::CheckCast(a),
                    Op::New(o),
                    Op::PutField(f),
                    Op::Return,
                ])
                .build(),
        )
        .build();
    let (table, ns) = table_with(r, vec![def]);
    let cls = table.lookup(ns, "A").unwrap();
    let m = table.find_method(cls, "m").unwrap();

    let an = analyze(&table);
    let site = an.site(m, 5).expect("store site");
    assert_eq!(site.recv, Region::SharedFrozen, "CheckCast keeps the region");
    assert_eq!(site.verdict, Verdict::FrozenWrite);
    assert!(an
        .lints
        .iter()
        .any(|l| l.kind == LintKind::WriteAfterFreeze && l.pc == 5 && l.method == "m"));
}

#[test]
fn field_summary_flows_between_methods_regardless_of_order() {
    let mut b = ClassBuilder::new("A").field("f", obj());
    let a = b.pool(Const::Class("A".to_string()));
    let f = b.pool(Const::Field {
        class: "A".to_string(),
        name: "f".to_string(),
    });
    // `read` comes first so a single pass would see the field as still
    // Local; the fixpoint must circle back after `taint` raises it.
    let def = b
        .method(
            MethodBuilder::of_static("read")
                .ops([
                    Op::New(a),
                    Op::New(a),
                    Op::GetField(f),
                    Op::PutField(f),
                    Op::Return,
                ])
                .build(),
        )
        .method(
            MethodBuilder::of_static("taint")
                .param(obj())
                .ops([Op::New(a), Op::Load(0), Op::PutField(f), Op::Return])
                .build(),
        )
        .build();
    let (table, ns) = table_with(IntrinsicRegistry::new(), vec![def]);
    let cls = table.lookup(ns, "A").unwrap();
    let read = table.find_method(cls, "read").unwrap();

    let an = analyze(&table);
    let site = an.site(read, 3).expect("store site");
    assert_eq!(site.val, Region::MayCross, "field summary must taint reads");
    assert_eq!(site.verdict, Verdict::Unknown);
}

#[test]
fn unreachable_code_is_linted_but_implicit_tail_return_is_not() {
    let def = ClassBuilder::new("A")
        .method(
            MethodBuilder::of_static("m")
                .ops([Op::Return, Op::ConstInt(1), Op::Pop, Op::Return])
                .build(),
        )
        .build();
    let (table, _) = table_with(IntrinsicRegistry::new(), vec![def]);

    let an = analyze(&table);
    let dead: Vec<_> = an
        .lints
        .iter()
        .filter(|l| l.kind == LintKind::UnreachableCode)
        .collect();
    assert_eq!(dead.len(), 1, "{:?}", an.lints);
    assert_eq!(dead[0].pc, 1);
    assert!(dead[0].msg.contains("1..3"), "{}", dead[0].msg);
}

#[test]
fn allocating_loop_without_calls_is_linted() {
    let mut b = ClassBuilder::new("A");
    let a = b.pool(Const::Class("A".to_string()));
    let def = b
        .method(
            MethodBuilder::of_static("m")
                .locals(1)
                .ops([
                    Op::ConstInt(10),
                    Op::Store(0),
                    Op::New(a), // loop body start (pc 2)
                    Op::Pop,
                    Op::Load(0),
                    Op::ConstInt(1),
                    Op::Sub,
                    Op::Dup,
                    Op::Store(0),
                    Op::JumpIfTrue(2),
                    Op::Return,
                ])
                .build(),
        )
        .build();
    let (table, ns) = table_with(IntrinsicRegistry::new(), vec![def]);
    let cls = table.lookup(ns, "A").unwrap();
    let m = table.find_method(cls, "m").unwrap();

    let an = analyze(&table);
    assert!(!an.is_bailed(m));
    assert!(an
        .lints
        .iter()
        .any(|l| l.kind == LintKind::AllocInLoopNoSafepoint && l.pc == 2));
}

#[test]
fn analyzer_bails_but_never_panics_on_mangled_bytecode() {
    let def = ClassBuilder::new("A")
        .method(MethodBuilder::of_static("m").op(Op::Return).build())
        .build();
    let (mut table, ns) = table_with(IntrinsicRegistry::new(), vec![def]);
    let cls = table.lookup(ns, "A").unwrap();
    let m = table.find_method(cls, "m").unwrap();

    for bad in [
        vec![Op::Pop, Op::Return],            // stack underflow
        vec![Op::Jump(1000)],                 // jump out of range
        vec![Op::Load(9), Op::Return],        // local out of range
        vec![Op::PutField(77), Op::Return],   // pool index out of range
        vec![Op::Dup, Op::Return],            // dup on empty stack
    ] {
        table.methods[m.0 as usize].code.ops = bad;
        let an = analyze(&table);
        assert!(an.is_bailed(m), "mangled method must bail");
        assert!(an.elision_bitmap(&table, m).is_empty());
    }
}
