//! Static heap-flow analysis over verified bytecode — `kaffeos-analyze`.
//!
//! KaffeOS enforces heap isolation with *dynamic* write barriers: every
//! reference store checks the Figure-2 legality matrix at runtime and
//! rejects illegal cross-heap edges as segmentation violations (§2, §4.3).
//! This crate adds the *static* half of that story: an interprocedural
//! abstract interpretation over the same verified `Op` stream that
//! classifies every value by the **heap region** it may live on and every
//! reference-store site by whether it can possibly cross a heap boundary.
//!
//! Two products fall out:
//!
//! 1. **Barrier elision.** A store proven `Local → Local` (both the
//!    receiver and the stored value live on the running process's own
//!    allocation heap, or are null) is same-heap into an unfrozen object
//!    under every execution, so its legality checks are dead weight. The
//!    analysis emits a per-method bitmap of such sites; the interpreter
//!    skips the barrier's host-side checks there while charging the exact
//!    same *virtual* cycle cost, so traces, profiles and Table-1 numbers
//!    are unchanged.
//! 2. **Cross-heap lints.** Sites that definitely or possibly violate the
//!    matrix — writes into frozen shared objects, stores whose operands
//!    escape local reasoning — plus unreachable code and
//!    allocation-in-loop patterns, each mapped back to the Cup source
//!    line via the method debug tables.
//!
//! # The region lattice
//!
//! ```text
//!                Top
//!                 |
//!              MayCross
//!            /    |      \
//!        Local KernelConst SharedFrozen
//!            \    |      /
//!             (bottom)
//! ```
//!
//! `Local` — null, a primitive, or an object allocated on the running
//! process's own heap (all guest allocation sites: `New`, `NewArray`,
//! string ops, interning; per-process statics objects; procfs reply
//! strings). `KernelConst` — a kernel-pinned constant (reserved; no guest
//! generator today). `SharedFrozen` — an object on a frozen shared heap
//! (`shm.get`). `MayCross` — one of the above, statically unknown (method
//! parameters, most fields, unknown intrinsics). `Top` — anything,
//! including values returned through virtual dispatch.
//!
//! Joining two *distinct* definite regions yields `MayCross`; joining
//! anything with `Top` yields `Top`.
//!
//! # Soundness
//!
//! The analysis is context-insensitive and conservative: parameters and
//! exception objects enter as `MayCross`, virtual-call results as `Top`,
//! and any method whose bytecode cannot be followed (unverified input) is
//! abandoned with no elisions. Field summaries are global monotone joins
//! over every store site in the program, keyed by the *declaring* class
//! of the field slot, so reads through a subclass or superclass receiver
//! observe the same summary. The dynamic oracle closes the loop: the
//! fault-sweep soundness test asserts every runtime segmentation
//! violation lands on a site this crate classified as non-elidable, and
//! debug builds re-run the full legality check inside
//! `store_ref_elided`.

use std::collections::HashMap;

use kaffeos_vm::{ClassIdx, ClassTable, MethodIdx, Op, RConst, TypeDesc};

/// Abstract heap region of a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Null, a primitive, or an object on the running process's own heap.
    Local,
    /// A kernel-pinned constant (reserved: no guest-reachable generator).
    KernelConst,
    /// An object on a frozen shared heap.
    SharedFrozen,
    /// Unknown mix of the definite regions.
    MayCross,
    /// Anything at all (virtual dispatch results).
    Top,
}

impl Region {
    /// Least upper bound.
    pub fn join(self, other: Region) -> Region {
        use Region::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Top, _) | (_, Top) => Top,
            _ => MayCross,
        }
    }

    /// Short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Region::Local => "local",
            Region::KernelConst => "kernel-const",
            Region::SharedFrozen => "shared-frozen",
            Region::MayCross => "may-cross",
            Region::Top => "top",
        }
    }
}

/// Static classification of one reference-store site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Proven `Local → Local`: same-heap, unfrozen — barrier elidable.
    Elide,
    /// Proven legal but cross-heap (needs its entry/exit items): the
    /// barrier must run.
    LegalCross,
    /// Cannot be proven either way: the barrier polices it at runtime.
    Unknown,
    /// Receiver is definitely frozen-shared: every ref store here is a
    /// `FrozenSharedField` violation.
    FrozenWrite,
}

/// One analyzed reference-store site (`PutField` / `PutStatic` / `AStore`
/// with a reference operand).
#[derive(Debug, Clone, Copy)]
pub struct StoreSite {
    /// Containing method.
    pub method: MethodIdx,
    /// Instruction index of the store.
    pub pc: u32,
    /// Region of the object stored *into*.
    pub recv: Region,
    /// Region of the value stored.
    pub val: Region,
    /// Static verdict.
    pub verdict: Verdict,
}

/// Lint categories emitted by the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintKind {
    /// A store whose operands escape local reasoning badly enough that an
    /// illegal cross-heap edge cannot be ruled out.
    SegViolationCandidate,
    /// A reference store whose receiver is definitely on a frozen shared
    /// heap — guaranteed `FrozenSharedField` violation if executed.
    WriteAfterFreeze,
    /// Instructions no execution can reach.
    UnreachableCode,
    /// A loop that allocates on every iteration but contains no call or
    /// syscall — it can burn its memlimit without ever interacting with
    /// the kernel.
    AllocInLoopNoSafepoint,
}

impl LintKind {
    /// Short stable label (the allowlist key prefix).
    pub fn label(self) -> &'static str {
        match self {
            LintKind::SegViolationCandidate => "seg-violation-candidate",
            LintKind::WriteAfterFreeze => "write-after-freeze",
            LintKind::UnreachableCode => "unreachable-code",
            LintKind::AllocInLoopNoSafepoint => "alloc-in-loop-no-safepoint",
        }
    }
}

/// One diagnostic, mapped back to the Cup source when debug line tables
/// are present.
#[derive(Debug, Clone)]
pub struct Lint {
    /// Category.
    pub kind: LintKind,
    /// Declaring class name.
    pub class: String,
    /// Method name.
    pub method: String,
    /// Instruction index.
    pub pc: u32,
    /// Source line, when the method has a debug table.
    pub line: Option<u32>,
    /// Human-readable detail.
    pub msg: String,
}

impl Lint {
    /// Stable allowlist key: category plus qualified method. Deliberately
    /// excludes pc/line so innocuous edits don't churn the allowlist.
    pub fn key(&self) -> String {
        format!("{} {}.{}", self.kind.label(), self.class, self.method)
    }
}

impl core::fmt::Display for Lint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}: {}.{} at pc {}",
            self.kind.label(),
            self.class,
            self.method,
            self.pc
        )?;
        if let Some(line) = self.line {
            write!(f, " (line {line})")?;
        }
        write!(f, ": {}", self.msg)
    }
}

/// Abstract machine state at one pc: a region per local and stack slot.
#[derive(Debug, Clone, PartialEq)]
struct AbsState {
    locals: Vec<Region>,
    stack: Vec<Region>,
}

/// Analysis results plus the interprocedural summaries they were computed
/// from. Re-running [`Analysis::run`] after more classes load re-reaches
/// the global fixpoint (summaries only move up the lattice) and rebuilds
/// every site verdict, so callers must republish elision bitmaps after
/// each load batch.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Return-region summary per method (`None` = no return observed:
    /// the method never completes normally, or is not yet analyzed).
    summaries: Vec<Option<Region>>,
    /// Instance-field summaries keyed by (declaring class, slot): the join
    /// of every value ever stored into that slot, program-wide.
    fields: HashMap<(u32, u16), Region>,
    /// Static-field summaries keyed by (class, slot).
    statics: HashMap<(u32, u16), Region>,
    /// Join of every reference ever stored into any array element.
    array_elems: Option<Region>,
    /// Every reference-store site, keyed by (method, pc).
    sites: HashMap<(u32, u32), StoreSite>,
    /// Diagnostics from the last `run`.
    pub lints: Vec<Lint>,
    /// Methods whose bytecode could not be followed (unverified input);
    /// they get no sites and no elisions.
    bailed: Vec<u32>,
    /// Set during a fixpoint pass when any global summary moved.
    changed: bool,
}

/// Runs the full analysis over every method currently loaded.
pub fn analyze(table: &ClassTable) -> Analysis {
    let mut a = Analysis::default();
    a.run(table);
    a
}

impl Analysis {
    /// (Re)analyzes every method in `table` to a global fixpoint, then
    /// rebuilds site verdicts and lints. Idempotent; summaries accumulated
    /// by previous runs are kept (they only move up the lattice), so this
    /// is also the incremental entry point after loading more classes.
    pub fn run(&mut self, table: &ClassTable) {
        self.summaries.resize(table.methods.len(), None);
        self.sites.clear();
        self.lints.clear();
        self.bailed.clear();

        // Phase 1: fixpoint over the call graph. Each pass re-analyzes
        // every method, joining return regions and field stores into the
        // global summaries; stop when a full pass changes nothing. The
        // lattice is finite and all updates are joins, so this terminates.
        loop {
            self.changed = false;
            for i in 0..table.methods.len() {
                self.run_method(table, MethodIdx(i as u32));
            }
            if !self.changed {
                break;
            }
        }

        // Phase 2: one collecting pass with the summaries frozen.
        for i in 0..table.methods.len() {
            let midx = MethodIdx(i as u32);
            match self.run_method(table, midx) {
                None => self.bailed.push(i as u32),
                Some(states) => self.collect_method(table, midx, &states),
            }
        }
        self.lints.sort_by(|a, b| {
            (&a.class, &a.method, a.pc, a.kind.label())
                .cmp(&(&b.class, &b.method, b.pc, b.kind.label()))
        });
    }

    /// Static verdict for a store site, if the analysis saw one there.
    pub fn site(&self, method: MethodIdx, pc: u32) -> Option<&StoreSite> {
        self.sites.get(&(method.0, pc))
    }

    /// All analyzed store sites (unordered).
    pub fn sites(&self) -> impl Iterator<Item = &StoreSite> {
        self.sites.values()
    }

    /// Whether the method's bytecode could not be followed.
    pub fn is_bailed(&self, method: MethodIdx) -> bool {
        self.bailed.contains(&method.0)
    }

    /// Barrier-elision bitmap for a method: bit `pc` set ⇔ the store at
    /// `pc` is proven `Local → Local`. Empty when nothing is elidable.
    pub fn elision_bitmap(&self, table: &ClassTable, method: MethodIdx) -> Vec<u64> {
        let Some(m) = table.methods.get(method.0 as usize) else {
            return Vec::new();
        };
        let mut bitmap = vec![0u64; m.code.ops.len().div_ceil(64)];
        let mut any = false;
        for site in self.sites.values() {
            if site.method == method && site.verdict == Verdict::Elide {
                bitmap[(site.pc / 64) as usize] |= 1 << (site.pc % 64);
                any = true;
            }
        }
        if any {
            bitmap
        } else {
            Vec::new()
        }
    }

    /// (elidable, total) reference-store sites across the whole program.
    pub fn elision_counts(&self) -> (usize, usize) {
        let elided = self
            .sites
            .values()
            .filter(|s| s.verdict == Verdict::Elide)
            .count();
        (elided, self.sites.len())
    }

    // ---- intra-method pass -------------------------------------------------

    /// Abstractly interprets one method: a verifier-shaped worklist over
    /// `AbsState`s. Returns the per-pc states, or `None` when the bytecode
    /// cannot be followed (ill-typed input — never panics).
    fn run_method(
        &mut self,
        table: &ClassTable,
        midx: MethodIdx,
    ) -> Option<HashMap<u32, AbsState>> {
        let m = table.methods.get(midx.0 as usize)?;
        let code = &m.code;

        let mut locals = Vec::with_capacity(code.max_locals as usize);
        // Receiver and parameters arrive from arbitrary call sites.
        for _ in 0..m.arg_slots() {
            locals.push(Region::MayCross);
        }
        if locals.len() > code.max_locals as usize {
            return None;
        }
        locals.resize(code.max_locals as usize, Region::Local);

        let mut states: HashMap<u32, AbsState> = HashMap::new();
        let mut worklist: Vec<u32> = Vec::new();
        let entry = AbsState {
            locals,
            stack: Vec::new(),
        };
        merge_into(&mut states, &mut worklist, code.ops.len(), 0, entry)?;

        while let Some(pc) = worklist.pop() {
            let mut state = states.get(&pc)?.clone();
            let Some(&op) = code.ops.get(pc as usize) else {
                continue; // fall off the end: implicit return
            };
            // Exception handlers observe the locals here with the thrown
            // object (arbitrary provenance) as the only stack entry.
            for h in &code.handlers {
                if pc >= h.start && pc < h.end {
                    let hstate = AbsState {
                        locals: state.locals.clone(),
                        stack: vec![Region::MayCross],
                    };
                    merge_into(&mut states, &mut worklist, code.ops.len(), h.target, hstate)?;
                }
            }
            let class = table.classes.get(m.class.0 as usize)?;
            let flow = self.transfer(table, midx, op, &class.rpool, &mut state)?;
            match flow {
                Flow::Fall => {
                    merge_into(&mut states, &mut worklist, code.ops.len(), pc + 1, state)?;
                }
                Flow::JumpTo(t) => {
                    merge_into(&mut states, &mut worklist, code.ops.len(), t, state)?;
                }
                Flow::BranchTo(t) => {
                    merge_into(&mut states, &mut worklist, code.ops.len(), t, state.clone())?;
                    merge_into(&mut states, &mut worklist, code.ops.len(), pc + 1, state)?;
                }
                Flow::Stop => {}
            }
        }
        Some(states)
    }

    /// Transfer function for one op. Updates the global summaries (joins
    /// only) and sets `self.changed` when they move.
    fn transfer(
        &mut self,
        table: &ClassTable,
        midx: MethodIdx,
        op: Op,
        rpool: &[RConst],
        state: &mut AbsState,
    ) -> Option<Flow> {
        use Region::*;
        let pop = |state: &mut AbsState| state.stack.pop();
        match op {
            // Constants and every guest allocation site are Local.
            Op::ConstNull | Op::ConstInt(_) | Op::ConstFloat(_) => state.stack.push(Local),
            Op::ConstStr(_) => state.stack.push(Local),
            Op::Load(slot) => {
                let r = *state.locals.get(slot as usize)?;
                state.stack.push(r);
            }
            Op::Store(slot) => {
                let r = pop(state)?;
                *state.locals.get_mut(slot as usize)? = r;
            }
            Op::Pop => {
                pop(state)?;
            }
            Op::Dup => {
                let r = *state.stack.last()?;
                state.stack.push(r);
            }
            Op::Swap => {
                let n = state.stack.len();
                if n < 2 {
                    return None;
                }
                state.stack.swap(n - 1, n - 2);
            }
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Rem
            | Op::Shl
            | Op::Shr
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::FAdd
            | Op::FSub
            | Op::FMul
            | Op::FDiv
            | Op::CmpEq
            | Op::CmpNe
            | Op::CmpLt
            | Op::CmpLe
            | Op::CmpGt
            | Op::CmpGe
            | Op::FCmpEq
            | Op::FCmpLt
            | Op::FCmpLe
            | Op::FCmpGt
            | Op::FCmpGe
            | Op::RefEq
            | Op::RefNe
            | Op::StrEq
            | Op::StrCharAt => {
                pop(state)?;
                pop(state)?;
                state.stack.push(Local);
            }
            Op::Neg | Op::FNeg | Op::I2F | Op::F2I | Op::StrLen | Op::ParseInt | Op::ArrayLen => {
                pop(state)?;
                state.stack.push(Local);
            }
            Op::StrConcat => {
                pop(state)?;
                pop(state)?;
                state.stack.push(Local);
            }
            Op::Intern | Op::ToStr => {
                pop(state)?;
                state.stack.push(Local);
            }
            Op::Substr => {
                pop(state)?;
                pop(state)?;
                pop(state)?;
                state.stack.push(Local);
            }
            Op::Jump(t) => return Some(Flow::JumpTo(t)),
            Op::JumpIfTrue(t) | Op::JumpIfFalse(t) => {
                pop(state)?;
                return Some(Flow::BranchTo(t));
            }
            Op::Return => return Some(Flow::Stop),
            Op::ReturnVal => {
                let r = pop(state)?;
                let m = table.methods.get(midx.0 as usize)?;
                if m.ret.as_ref().is_some_and(TypeDesc::is_reference) {
                    self.join_summary(midx, r);
                }
                return Some(Flow::Stop);
            }
            Op::New(_) | Op::NewArray(_) => {
                if matches!(op, Op::NewArray(_)) {
                    pop(state)?; // length
                }
                state.stack.push(Local);
            }
            Op::GetField(idx) => {
                let RConst::InstanceField { class, slot, ty } = rpool.get(idx as usize)? else {
                    return None;
                };
                pop(state)?; // receiver
                let r = if ty.is_reference() {
                    let key = (declaring_class(table, *class, *slot)?.0, *slot);
                    self.fields.get(&key).copied().unwrap_or(Local)
                } else {
                    Local
                };
                state.stack.push(r);
            }
            Op::PutField(idx) => {
                let RConst::InstanceField { class, slot, ty } = rpool.get(idx as usize)? else {
                    return None;
                };
                let val = pop(state)?;
                pop(state)?; // receiver (site verdicts read it from the pre-state)
                if ty.is_reference() {
                    let key = (declaring_class(table, *class, *slot)?.0, *slot);
                    self.join_field(key, val);
                }
            }
            Op::GetStatic(idx) => {
                let RConst::StaticField { class, slot, ty } = rpool.get(idx as usize)? else {
                    return None;
                };
                let r = if ty.is_reference() {
                    self.statics.get(&(class.0, *slot)).copied().unwrap_or(Local)
                } else {
                    Local
                };
                state.stack.push(r);
            }
            Op::PutStatic(idx) => {
                let RConst::StaticField { class, slot, ty } = rpool.get(idx as usize)? else {
                    return None;
                };
                let val = pop(state)?;
                if ty.is_reference() {
                    let key = (class.0, *slot);
                    let cur = self.statics.get(&key).copied().unwrap_or(Local);
                    let next = cur.join(val);
                    if next != cur {
                        self.statics.insert(key, next);
                        self.changed = true;
                    }
                }
            }
            Op::NullCheck | Op::MonitorEnter | Op::MonitorExit => {
                pop(state)?;
            }
            Op::InstanceOf(_) => {
                pop(state)?;
                state.stack.push(Local);
            }
            Op::CheckCast(_) => {
                // A cast returns the same object: the region flows through.
                let r = pop(state)?;
                state.stack.push(r);
            }
            Op::ALoad => {
                pop(state)?; // index
                pop(state)?; // array
                state.stack.push(self.array_elems.unwrap_or(Local));
            }
            Op::AStore => {
                let val = pop(state)?;
                pop(state)?; // index
                pop(state)?; // array (site verdicts read it from the pre-state)
                // Element type is not tracked; joining primitive stores in
                // is harmless (their regions are never consulted).
                let next = self.array_elems.unwrap_or(Local).join(val);
                if self.array_elems != Some(next) {
                    self.array_elems = Some(next);
                    self.changed = true;
                }
            }
            Op::CallStatic(idx) => {
                let RConst::DirectMethod(target) = rpool.get(idx as usize)? else {
                    return None;
                };
                let target = *target;
                let m = table.methods.get(target.0 as usize)?;
                let (nargs, ret) = (m.arg_slots(), m.ret.clone());
                for _ in 0..nargs {
                    pop(state)?;
                }
                if let Some(ret) = ret {
                    state.stack.push(self.call_region(&ret, Some(target)));
                }
            }
            Op::CallSpecial(idx) => {
                // `CallSpecial` dispatches through the *static* class's own
                // vtable slot (constructor/`super` semantics): the target is
                // fixed at link time, so its summary applies.
                let RConst::VirtualMethod { class, vslot, nargs, .. } = rpool.get(idx as usize)?
                else {
                    return None;
                };
                let target = *table
                    .classes
                    .get(class.0 as usize)?
                    .vtable
                    .get(*vslot as usize)?;
                let ret = table.methods.get(target.0 as usize)?.ret.clone();
                for _ in 0..*nargs {
                    pop(state)?;
                }
                if let Some(ret) = ret {
                    state.stack.push(self.call_region(&ret, Some(target)));
                }
            }
            Op::CallVirtual(idx) => {
                // Conservative at virtual dispatch: later loads may add
                // overriding methods, so the result is Top.
                let RConst::VirtualMethod { class, vslot, nargs, .. } = rpool.get(idx as usize)?
                else {
                    return None;
                };
                let target = *table
                    .classes
                    .get(class.0 as usize)?
                    .vtable
                    .get(*vslot as usize)?;
                let ret = table.methods.get(target.0 as usize)?.ret.clone();
                for _ in 0..*nargs {
                    pop(state)?;
                }
                if let Some(ret) = ret {
                    let r = if ret.is_reference() {
                        Region::Top
                    } else {
                        Local
                    };
                    state.stack.push(r);
                }
            }
            Op::Syscall(idx) => {
                let RConst::Intrinsic { id, .. } = rpool.get(idx as usize)? else {
                    return None;
                };
                let def = table.intrinsics().def(*id)?;
                let (name, nparams, ret) = (def.name.clone(), def.params.len(), def.ret.clone());
                for _ in 0..nparams {
                    pop(state)?;
                }
                if let Some(ret) = ret {
                    state.stack.push(intrinsic_region(&name, &ret));
                }
            }
            Op::Throw => {
                pop(state)?;
                return Some(Flow::Stop);
            }
        }
        Some(Flow::Fall)
    }

    /// Region pushed for a direct call's result.
    fn call_region(&self, ret: &TypeDesc, target: Option<MethodIdx>) -> Region {
        if !ret.is_reference() {
            return Region::Local;
        }
        match target.and_then(|t| self.summaries.get(t.0 as usize).copied().flatten()) {
            Some(r) => r,
            // No return observed yet: the callee never completes normally
            // (or the fixpoint has not reached it) — no value can flow, so
            // the optimistic bottom is sound and later passes refine it.
            None => Region::Local,
        }
    }

    fn join_summary(&mut self, midx: MethodIdx, r: Region) {
        let slot = &mut self.summaries[midx.0 as usize];
        let next = match *slot {
            Some(cur) => cur.join(r),
            None => r,
        };
        if *slot != Some(next) {
            *slot = Some(next);
            self.changed = true;
        }
    }

    fn join_field(&mut self, key: (u32, u16), r: Region) {
        let cur = self.fields.get(&key).copied().unwrap_or(Region::Local);
        let next = cur.join(r);
        if next != cur {
            self.fields.insert(key, next);
            self.changed = true;
        }
    }

    // ---- collection --------------------------------------------------------

    /// Derives store-site verdicts, unreachable-code and loop lints for
    /// one method from its fixpoint states.
    fn collect_method(
        &mut self,
        table: &ClassTable,
        midx: MethodIdx,
        states: &HashMap<u32, AbsState>,
    ) {
        let Some(m) = table.methods.get(midx.0 as usize) else {
            return;
        };
        let code = &m.code;
        let class_name = table
            .classes
            .get(m.class.0 as usize)
            .map(|c| c.name.clone())
            .unwrap_or_default();

        let lint = |kind: LintKind, pc: u32, msg: String| Lint {
            kind,
            class: class_name.clone(),
            method: m.name.clone(),
            pc,
            line: code.line_for(pc),
            msg,
        };

        // Store sites: classify from the state *before* each store op.
        for (pc, op) in code.ops.iter().enumerate() {
            let pc32 = pc as u32;
            let Some(state) = states.get(&pc32) else {
                continue;
            };
            let site = match *op {
                Op::PutField(idx) => {
                    let Some(RConst::InstanceField { ty, .. }) = table
                        .classes
                        .get(m.class.0 as usize)
                        .and_then(|c| c.rpool.get(idx as usize))
                    else {
                        continue;
                    };
                    if !ty.is_reference() {
                        continue;
                    }
                    // Stack: [... recv val]
                    let n = state.stack.len();
                    if n < 2 {
                        continue;
                    }
                    Some((state.stack[n - 2], state.stack[n - 1]))
                }
                Op::PutStatic(idx) => {
                    let Some(RConst::StaticField { ty, .. }) = table
                        .classes
                        .get(m.class.0 as usize)
                        .and_then(|c| c.rpool.get(idx as usize))
                    else {
                        continue;
                    };
                    if !ty.is_reference() {
                        continue;
                    }
                    let n = state.stack.len();
                    if n < 1 {
                        continue;
                    }
                    Some((Region::Local, state.stack[n - 1]))
                }
                Op::AStore => {
                    // Stack: [... arr idx val]. Element type is unknown
                    // statically; a primitive-element store is classified
                    // too, harmlessly — its verdict is never consulted
                    // (the interpreter only checks the bitmap for
                    // reference values, and a Local/Local verdict for a
                    // prim store elides nothing the barrier would do).
                    let n = state.stack.len();
                    if n < 3 {
                        continue;
                    }
                    Some((state.stack[n - 3], state.stack[n - 1]))
                }
                _ => None,
            };
            if let Some((recv, val)) = site {
                let verdict = classify(recv, val);
                self.sites.insert(
                    (midx.0, pc32),
                    StoreSite {
                        method: midx,
                        pc: pc32,
                        recv,
                        val,
                        verdict,
                    },
                );
                match verdict {
                    Verdict::FrozenWrite => self.lints.push(lint(
                        LintKind::WriteAfterFreeze,
                        pc32,
                        format!(
                            "reference store into frozen shared object ({} <- {})",
                            recv.label(),
                            val.label()
                        ),
                    )),
                    Verdict::Unknown
                        if recv == Region::Top
                            || (recv == Region::MayCross && val == Region::SharedFrozen) =>
                    {
                        self.lints.push(lint(
                            LintKind::SegViolationCandidate,
                            pc32,
                            format!(
                                "store cannot be proven legal ({} <- {})",
                                recv.label(),
                                val.label()
                            ),
                        ));
                    }
                    _ => {}
                }
            }
        }

        // Unreachable code: reachable-state gaps. The compiler's implicit
        // trailing Return on void methods is exempt (it is dead exactly
        // when every path already returned or loops forever).
        let mut run_start: Option<u32> = None;
        for pc in 0..code.ops.len() as u32 {
            let implicit_tail = pc as usize == code.ops.len() - 1
                && matches!(code.ops[pc as usize], Op::Return);
            let dead = !states.contains_key(&pc) && !implicit_tail;
            match (dead, run_start) {
                (true, None) => run_start = Some(pc),
                (false, Some(start)) => {
                    self.lints.push(lint(
                        LintKind::UnreachableCode,
                        start,
                        format!("instructions {start}..{pc} are unreachable"),
                    ));
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(start) = run_start {
            let end = code.ops.len() as u32;
            self.lints.push(lint(
                LintKind::UnreachableCode,
                start,
                format!("instructions {start}..{end} are unreachable"),
            ));
        }

        // Allocation-in-loop: a reachable back edge whose body allocates
        // but never calls out (no call, no syscall — so no foreign safe
        // points and no kernel interaction while the memlimit drains).
        let mut flagged: Option<u32> = None;
        for (pc, op) in code.ops.iter().enumerate() {
            let target = match *op {
                Op::Jump(t) | Op::JumpIfTrue(t) | Op::JumpIfFalse(t) => t,
                _ => continue,
            };
            if target as usize > pc || !states.contains_key(&(pc as u32)) {
                continue;
            }
            let body = &code.ops[target as usize..=pc];
            let allocates = body
                .iter()
                .position(|o| matches!(o, Op::New(_) | Op::NewArray(_)));
            let calls_out = body.iter().any(|o| {
                matches!(
                    o,
                    Op::CallStatic(_) | Op::CallVirtual(_) | Op::CallSpecial(_) | Op::Syscall(_)
                )
            });
            if let (Some(at), false) = (allocates, calls_out) {
                let alloc_pc = target + at as u32;
                if flagged != Some(alloc_pc) {
                    flagged = Some(alloc_pc);
                    self.lints.push(lint(
                        LintKind::AllocInLoopNoSafepoint,
                        alloc_pc,
                        format!("loop {}..{} allocates but never calls out", target, pc),
                    ));
                }
            }
        }
    }
}

/// Figure-2 verdict for a reference store given operand regions.
fn classify(recv: Region, val: Region) -> Verdict {
    use Region::*;
    match (recv, val) {
        (SharedFrozen, _) => Verdict::FrozenWrite,
        (Local, Local) => Verdict::Elide,
        // Own-heap receiver, definitely-shared value: a legal user→shared
        // edge — but it needs its entry/exit items, so the barrier runs.
        (Local, SharedFrozen | KernelConst) => Verdict::LegalCross,
        _ => Verdict::Unknown,
    }
}

/// Region of an intrinsic's reference result.
fn intrinsic_region(name: &str, ret: &TypeDesc) -> Region {
    if !ret.is_reference() {
        return Region::Local;
    }
    match name {
        // `shm.get` hands out objects on a frozen shared heap.
        "shm.get" => Region::SharedFrozen,
        // procfs replies are strings materialised on the *caller's* heap.
        "proc.status" | "proc.meminfo" | "proc.profile" => Region::Local,
        _ => Region::MayCross,
    }
}

/// Walks up the superclass chain to the class that declared `slot`, so
/// stores through a subclass receiver and reads through the superclass
/// share one field summary.
fn declaring_class(table: &ClassTable, mut c: ClassIdx, slot: u16) -> Option<ClassIdx> {
    loop {
        let lc = table.classes.get(c.0 as usize)?;
        match lc.super_idx {
            Some(s) if (slot as usize) < table.classes.get(s.0 as usize)?.instance_fields.len() => {
                c = s;
            }
            _ => return Some(c),
        }
    }
}

/// Merges `state` into the recorded state at `pc`, queueing `pc` when the
/// state is new or widened. Returns `None` on out-of-range targets or
/// merge-shape mismatches (ill-formed input — the method is abandoned).
fn merge_into(
    states: &mut HashMap<u32, AbsState>,
    worklist: &mut Vec<u32>,
    ops_len: usize,
    pc: u32,
    state: AbsState,
) -> Option<()> {
    if pc as usize > ops_len {
        return None;
    }
    match states.get_mut(&pc) {
        None => {
            states.insert(pc, state);
            worklist.push(pc);
        }
        Some(existing) => {
            if existing.stack.len() != state.stack.len()
                || existing.locals.len() != state.locals.len()
            {
                return None;
            }
            let mut changed = false;
            for (a, b) in existing.locals.iter_mut().zip(&state.locals) {
                let j = a.join(*b);
                if *a != j {
                    *a = j;
                    changed = true;
                }
            }
            for (a, b) in existing.stack.iter_mut().zip(&state.stack) {
                let j = a.join(*b);
                if *a != j {
                    *a = j;
                    changed = true;
                }
            }
            if changed {
                worklist.push(pc);
            }
        }
    }
    Some(())
}

enum Flow {
    Fall,
    JumpTo(u32),
    BranchTo(u32),
    Stop,
}

#[cfg(test)]
mod tests;
