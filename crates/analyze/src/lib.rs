//! Static heap-flow analysis over verified bytecode — `kaffeos-analyze`.
//!
//! KaffeOS enforces heap isolation with *dynamic* write barriers: every
//! reference store checks the Figure-2 legality matrix at runtime and
//! rejects illegal cross-heap edges as segmentation violations (§2, §4.3).
//! This crate adds the *static* half of that story: an interprocedural
//! abstract interpretation over the same verified `Op` stream that
//! classifies every value by the **heap region** it may live on and every
//! reference-store site by whether it can possibly cross a heap boundary.
//!
//! Two products fall out:
//!
//! 1. **Barrier elision.** A store proven `Local → Local` (both the
//!    receiver and the stored value live on the running process's own
//!    allocation heap, or are null) is same-heap into an unfrozen object
//!    under every execution, so its legality checks are dead weight. The
//!    analysis emits a per-method bitmap of such sites; the interpreter
//!    skips the barrier's host-side checks there while charging the exact
//!    same *virtual* cycle cost, so traces, profiles and Table-1 numbers
//!    are unchanged.
//! 2. **Cross-heap lints.** Sites that definitely or possibly violate the
//!    matrix — writes into frozen shared objects, stores whose operands
//!    escape local reasoning — plus unreachable code and
//!    allocation-in-loop patterns, each mapped back to the Cup source
//!    line via the method debug tables.
//! 3. **Hierarchy facts (CHA).** A class-hierarchy walk over the loaded
//!    vtables computes, per `CallVirtual` site, the set of reachable
//!    override targets. Monomorphic sites get sharpened call summaries
//!    (replacing the old blanket `Top`) and a devirtualization table the
//!    JIT compiles into direct calls; because class loads only ever *add*
//!    overrides, the kernel republishes (and thereby revokes) these facts
//!    after every load batch.
//! 4. **Escape facts.** A per-method escape pass classifies every
//!    allocation site as never-leaves-frame / never-leaves-process /
//!    may-cross. Frame-local receivers let the interpreter and JIT elide
//!    `MonitorEnter`/`MonitorExit` bookkeeping (no other thread can ever
//!    observe the object), and stores into still-nursery-resident
//!    receivers skip the remembered-set `note_store` probe. The same pass
//!    builds a static lock-order graph powering the `deadlock-candidate`
//!    and `lock-held-across-syscall` lints.
//!
//! # The region lattice
//!
//! ```text
//!                Top
//!                 |
//!              MayCross
//!            /    |      \
//!        Local KernelConst SharedFrozen
//!            \    |      /
//!             (bottom)
//! ```
//!
//! `Local` — null, a primitive, or an object allocated on the running
//! process's own heap (all guest allocation sites: `New`, `NewArray`,
//! string ops, interning; per-process statics objects; procfs reply
//! strings). `KernelConst` — a kernel-pinned constant (reserved; no guest
//! generator today). `SharedFrozen` — an object on a frozen shared heap
//! (`shm.get`). `MayCross` — one of the above, statically unknown (method
//! parameters, most fields, unknown intrinsics). `Top` — anything,
//! including values returned through virtual dispatch the hierarchy walk
//! could not resolve.
//!
//! Joining two *distinct* definite regions yields `MayCross`; joining
//! anything with `Top` yields `Top`.
//!
//! # Soundness
//!
//! The analysis is context-insensitive and conservative: parameters and
//! exception objects enter as `MayCross`, virtual-call results as the
//! join over every CHA-reachable override's summary (`Top` when the
//! hierarchy walk bails), and any method whose bytecode cannot be
//! followed (unverified input) is abandoned with no elisions. Field summaries are global monotone joins
//! over every store site in the program, keyed by the *declaring* class
//! of the field slot, so reads through a subclass or superclass receiver
//! observe the same summary. The dynamic oracle closes the loop: the
//! fault-sweep soundness test asserts every runtime segmentation
//! violation lands on a site this crate classified as non-elidable, and
//! debug builds re-run the full legality check inside
//! `store_ref_elided`.

use std::collections::HashMap;

use kaffeos_vm::{ClassIdx, ClassTable, MethodIdx, Op, RConst, TypeDesc};

/// Abstract heap region of a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Null, a primitive, or an object on the running process's own heap.
    Local,
    /// A kernel-pinned constant (reserved: no guest-reachable generator).
    KernelConst,
    /// An object on a frozen shared heap.
    SharedFrozen,
    /// Unknown mix of the definite regions.
    MayCross,
    /// Anything at all (virtual dispatch results).
    Top,
}

impl Region {
    /// Least upper bound.
    pub fn join(self, other: Region) -> Region {
        use Region::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Top, _) | (_, Top) => Top,
            _ => MayCross,
        }
    }

    /// Short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Region::Local => "local",
            Region::KernelConst => "kernel-const",
            Region::SharedFrozen => "shared-frozen",
            Region::MayCross => "may-cross",
            Region::Top => "top",
        }
    }
}

/// Static classification of one reference-store site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Proven `Local → Local`: same-heap, unfrozen — barrier elidable.
    Elide,
    /// Proven legal but cross-heap (needs its entry/exit items): the
    /// barrier must run.
    LegalCross,
    /// Cannot be proven either way: the barrier polices it at runtime.
    Unknown,
    /// Receiver is definitely frozen-shared: every ref store here is a
    /// `FrozenSharedField` violation.
    FrozenWrite,
}

/// One analyzed reference-store site (`PutField` / `PutStatic` / `AStore`
/// with a reference operand).
#[derive(Debug, Clone, Copy)]
pub struct StoreSite {
    /// Containing method.
    pub method: MethodIdx,
    /// Instruction index of the store.
    pub pc: u32,
    /// Region of the object stored *into*.
    pub recv: Region,
    /// Region of the value stored.
    pub val: Region,
    /// Static verdict.
    pub verdict: Verdict,
}

/// Lint categories emitted by the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintKind {
    /// A store whose operands escape local reasoning badly enough that an
    /// illegal cross-heap edge cannot be ruled out.
    SegViolationCandidate,
    /// A reference store whose receiver is definitely on a frozen shared
    /// heap — guaranteed `FrozenSharedField` violation if executed.
    WriteAfterFreeze,
    /// Instructions no execution can reach.
    UnreachableCode,
    /// A loop that allocates on every iteration but contains no call or
    /// syscall — it can burn its memlimit without ever interacting with
    /// the kernel.
    AllocInLoopNoSafepoint,
    /// A monitor acquisition participating in a cycle of the static
    /// lock-order graph: some execution may acquire the same two lock
    /// classes in opposite orders.
    DeadlockCandidate,
    /// A syscall issued while at least one monitor is statically held —
    /// the kernel may block the thread (or kill the process) with the
    /// lock pinned.
    LockHeldAcrossSyscall,
}

impl LintKind {
    /// Short stable label (the allowlist key prefix).
    pub fn label(self) -> &'static str {
        match self {
            LintKind::SegViolationCandidate => "seg-violation-candidate",
            LintKind::WriteAfterFreeze => "write-after-freeze",
            LintKind::UnreachableCode => "unreachable-code",
            LintKind::AllocInLoopNoSafepoint => "alloc-in-loop-no-safepoint",
            LintKind::DeadlockCandidate => "deadlock-candidate",
            LintKind::LockHeldAcrossSyscall => "lock-held-across-syscall",
        }
    }
}

/// Escape verdict for one allocation site (`New` / `NewArray`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EscapeClass {
    /// No reference to the object ever leaves the allocating frame:
    /// monitor ops on it are elidable and it provably dies young.
    FrameLocal,
    /// References escape the frame, but only into objects proven to live
    /// on the allocating process's own heap (or its statics).
    ProcessLocal,
    /// A reference may cross a process boundary (call argument, return,
    /// throw, syscall, store into a non-local receiver, or lost track).
    MayCross,
}

impl EscapeClass {
    /// Short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            EscapeClass::FrameLocal => "frame-local",
            EscapeClass::ProcessLocal => "process-local",
            EscapeClass::MayCross => "may-cross",
        }
    }
}

/// One diagnostic, mapped back to the Cup source when debug line tables
/// are present.
#[derive(Debug, Clone)]
pub struct Lint {
    /// Category.
    pub kind: LintKind,
    /// Declaring class name.
    pub class: String,
    /// Method name.
    pub method: String,
    /// Instruction index.
    pub pc: u32,
    /// Source line, when the method has a debug table.
    pub line: Option<u32>,
    /// Human-readable detail.
    pub msg: String,
}

impl Lint {
    /// Stable allowlist key: category plus qualified method. Deliberately
    /// excludes pc/line so innocuous edits don't churn the allowlist.
    pub fn key(&self) -> String {
        format!("{} {}.{}", self.kind.label(), self.class, self.method)
    }
}

impl core::fmt::Display for Lint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}: {}.{} at pc {}",
            self.kind.label(),
            self.class,
            self.method,
            self.pc
        )?;
        if let Some(line) = self.line {
            write!(f, " (line {line})")?;
        }
        write!(f, ": {}", self.msg)
    }
}

/// Abstract machine state at one pc: a region per local and stack slot.
#[derive(Debug, Clone, PartialEq)]
struct AbsState {
    locals: Vec<Region>,
    stack: Vec<Region>,
}

/// Abstract escape state at one pc. A slot holds `Some(site)` when it
/// provably refers to the object born at that allocation site on *every*
/// path; `clean` is the set of sites with no possible GC point since
/// their allocation (the object is still on its birth nursery page);
/// `held` is the sorted set of lock identities statically held here;
/// `mon_held` is the site-sorted multiset of pending tracked monitors:
/// `(site, gc_seen)` for every `MonitorEnter` that ran with a tracked
/// receiver and whose matching `MonitorExit` has not yet been seen.
/// Losing track of such a site mid-critical-section would let the enter
/// and exit disagree on elision, so merges kill it; `gc_seen` records a
/// possible GC point inside the critical section — an elided monitor is
/// absent from the monitor registry the collector scans, so a GC while it
/// is held would trace observably fewer roots.
#[derive(Debug, Clone, PartialEq)]
struct EscState {
    locals: Vec<Option<u16>>,
    stack: Vec<Option<u16>>,
    clean: Vec<u64>,
    held: Vec<u16>,
    mon_held: Vec<(u16, bool)>,
}

/// Empties the clean set: the op may trigger a nursery collection, after
/// which no tracked object is guaranteed to still sit on a nursery page.
/// Every pending monitor is marked GC-tainted for the same reason.
fn gc_point(state: &mut EscState) {
    state.clean.iter_mut().for_each(|w| *w = 0);
    state.mon_held.iter_mut().for_each(|e| e.1 = true);
}

/// Can this op raise a guest exception (and therefore enter an exception
/// handler)? Conservative: only provably-total ops return `false`. Used
/// to avoid propagating escape state into handlers from pcs that cannot
/// reach them — handler entry implies an exception-object allocation, so
/// an over-eager edge would GC-taint every `sync` body's pending monitor
/// through the compiler-emitted release handler.
fn may_throw(op: &Op) -> bool {
    !matches!(
        op,
        Op::ConstNull
            | Op::ConstInt(_)
            | Op::ConstFloat(_)
            | Op::Load(_)
            | Op::Store(_)
            | Op::Pop
            | Op::Dup
            | Op::Swap
            | Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Neg
            | Op::Shl
            | Op::Shr
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::FAdd
            | Op::FSub
            | Op::FMul
            | Op::FDiv
            | Op::FNeg
            | Op::I2F
            | Op::F2I
            | Op::CmpEq
            | Op::CmpNe
            | Op::CmpLt
            | Op::CmpLe
            | Op::CmpGt
            | Op::CmpGe
            | Op::FCmpEq
            | Op::FCmpLt
            | Op::FCmpLe
            | Op::FCmpGt
            | Op::FCmpGe
            | Op::RefEq
            | Op::RefNe
            | Op::Jump(_)
            | Op::JumpIfTrue(_)
            | Op::JumpIfFalse(_)
            | Op::Return
            | Op::ReturnVal
    )
}

/// Analysis results plus the interprocedural summaries they were computed
/// from. Re-running [`Analysis::run`] after more classes load re-reaches
/// the global fixpoint (summaries only move up the lattice) and rebuilds
/// every site verdict, so callers must republish elision bitmaps after
/// each load batch.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Return-region summary per method (`None` = no return observed:
    /// the method never completes normally, or is not yet analyzed).
    summaries: Vec<Option<Region>>,
    /// Instance-field summaries keyed by (declaring class, slot): the join
    /// of every value ever stored into that slot, program-wide.
    fields: HashMap<(u32, u16), Region>,
    /// Static-field summaries keyed by (class, slot).
    statics: HashMap<(u32, u16), Region>,
    /// Join of every reference ever stored into any array element.
    array_elems: Option<Region>,
    /// Every reference-store site, keyed by (method, pc).
    sites: HashMap<(u32, u32), StoreSite>,
    /// Diagnostics from the last `run`.
    pub lints: Vec<Lint>,
    /// Methods whose bytecode could not be followed (unverified input);
    /// they get no sites and no elisions.
    bailed: Vec<u32>,
    /// Set during a fixpoint pass when any global summary moved.
    changed: bool,
    /// CHA reachable-target cache, keyed by (static class, vslot). Valid
    /// for one hierarchy generation: rebuilt on every `run`.
    cha: HashMap<(u32, u16), ChaTargets>,
    /// Devirtualization tables: per method, pc-sorted `(pc, target)` for
    /// monomorphic `CallVirtual` sites.
    devirt: HashMap<u32, Vec<(u32, MethodIdx)>>,
    /// Reachable `CallVirtual` site counts: (monomorphic, polymorphic).
    virt_sites: (usize, usize),
    /// Monitor-elision bitmaps per method (escape pass).
    mon_bitmaps: HashMap<u32, Vec<u64>>,
    /// Dies-local store bitmaps per method (escape pass).
    local_bitmaps: HashMap<u32, Vec<u64>>,
    /// Monitor-op counts: (elidable, total).
    mon_ops: (usize, usize),
    /// Escape verdict per allocation site, keyed by (method, pc).
    alloc_escape: HashMap<(u32, u32), EscapeClass>,
    /// Interned lock identities (allocation-site class names) for the
    /// static lock-order graph.
    lock_names: Vec<String>,
    /// Lock-order edges: (held identity, acquired identity, method, pc).
    lock_edges: Vec<(u16, u16, u32, u32)>,
}

/// CHA result for one (static class, vslot) pair.
#[derive(Debug, Clone)]
struct ChaTargets {
    /// Sorted, deduped reachable override targets over loaded subclasses.
    targets: Vec<MethodIdx>,
    /// False when the hierarchy walk bailed (cyclic/mangled superclass
    /// chain): the site must be treated as fully polymorphic.
    complete: bool,
}

/// Runs the full analysis over every method currently loaded.
pub fn analyze(table: &ClassTable) -> Analysis {
    let mut a = Analysis::default();
    a.run(table);
    a
}

impl Analysis {
    /// (Re)analyzes every method in `table` to a global fixpoint, then
    /// rebuilds site verdicts and lints. Idempotent; summaries accumulated
    /// by previous runs are kept (they only move up the lattice), so this
    /// is also the incremental entry point after loading more classes.
    pub fn run(&mut self, table: &ClassTable) {
        self.summaries.resize(table.methods.len(), None);
        self.sites.clear();
        self.lints.clear();
        self.bailed.clear();
        // Hierarchy-generation state: class loads only ever add overrides,
        // so these are recomputed from scratch against the current table.
        self.cha.clear();
        self.devirt.clear();
        self.virt_sites = (0, 0);
        self.mon_bitmaps.clear();
        self.local_bitmaps.clear();
        self.mon_ops = (0, 0);
        self.alloc_escape.clear();
        self.lock_names.clear();
        self.lock_edges.clear();

        // Phase 1: fixpoint over the call graph. Each pass re-analyzes
        // every method, joining return regions and field stores into the
        // global summaries; stop when a full pass changes nothing. The
        // lattice is finite and all updates are joins, so this terminates.
        loop {
            self.changed = false;
            for i in 0..table.methods.len() {
                self.run_method(table, MethodIdx(i as u32));
            }
            if !self.changed {
                break;
            }
        }

        // Phase 2: one collecting pass with the summaries frozen. The
        // escape pass runs after `collect_method` so it can consult the
        // freshly derived store-site regions when classifying escapes.
        for i in 0..table.methods.len() {
            let midx = MethodIdx(i as u32);
            match self.run_method(table, midx) {
                None => self.bailed.push(i as u32),
                Some(states) => {
                    self.collect_method(table, midx, &states);
                    self.collect_virtual_sites(table, midx, &states);
                    self.escape_method(table, midx);
                }
            }
        }
        self.deadlock_lints(table);
        self.lints.sort_by(|a, b| {
            (&a.class, &a.method, a.pc, a.kind.label())
                .cmp(&(&b.class, &b.method, b.pc, b.kind.label()))
        });
    }

    /// Static verdict for a store site, if the analysis saw one there.
    pub fn site(&self, method: MethodIdx, pc: u32) -> Option<&StoreSite> {
        self.sites.get(&(method.0, pc))
    }

    /// All analyzed store sites (unordered).
    pub fn sites(&self) -> impl Iterator<Item = &StoreSite> {
        self.sites.values()
    }

    /// Whether the method's bytecode could not be followed.
    pub fn is_bailed(&self, method: MethodIdx) -> bool {
        self.bailed.contains(&method.0)
    }

    /// Barrier-elision bitmap for a method: bit `pc` set ⇔ the store at
    /// `pc` is proven `Local → Local`. Empty when nothing is elidable.
    pub fn elision_bitmap(&self, table: &ClassTable, method: MethodIdx) -> Vec<u64> {
        let Some(m) = table.methods.get(method.0 as usize) else {
            return Vec::new();
        };
        let mut bitmap = vec![0u64; m.code.ops.len().div_ceil(64)];
        let mut any = false;
        for site in self.sites.values() {
            if site.method == method && site.verdict == Verdict::Elide {
                bitmap[(site.pc / 64) as usize] |= 1 << (site.pc % 64);
                any = true;
            }
        }
        if any {
            bitmap
        } else {
            Vec::new()
        }
    }

    /// (elidable, total) reference-store sites across the whole program.
    pub fn elision_counts(&self) -> (usize, usize) {
        let elided = self
            .sites
            .values()
            .filter(|s| s.verdict == Verdict::Elide)
            .count();
        (elided, self.sites.len())
    }

    /// pc-sorted devirtualization table for a method: `(pc, target)` per
    /// monomorphic `CallVirtual` site. Empty when nothing devirtualizes.
    pub fn devirt_table(&self, method: MethodIdx) -> Vec<(u32, MethodIdx)> {
        self.devirt.get(&method.0).cloned().unwrap_or_default()
    }

    /// Monitor-elision bitmap for a method: bit `pc` set ⇔ the monitor op
    /// at `pc` acts on a proven frame-local receiver.
    pub fn monitor_bitmap(&self, method: MethodIdx) -> Vec<u64> {
        self.mon_bitmaps.get(&method.0).cloned().unwrap_or_default()
    }

    /// Dies-local bitmap for a method: bit `pc` set ⇔ the ref store at
    /// `pc` writes into an object still on its birth nursery page.
    pub fn local_bitmap(&self, method: MethodIdx) -> Vec<u64> {
        self.local_bitmaps.get(&method.0).cloned().unwrap_or_default()
    }

    /// Reachable `CallVirtual` sites: (monomorphic, polymorphic).
    pub fn devirt_counts(&self) -> (usize, usize) {
        self.virt_sites
    }

    /// Monitor ops across the program: (elidable, total).
    pub fn monitor_counts(&self) -> (usize, usize) {
        self.mon_ops
    }

    /// Escape verdict for the allocation site at `(method, pc)`.
    pub fn escape_class(&self, method: MethodIdx, pc: u32) -> Option<EscapeClass> {
        self.alloc_escape.get(&(method.0, pc)).copied()
    }

    /// Reachable allocation sites by escape verdict:
    /// (frame-local, process-local, may-cross).
    pub fn escape_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for &c in self.alloc_escape.values() {
            match c {
                EscapeClass::FrameLocal => counts.0 += 1,
                EscapeClass::ProcessLocal => counts.1 += 1,
                EscapeClass::MayCross => counts.2 += 1,
            }
        }
        counts
    }

    /// One-line deterministic digest of every verdict family — printed by
    /// `kaffeos-lint` and byte-compared across runs in CI.
    pub fn verdict_summary(&self) -> String {
        let (elided, stores) = self.elision_counts();
        let (mono, poly) = self.devirt_counts();
        let (mon_elide, mon_total) = self.monitor_counts();
        let (frame, process, cross) = self.escape_counts();
        format!(
            "verdicts: stores {elided}/{stores} elidable; virtual sites {mono} monomorphic, \
             {poly} polymorphic; monitors {mon_elide}/{mon_total} elidable; alloc sites \
             {frame} frame-local, {process} process-local, {cross} may-cross"
        )
    }

    // ---- intra-method pass -------------------------------------------------

    /// Abstractly interprets one method: a verifier-shaped worklist over
    /// `AbsState`s. Returns the per-pc states, or `None` when the bytecode
    /// cannot be followed (ill-typed input — never panics).
    fn run_method(
        &mut self,
        table: &ClassTable,
        midx: MethodIdx,
    ) -> Option<HashMap<u32, AbsState>> {
        let m = table.methods.get(midx.0 as usize)?;
        let code = &m.code;

        let mut locals = Vec::with_capacity(code.max_locals as usize);
        // Receiver and parameters arrive from arbitrary call sites.
        for _ in 0..m.arg_slots() {
            locals.push(Region::MayCross);
        }
        if locals.len() > code.max_locals as usize {
            return None;
        }
        locals.resize(code.max_locals as usize, Region::Local);

        let mut states: HashMap<u32, AbsState> = HashMap::new();
        let mut worklist: Vec<u32> = Vec::new();
        let entry = AbsState {
            locals,
            stack: Vec::new(),
        };
        merge_into(&mut states, &mut worklist, code.ops.len(), 0, entry)?;

        while let Some(pc) = worklist.pop() {
            let mut state = states.get(&pc)?.clone();
            let Some(&op) = code.ops.get(pc as usize) else {
                continue; // fall off the end: implicit return
            };
            // Exception handlers observe the locals here with the thrown
            // object (arbitrary provenance) as the only stack entry.
            for h in &code.handlers {
                if pc >= h.start && pc < h.end {
                    let hstate = AbsState {
                        locals: state.locals.clone(),
                        stack: vec![Region::MayCross],
                    };
                    merge_into(&mut states, &mut worklist, code.ops.len(), h.target, hstate)?;
                }
            }
            let class = table.classes.get(m.class.0 as usize)?;
            let flow = self.transfer(table, midx, op, &class.rpool, &mut state)?;
            match flow {
                Flow::Fall => {
                    merge_into(&mut states, &mut worklist, code.ops.len(), pc + 1, state)?;
                }
                Flow::JumpTo(t) => {
                    merge_into(&mut states, &mut worklist, code.ops.len(), t, state)?;
                }
                Flow::BranchTo(t) => {
                    merge_into(&mut states, &mut worklist, code.ops.len(), t, state.clone())?;
                    merge_into(&mut states, &mut worklist, code.ops.len(), pc + 1, state)?;
                }
                Flow::Stop => {}
            }
        }
        Some(states)
    }

    /// Transfer function for one op. Updates the global summaries (joins
    /// only) and sets `self.changed` when they move.
    fn transfer(
        &mut self,
        table: &ClassTable,
        midx: MethodIdx,
        op: Op,
        rpool: &[RConst],
        state: &mut AbsState,
    ) -> Option<Flow> {
        use Region::*;
        let pop = |state: &mut AbsState| state.stack.pop();
        match op {
            // Constants and every guest allocation site are Local.
            Op::ConstNull | Op::ConstInt(_) | Op::ConstFloat(_) => state.stack.push(Local),
            Op::ConstStr(_) => state.stack.push(Local),
            Op::Load(slot) => {
                let r = *state.locals.get(slot as usize)?;
                state.stack.push(r);
            }
            Op::Store(slot) => {
                let r = pop(state)?;
                *state.locals.get_mut(slot as usize)? = r;
            }
            Op::Pop => {
                pop(state)?;
            }
            Op::Dup => {
                let r = *state.stack.last()?;
                state.stack.push(r);
            }
            Op::Swap => {
                let n = state.stack.len();
                if n < 2 {
                    return None;
                }
                state.stack.swap(n - 1, n - 2);
            }
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Rem
            | Op::Shl
            | Op::Shr
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::FAdd
            | Op::FSub
            | Op::FMul
            | Op::FDiv
            | Op::CmpEq
            | Op::CmpNe
            | Op::CmpLt
            | Op::CmpLe
            | Op::CmpGt
            | Op::CmpGe
            | Op::FCmpEq
            | Op::FCmpLt
            | Op::FCmpLe
            | Op::FCmpGt
            | Op::FCmpGe
            | Op::RefEq
            | Op::RefNe
            | Op::StrEq
            | Op::StrCharAt => {
                pop(state)?;
                pop(state)?;
                state.stack.push(Local);
            }
            Op::Neg | Op::FNeg | Op::I2F | Op::F2I | Op::StrLen | Op::ParseInt | Op::ArrayLen => {
                pop(state)?;
                state.stack.push(Local);
            }
            Op::StrConcat => {
                pop(state)?;
                pop(state)?;
                state.stack.push(Local);
            }
            Op::Intern | Op::ToStr => {
                pop(state)?;
                state.stack.push(Local);
            }
            Op::Substr => {
                pop(state)?;
                pop(state)?;
                pop(state)?;
                state.stack.push(Local);
            }
            Op::Jump(t) => return Some(Flow::JumpTo(t)),
            Op::JumpIfTrue(t) | Op::JumpIfFalse(t) => {
                pop(state)?;
                return Some(Flow::BranchTo(t));
            }
            Op::Return => return Some(Flow::Stop),
            Op::ReturnVal => {
                let r = pop(state)?;
                let m = table.methods.get(midx.0 as usize)?;
                if m.ret.as_ref().is_some_and(TypeDesc::is_reference) {
                    self.join_summary(midx, r);
                }
                return Some(Flow::Stop);
            }
            Op::New(_) | Op::NewArray(_) => {
                if matches!(op, Op::NewArray(_)) {
                    pop(state)?; // length
                }
                state.stack.push(Local);
            }
            Op::GetField(idx) => {
                let RConst::InstanceField { class, slot, ty } = rpool.get(idx as usize)? else {
                    return None;
                };
                pop(state)?; // receiver
                let r = if ty.is_reference() {
                    let key = (declaring_class(table, *class, *slot)?.0, *slot);
                    self.fields.get(&key).copied().unwrap_or(Local)
                } else {
                    Local
                };
                state.stack.push(r);
            }
            Op::PutField(idx) => {
                let RConst::InstanceField { class, slot, ty } = rpool.get(idx as usize)? else {
                    return None;
                };
                let val = pop(state)?;
                pop(state)?; // receiver (site verdicts read it from the pre-state)
                if ty.is_reference() {
                    let key = (declaring_class(table, *class, *slot)?.0, *slot);
                    self.join_field(key, val);
                }
            }
            Op::GetStatic(idx) => {
                let RConst::StaticField { class, slot, ty } = rpool.get(idx as usize)? else {
                    return None;
                };
                let r = if ty.is_reference() {
                    self.statics.get(&(class.0, *slot)).copied().unwrap_or(Local)
                } else {
                    Local
                };
                state.stack.push(r);
            }
            Op::PutStatic(idx) => {
                let RConst::StaticField { class, slot, ty } = rpool.get(idx as usize)? else {
                    return None;
                };
                let val = pop(state)?;
                if ty.is_reference() {
                    let key = (class.0, *slot);
                    let cur = self.statics.get(&key).copied().unwrap_or(Local);
                    let next = cur.join(val);
                    if next != cur {
                        self.statics.insert(key, next);
                        self.changed = true;
                    }
                }
            }
            Op::NullCheck | Op::MonitorEnter | Op::MonitorExit => {
                pop(state)?;
            }
            Op::InstanceOf(_) => {
                pop(state)?;
                state.stack.push(Local);
            }
            Op::CheckCast(_) => {
                // A cast returns the same object: the region flows through.
                let r = pop(state)?;
                state.stack.push(r);
            }
            Op::ALoad => {
                pop(state)?; // index
                pop(state)?; // array
                state.stack.push(self.array_elems.unwrap_or(Local));
            }
            Op::AStore => {
                let val = pop(state)?;
                pop(state)?; // index
                pop(state)?; // array (site verdicts read it from the pre-state)
                // Element type is not tracked; joining primitive stores in
                // is harmless (their regions are never consulted).
                let next = self.array_elems.unwrap_or(Local).join(val);
                if self.array_elems != Some(next) {
                    self.array_elems = Some(next);
                    self.changed = true;
                }
            }
            Op::CallStatic(idx) => {
                let RConst::DirectMethod(target) = rpool.get(idx as usize)? else {
                    return None;
                };
                let target = *target;
                let m = table.methods.get(target.0 as usize)?;
                let (nargs, ret) = (m.arg_slots(), m.ret.clone());
                for _ in 0..nargs {
                    pop(state)?;
                }
                if let Some(ret) = ret {
                    state.stack.push(self.call_region(&ret, Some(target)));
                }
            }
            Op::CallSpecial(idx) => {
                // `CallSpecial` dispatches through the *static* class's own
                // vtable slot (constructor/`super` semantics): the target is
                // fixed at link time, so its summary applies.
                let RConst::VirtualMethod { class, vslot, nargs, .. } = rpool.get(idx as usize)?
                else {
                    return None;
                };
                let target = *table
                    .classes
                    .get(class.0 as usize)?
                    .vtable
                    .get(*vslot as usize)?;
                let ret = table.methods.get(target.0 as usize)?.ret.clone();
                for _ in 0..*nargs {
                    pop(state)?;
                }
                if let Some(ret) = ret {
                    state.stack.push(self.call_region(&ret, Some(target)));
                }
            }
            Op::CallVirtual(idx) => {
                // Virtual dispatch sharpened by CHA: the result is the join
                // over every reachable override's summary. A later class
                // load can add overrides, but the kernel re-runs the
                // analysis (and republishes every fact) after each load
                // batch, so the summary is exact for the current hierarchy.
                // Only a bailed hierarchy walk falls back to `Top`.
                let RConst::VirtualMethod { class, vslot, nargs, .. } = rpool.get(idx as usize)?
                else {
                    return None;
                };
                let target = *table
                    .classes
                    .get(class.0 as usize)?
                    .vtable
                    .get(*vslot as usize)?;
                let (class, vslot) = (*class, *vslot);
                let ret = table.methods.get(target.0 as usize)?.ret.clone();
                for _ in 0..*nargs {
                    pop(state)?;
                }
                if let Some(ret) = ret {
                    let r = if ret.is_reference() {
                        self.virtual_result(table, class, vslot, &ret)
                    } else {
                        Local
                    };
                    state.stack.push(r);
                }
            }
            Op::Syscall(idx) => {
                let RConst::Intrinsic { id, .. } = rpool.get(idx as usize)? else {
                    return None;
                };
                let def = table.intrinsics().def(*id)?;
                let (name, nparams, ret) = (def.name.clone(), def.params.len(), def.ret.clone());
                for _ in 0..nparams {
                    pop(state)?;
                }
                if let Some(ret) = ret {
                    state.stack.push(intrinsic_region(&name, &ret));
                }
            }
            Op::Throw => {
                pop(state)?;
                return Some(Flow::Stop);
            }
        }
        Some(Flow::Fall)
    }

    /// Region pushed for a direct call's result.
    fn call_region(&self, ret: &TypeDesc, target: Option<MethodIdx>) -> Region {
        if !ret.is_reference() {
            return Region::Local;
        }
        match target.and_then(|t| self.summaries.get(t.0 as usize).copied().flatten()) {
            Some(r) => r,
            // No return observed yet: the callee never completes normally
            // (or the fixpoint has not reached it) — no value can flow, so
            // the optimistic bottom is sound and later passes refine it.
            None => Region::Local,
        }
    }

    // ---- class-hierarchy analysis ------------------------------------------

    /// Region of a `CallVirtual` reference result: the join over every
    /// CHA-reachable override's summary, `Top` when the walk bailed.
    fn virtual_result(
        &mut self,
        table: &ClassTable,
        class: ClassIdx,
        vslot: u16,
        ret: &TypeDesc,
    ) -> Region {
        let ts = self.cha_targets(table, class, vslot);
        if !ts.complete || ts.targets.is_empty() {
            return Region::Top;
        }
        let targets = ts.targets.clone();
        let mut r = Region::Local; // optimistic bottom, as for direct calls
        for t in targets {
            r = r.join(self.call_region(ret, Some(t)));
        }
        r
    }

    /// Reachable override targets for a `CallVirtual` through `(class,
    /// vslot)`: the vtable entries of every loaded class at-or-below
    /// `class`. Cached per hierarchy generation.
    fn cha_targets(&mut self, table: &ClassTable, class: ClassIdx, vslot: u16) -> &ChaTargets {
        self.cha.entry((class.0, vslot)).or_insert_with(|| {
            let mut targets = Vec::new();
            let mut complete = true;
            for lc in &table.classes {
                match bounded_is_subclass(table, lc.idx, class) {
                    Some(true) => {
                        if let Some(&t) = lc.vtable.get(vslot as usize) {
                            targets.push(t);
                        }
                    }
                    Some(false) => {}
                    // Mangled/cyclic superclass chain: give up on the whole
                    // site rather than risk an unsound target set.
                    None => complete = false,
                }
            }
            targets.sort_unstable_by_key(|t| t.0);
            targets.dedup();
            ChaTargets { targets, complete }
        })
    }

    /// Counts reachable `CallVirtual` sites and records the pc-sorted
    /// devirtualization table for the monomorphic ones.
    fn collect_virtual_sites(
        &mut self,
        table: &ClassTable,
        midx: MethodIdx,
        states: &HashMap<u32, AbsState>,
    ) {
        let Some(m) = table.methods.get(midx.0 as usize) else {
            return;
        };
        let Some(class) = table.classes.get(m.class.0 as usize) else {
            return;
        };
        let mut entries = Vec::new();
        for (pc, op) in m.code.ops.iter().enumerate() {
            let Op::CallVirtual(idx) = *op else { continue };
            if !states.contains_key(&(pc as u32)) {
                continue; // unreachable: never dispatched, never compiled
            }
            let Some(RConst::VirtualMethod { class: sclass, vslot, .. }) =
                class.rpool.get(idx as usize)
            else {
                continue;
            };
            let ts = self.cha_targets(table, *sclass, *vslot);
            let mono = (ts.complete && ts.targets.len() == 1).then(|| ts.targets[0]);
            match mono {
                Some(target) => {
                    self.virt_sites.0 += 1;
                    entries.push((pc as u32, target));
                }
                None => self.virt_sites.1 += 1,
            }
        }
        if !entries.is_empty() {
            self.devirt.insert(midx.0, entries);
        }
    }

    fn join_summary(&mut self, midx: MethodIdx, r: Region) {
        let slot = &mut self.summaries[midx.0 as usize];
        let next = match *slot {
            Some(cur) => cur.join(r),
            None => r,
        };
        if *slot != Some(next) {
            *slot = Some(next);
            self.changed = true;
        }
    }

    fn join_field(&mut self, key: (u32, u16), r: Region) {
        let cur = self.fields.get(&key).copied().unwrap_or(Region::Local);
        let next = cur.join(r);
        if next != cur {
            self.fields.insert(key, next);
            self.changed = true;
        }
    }

    // ---- collection --------------------------------------------------------

    /// Derives store-site verdicts, unreachable-code and loop lints for
    /// one method from its fixpoint states.
    fn collect_method(
        &mut self,
        table: &ClassTable,
        midx: MethodIdx,
        states: &HashMap<u32, AbsState>,
    ) {
        let Some(m) = table.methods.get(midx.0 as usize) else {
            return;
        };
        let code = &m.code;
        let class_name = table
            .classes
            .get(m.class.0 as usize)
            .map(|c| c.name.clone())
            .unwrap_or_default();

        let lint = |kind: LintKind, pc: u32, msg: String| Lint {
            kind,
            class: class_name.clone(),
            method: m.name.clone(),
            pc,
            line: code.line_for(pc),
            msg,
        };

        // Store sites: classify from the state *before* each store op.
        for (pc, op) in code.ops.iter().enumerate() {
            let pc32 = pc as u32;
            let Some(state) = states.get(&pc32) else {
                continue;
            };
            let site = match *op {
                Op::PutField(idx) => {
                    let Some(RConst::InstanceField { ty, .. }) = table
                        .classes
                        .get(m.class.0 as usize)
                        .and_then(|c| c.rpool.get(idx as usize))
                    else {
                        continue;
                    };
                    if !ty.is_reference() {
                        continue;
                    }
                    // Stack: [... recv val]
                    let n = state.stack.len();
                    if n < 2 {
                        continue;
                    }
                    Some((state.stack[n - 2], state.stack[n - 1]))
                }
                Op::PutStatic(idx) => {
                    let Some(RConst::StaticField { ty, .. }) = table
                        .classes
                        .get(m.class.0 as usize)
                        .and_then(|c| c.rpool.get(idx as usize))
                    else {
                        continue;
                    };
                    if !ty.is_reference() {
                        continue;
                    }
                    let n = state.stack.len();
                    if n < 1 {
                        continue;
                    }
                    Some((Region::Local, state.stack[n - 1]))
                }
                Op::AStore => {
                    // Stack: [... arr idx val]. Element type is unknown
                    // statically; a primitive-element store is classified
                    // too, harmlessly — its verdict is never consulted
                    // (the interpreter only checks the bitmap for
                    // reference values, and a Local/Local verdict for a
                    // prim store elides nothing the barrier would do).
                    let n = state.stack.len();
                    if n < 3 {
                        continue;
                    }
                    Some((state.stack[n - 3], state.stack[n - 1]))
                }
                _ => None,
            };
            if let Some((recv, val)) = site {
                let verdict = classify(recv, val);
                self.sites.insert(
                    (midx.0, pc32),
                    StoreSite {
                        method: midx,
                        pc: pc32,
                        recv,
                        val,
                        verdict,
                    },
                );
                match verdict {
                    Verdict::FrozenWrite => self.lints.push(lint(
                        LintKind::WriteAfterFreeze,
                        pc32,
                        format!(
                            "reference store into frozen shared object ({} <- {})",
                            recv.label(),
                            val.label()
                        ),
                    )),
                    Verdict::Unknown
                        if recv == Region::Top
                            || (recv == Region::MayCross && val == Region::SharedFrozen) =>
                    {
                        self.lints.push(lint(
                            LintKind::SegViolationCandidate,
                            pc32,
                            format!(
                                "store cannot be proven legal ({} <- {})",
                                recv.label(),
                                val.label()
                            ),
                        ));
                    }
                    _ => {}
                }
            }
        }

        // Unreachable code: reachable-state gaps. The compiler's implicit
        // trailing Return on void methods is exempt (it is dead exactly
        // when every path already returned or loops forever).
        let mut run_start: Option<u32> = None;
        for pc in 0..code.ops.len() as u32 {
            let implicit_tail = pc as usize == code.ops.len() - 1
                && matches!(code.ops[pc as usize], Op::Return);
            let dead = !states.contains_key(&pc) && !implicit_tail;
            match (dead, run_start) {
                (true, None) => run_start = Some(pc),
                (false, Some(start)) => {
                    self.lints.push(lint(
                        LintKind::UnreachableCode,
                        start,
                        format!("instructions {start}..{pc} are unreachable"),
                    ));
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(start) = run_start {
            let end = code.ops.len() as u32;
            self.lints.push(lint(
                LintKind::UnreachableCode,
                start,
                format!("instructions {start}..{end} are unreachable"),
            ));
        }

        // Allocation-in-loop: a reachable back edge whose body allocates
        // but never calls out (no call, no syscall — so no foreign safe
        // points and no kernel interaction while the memlimit drains).
        let mut flagged: Option<u32> = None;
        for (pc, op) in code.ops.iter().enumerate() {
            let target = match *op {
                Op::Jump(t) | Op::JumpIfTrue(t) | Op::JumpIfFalse(t) => t,
                _ => continue,
            };
            if target as usize > pc || !states.contains_key(&(pc as u32)) {
                continue;
            }
            let body = &code.ops[target as usize..=pc];
            let allocates = body
                .iter()
                .position(|o| matches!(o, Op::New(_) | Op::NewArray(_)));
            let calls_out = body.iter().any(|o| {
                matches!(
                    o,
                    Op::CallStatic(_) | Op::CallVirtual(_) | Op::CallSpecial(_) | Op::Syscall(_)
                )
            });
            if let (Some(at), false) = (allocates, calls_out) {
                let alloc_pc = target + at as u32;
                if flagged != Some(alloc_pc) {
                    flagged = Some(alloc_pc);
                    self.lints.push(lint(
                        LintKind::AllocInLoopNoSafepoint,
                        alloc_pc,
                        format!("loop {}..{} allocates but never calls out", target, pc),
                    ));
                }
            }
        }
    }

    // ---- escape pass -------------------------------------------------------

    /// Intra-method escape analysis: classifies every allocation site,
    /// derives the monitor-elision and dies-local store bitmaps, and
    /// records lock-order edges / syscall-under-lock lints. A method whose
    /// bytecode cannot be followed simply contributes no facts (the region
    /// pass has already decided bail status).
    fn escape_method(&mut self, table: &ClassTable, midx: MethodIdx) {
        let Some(m) = table.methods.get(midx.0 as usize) else {
            return;
        };
        let interesting = m.code.ops.iter().any(|o| {
            matches!(
                o,
                Op::New(_) | Op::NewArray(_) | Op::MonitorEnter | Op::MonitorExit
            )
        });
        if !interesting {
            return;
        }
        let Some(class) = table.classes.get(m.class.0 as usize) else {
            return;
        };

        // Allocation sites, in pc order. Each gets a lock/heapprof identity:
        // the allocated class name (arrays share one bucket).
        let mut site_pc: Vec<u32> = Vec::new();
        let mut site_name: Vec<String> = Vec::new();
        for (pc, op) in m.code.ops.iter().enumerate() {
            match *op {
                Op::New(idx) => {
                    let name = match class.rpool.get(idx as usize) {
                        Some(RConst::Class(c)) => table
                            .classes
                            .get(c.0 as usize)
                            .map(|lc| lc.name.clone())
                            .unwrap_or_else(|| "?".to_string()),
                        _ => "?".to_string(),
                    };
                    site_pc.push(pc as u32);
                    site_name.push(name);
                }
                Op::NewArray(_) => {
                    site_pc.push(pc as u32);
                    site_name.push("array".to_string());
                }
                _ => {}
            }
        }
        let nsites = site_pc.len();
        let mut esc = vec![EscapeClass::FrameLocal; nsites];
        // Sites whose critical section may contain a GC point: still
        // frame-local for reporting, but their monitors stay dynamic.
        let mut mon_gc = vec![false; nsites];

        let Some(states) =
            self.escape_fixpoint(table, midx, &site_pc, &site_name, &mut esc, &mut mon_gc)
        else {
            return;
        };
        self.escape_collect(table, midx, &site_pc, &site_name, &mut esc, &mon_gc, &states);
    }

    /// Worklist fixpoint for the escape domain. Returns the per-pc states,
    /// `None` when the bytecode cannot be followed. Merge losses escalate
    /// the dropped site to `MayCross` via `esc` as they happen.
    #[allow(clippy::too_many_lines)]
    fn escape_fixpoint(
        &mut self,
        table: &ClassTable,
        midx: MethodIdx,
        site_pc: &[u32],
        site_name: &[String],
        esc: &mut [EscapeClass],
        mon_gc: &mut [bool],
    ) -> Option<HashMap<u32, EscState>> {
        let m = table.methods.get(midx.0 as usize)?;
        let code = &m.code;
        let rpool = &table.classes.get(m.class.0 as usize)?.rpool;
        let nsites = site_pc.len();
        let site_of = |pc: u32| site_pc.binary_search(&pc).ok().map(|i| i as u16);

        let entry = EscState {
            locals: vec![None; code.max_locals as usize],
            stack: Vec::new(),
            clean: vec![0u64; nsites.div_ceil(64)],
            held: Vec::new(),
            mon_held: Vec::new(),
        };
        let mut states: HashMap<u32, EscState> = HashMap::new();
        let mut worklist: Vec<u32> = Vec::new();
        esc_merge_into(&mut states, &mut worklist, code.ops.len(), 0, entry, esc)?;

        while let Some(pc) = worklist.pop() {
            let mut state = states.get(&pc)?.clone();
            let Some(&op) = code.ops.get(pc as usize) else {
                continue;
            };
            for h in &code.handlers {
                if pc >= h.start && pc < h.end && may_throw(code.ops.get(pc as usize)?) {
                    // Handler entry follows an exception-object allocation
                    // (builtin throws materialise their exception), so no
                    // site is still provably nursery-resident there, and
                    // every pending monitor has seen a GC point.
                    let hstate = EscState {
                        locals: state.locals.clone(),
                        stack: vec![None],
                        clean: vec![0; state.clean.len()],
                        held: state.held.clone(),
                        mon_held: state.mon_held.iter().map(|&(s, _)| (s, true)).collect(),
                    };
                    esc_merge_into(&mut states, &mut worklist, code.ops.len(), h.target, hstate, esc)?;
                }
            }
            let pop = |state: &mut EscState| state.stack.pop();
            // Any op that may allocate is a GC point: every tracked site
            // may be evacuated off its birth nursery page, so the clean
            // set empties. Reference stores are included (a legal
            // cross-heap edge allocates entry items and may OOM-retry).
            let mut flow = Flow::Fall;
            match op {
                Op::ConstNull | Op::ConstInt(_) | Op::ConstFloat(_) => state.stack.push(None),
                Op::ConstStr(_) => {
                    gc_point(&mut state);
                    state.stack.push(None);
                }
                Op::Load(slot) => {
                    let v = *state.locals.get(slot as usize)?;
                    state.stack.push(v);
                }
                Op::Store(slot) => {
                    let v = pop(&mut state)?;
                    *state.locals.get_mut(slot as usize)? = v;
                }
                Op::Pop => {
                    pop(&mut state)?;
                }
                Op::Dup => {
                    let v = *state.stack.last()?;
                    state.stack.push(v);
                }
                Op::Swap => {
                    let n = state.stack.len();
                    if n < 2 {
                        return None;
                    }
                    state.stack.swap(n - 1, n - 2);
                }
                Op::Add
                | Op::Sub
                | Op::Mul
                | Op::Div
                | Op::Rem
                | Op::Shl
                | Op::Shr
                | Op::And
                | Op::Or
                | Op::Xor
                | Op::FAdd
                | Op::FSub
                | Op::FMul
                | Op::FDiv
                | Op::CmpEq
                | Op::CmpNe
                | Op::CmpLt
                | Op::CmpLe
                | Op::CmpGt
                | Op::CmpGe
                | Op::FCmpEq
                | Op::FCmpLt
                | Op::FCmpLe
                | Op::FCmpGt
                | Op::FCmpGe
                | Op::RefEq
                | Op::RefNe
                | Op::StrEq
                | Op::StrCharAt => {
                    pop(&mut state)?;
                    pop(&mut state)?;
                    state.stack.push(None);
                }
                Op::Neg
                | Op::FNeg
                | Op::I2F
                | Op::F2I
                | Op::StrLen
                | Op::ParseInt
                | Op::ArrayLen => {
                    pop(&mut state)?;
                    state.stack.push(None);
                }
                Op::StrConcat => {
                    pop(&mut state)?;
                    pop(&mut state)?;
                    gc_point(&mut state);
                    state.stack.push(None);
                }
                Op::Intern | Op::ToStr => {
                    pop(&mut state)?;
                    gc_point(&mut state);
                    state.stack.push(None);
                }
                Op::Substr => {
                    pop(&mut state)?;
                    pop(&mut state)?;
                    pop(&mut state)?;
                    gc_point(&mut state);
                    state.stack.push(None);
                }
                Op::Jump(t) => flow = Flow::JumpTo(t),
                Op::JumpIfTrue(t) | Op::JumpIfFalse(t) => {
                    pop(&mut state)?;
                    flow = Flow::BranchTo(t);
                }
                Op::Return => flow = Flow::Stop,
                Op::ReturnVal => {
                    if let Some(s) = pop(&mut state)? {
                        esc[s as usize] = esc[s as usize].max(EscapeClass::MayCross);
                    }
                    flow = Flow::Stop;
                }
                Op::New(_) | Op::NewArray(_) => {
                    if matches!(op, Op::NewArray(_)) {
                        pop(&mut state)?;
                    }
                    gc_point(&mut state);
                    let s = site_of(pc)?;
                    state.clean[(s / 64) as usize] |= 1 << (s % 64);
                    state.stack.push(Some(s));
                }
                Op::GetField(_) | Op::InstanceOf(_) => {
                    pop(&mut state)?;
                    state.stack.push(None);
                }
                Op::PutField(idx) => {
                    let RConst::InstanceField { ty, .. } = rpool.get(idx as usize)? else {
                        return None;
                    };
                    let val = pop(&mut state)?;
                    pop(&mut state)?; // receiver (read from final states later)
                    if let Some(s) = val {
                        // Classified precisely in the collection walk; the
                        // fixpoint only needs the conservative floor.
                        esc[s as usize] = esc[s as usize].max(EscapeClass::ProcessLocal);
                    }
                    if ty.is_reference() {
                        gc_point(&mut state);
                    }
                }
                Op::GetStatic(_) => {
                    // First touch may materialise the statics object.
                    gc_point(&mut state);
                    state.stack.push(None);
                }
                Op::PutStatic(idx) => {
                    let RConst::StaticField { ty, .. } = rpool.get(idx as usize)? else {
                        return None;
                    };
                    let _ = ty;
                    let val = pop(&mut state)?;
                    if let Some(s) = val {
                        esc[s as usize] = esc[s as usize].max(EscapeClass::ProcessLocal);
                    }
                    // Statics materialisation plus possible entry items.
                    gc_point(&mut state);
                }
                Op::NullCheck => {
                    pop(&mut state)?;
                }
                Op::MonitorEnter => {
                    let recv = pop(&mut state)?;
                    if let Some(s) = recv {
                        let at = match state.mon_held.binary_search_by_key(&s, |e| e.0) {
                            Ok(i) | Err(i) => i,
                        };
                        state.mon_held.insert(at, (s, false));
                    }
                    let id = self.lock_identity(recv, site_name);
                    if let Err(at) = state.held.binary_search(&id) {
                        state.held.insert(at, id);
                    }
                }
                Op::MonitorExit => {
                    let recv = pop(&mut state)?;
                    if let Some(s) = recv {
                        match state.mon_held.binary_search_by_key(&s, |e| e.0) {
                            Ok(at) => {
                                if state.mon_held.remove(at).1 {
                                    mon_gc[s as usize] = true;
                                }
                            }
                            // Exit without a tracked pending enter:
                            // defensive — never elide this site.
                            Err(_) => mon_gc[s as usize] = true,
                        }
                    }
                    let id = self.lock_identity(recv, site_name);
                    if let Ok(at) = state.held.binary_search(&id) {
                        state.held.remove(at);
                    }
                }
                Op::CheckCast(_) => {
                    let v = pop(&mut state)?;
                    state.stack.push(v);
                }
                Op::ALoad => {
                    pop(&mut state)?;
                    pop(&mut state)?;
                    state.stack.push(None);
                }
                Op::AStore => {
                    let val = pop(&mut state)?;
                    pop(&mut state)?; // index
                    pop(&mut state)?; // array (read from final states later)
                    if let Some(s) = val {
                        esc[s as usize] = esc[s as usize].max(EscapeClass::ProcessLocal);
                    }
                    gc_point(&mut state); // element type unknown: assume ref
                }
                Op::CallStatic(idx) => {
                    let RConst::DirectMethod(target) = rpool.get(idx as usize)? else {
                        return None;
                    };
                    let tm = table.methods.get(target.0 as usize)?;
                    let (nargs, ret) = (tm.arg_slots(), tm.ret.is_some());
                    for _ in 0..nargs {
                        if let Some(s) = pop(&mut state)? {
                            esc[s as usize] = esc[s as usize].max(EscapeClass::MayCross);
                        }
                    }
                    gc_point(&mut state);
                    if ret {
                        state.stack.push(None);
                    }
                }
                Op::CallSpecial(idx) | Op::CallVirtual(idx) => {
                    let RConst::VirtualMethod { class, vslot, nargs, .. } =
                        rpool.get(idx as usize)?
                    else {
                        return None;
                    };
                    let target = *table
                        .classes
                        .get(class.0 as usize)?
                        .vtable
                        .get(*vslot as usize)?;
                    let ret = table.methods.get(target.0 as usize)?.ret.is_some();
                    for _ in 0..*nargs {
                        if let Some(s) = pop(&mut state)? {
                            esc[s as usize] = esc[s as usize].max(EscapeClass::MayCross);
                        }
                    }
                    gc_point(&mut state);
                    if ret {
                        state.stack.push(None);
                    }
                }
                Op::Syscall(idx) => {
                    let RConst::Intrinsic { id, .. } = rpool.get(idx as usize)? else {
                        return None;
                    };
                    let def = table.intrinsics().def(*id)?;
                    let (nparams, ret) = (def.params.len(), def.ret.is_some());
                    for _ in 0..nparams {
                        if let Some(s) = pop(&mut state)? {
                            esc[s as usize] = esc[s as usize].max(EscapeClass::MayCross);
                        }
                    }
                    gc_point(&mut state);
                    if ret {
                        state.stack.push(None);
                    }
                }
                Op::Throw => {
                    if let Some(s) = pop(&mut state)? {
                        esc[s as usize] = esc[s as usize].max(EscapeClass::MayCross);
                    }
                    flow = Flow::Stop;
                }
            }
            match flow {
                Flow::Fall => {
                    esc_merge_into(&mut states, &mut worklist, code.ops.len(), pc + 1, state, esc)?;
                }
                Flow::JumpTo(t) => {
                    esc_merge_into(&mut states, &mut worklist, code.ops.len(), t, state, esc)?;
                }
                Flow::BranchTo(t) => {
                    esc_merge_into(
                        &mut states,
                        &mut worklist,
                        code.ops.len(),
                        t,
                        state.clone(),
                        esc,
                    )?;
                    esc_merge_into(&mut states, &mut worklist, code.ops.len(), pc + 1, state, esc)?;
                }
                Flow::Stop => {}
            }
        }
        Some(states)
    }

    /// Interned lock identity for a monitor receiver: the allocation-site
    /// class name when the receiver is a tracked fresh object, `"?"`
    /// otherwise.
    fn lock_identity(&mut self, recv: Option<u16>, site_name: &[String]) -> u16 {
        let name = match recv {
            Some(s) => site_name.get(s as usize).map_or("?", String::as_str),
            None => "?",
        };
        // The borrow of `site_name` ends before the intern-table update.
        let name = name.to_string();
        self.intern_lock_name(&name)
    }

    /// Walks the ops once against the final fixpoint states: derives the
    /// monitor/dies-local bitmaps, the per-site escape verdicts, the
    /// lock-order edges, and the syscall-under-lock lints.
    #[allow(clippy::too_many_arguments)]
    fn escape_collect(
        &mut self,
        table: &ClassTable,
        midx: MethodIdx,
        site_pc: &[u32],
        site_name: &[String],
        esc: &mut [EscapeClass],
        mon_gc: &[bool],
        states: &HashMap<u32, EscState>,
    ) {
        let Some(m) = table.methods.get(midx.0 as usize) else {
            return;
        };
        let Some(class) = table.classes.get(m.class.0 as usize) else {
            return;
        };
        let code = &m.code;
        let (class_name, method_name) = (class.name.clone(), m.name.clone());

        // Pass A: escalate per-site verdicts using the store-site regions
        // the region pass just derived, and record monitor candidates.
        let mut mon_candidates: Vec<(u32, Option<u16>)> = Vec::new();
        let mut local_pcs: Vec<u32> = Vec::new();
        let mut lock_lints: Vec<(u32, String)> = Vec::new();
        for (pc, op) in code.ops.iter().enumerate() {
            let pc32 = pc as u32;
            let Some(state) = states.get(&pc32) else {
                continue;
            };
            let n = state.stack.len();
            let clean = |s: u16| (state.clean[(s / 64) as usize] >> (s % 64)) & 1 != 0;
            match *op {
                Op::MonitorEnter => {
                    let recv = n.checked_sub(1).and_then(|i| state.stack[i]);
                    mon_candidates.push((pc32, recv));
                    // Lock-order edges from every already-held identity to
                    // the one being acquired (self-edges excluded: monitors
                    // are re-entrant, so same-class nesting is routine).
                    let entering = match recv {
                        Some(s) => site_name.get(s as usize).map_or("?", String::as_str),
                        None => "?",
                    };
                    let entering = self.intern_lock_name(entering);
                    for &h in &state.held {
                        if h != entering {
                            self.lock_edges.push((h, entering, midx.0, pc32));
                        }
                    }
                }
                Op::MonitorExit => {
                    let recv = n.checked_sub(1).and_then(|i| state.stack[i]);
                    mon_candidates.push((pc32, recv));
                }
                Op::PutField(_) if n >= 2 => {
                    if let Some(r) = state.stack[n - 2] {
                        if clean(r) && self.sites.contains_key(&(midx.0, pc32)) {
                            local_pcs.push(pc32);
                        }
                    }
                    if let Some(v) = state.stack[n - 1] {
                        self.escalate_store(esc, v, midx, pc32);
                    }
                }
                Op::AStore if n >= 3 => {
                    if let Some(r) = state.stack[n - 3] {
                        if clean(r) && self.sites.contains_key(&(midx.0, pc32)) {
                            local_pcs.push(pc32);
                        }
                    }
                    if let Some(v) = state.stack[n - 1] {
                        self.escalate_store(esc, v, midx, pc32);
                    }
                }
                Op::Syscall(idx) if !state.held.is_empty() => {
                    let name = match class.rpool.get(idx as usize) {
                        Some(RConst::Intrinsic { id, .. }) => table
                            .intrinsics()
                            .def(*id)
                            .map(|d| d.name.clone())
                            .unwrap_or_else(|| "?".to_string()),
                        _ => "?".to_string(),
                    };
                    let held: Vec<&str> = state
                        .held
                        .iter()
                        .map(|&h| self.lock_names.get(h as usize).map_or("?", String::as_str))
                        .collect();
                    lock_lints.push((
                        pc32,
                        format!("syscall {name} while holding [{}]", held.join(", ")),
                    ));
                }
                _ => {}
            }
        }

        // Pass B: resolve monitor candidates against the final verdicts.
        let mut mon_bitmap = vec![0u64; code.ops.len().div_ceil(64)];
        let mut any_mon = false;
        for &(pc, recv) in &mon_candidates {
            self.mon_ops.1 += 1;
            // Elide only when the receiver never leaves the frame AND no
            // GC point can fall inside the critical section: the monitor
            // registry is a GC root set, so a collection while an elided
            // monitor is held would trace observably fewer entries.
            let elide = matches!(recv, Some(s)
                if esc[s as usize] == EscapeClass::FrameLocal && !mon_gc[s as usize]);
            if elide {
                self.mon_ops.0 += 1;
                mon_bitmap[(pc / 64) as usize] |= 1 << (pc % 64);
                any_mon = true;
            }
        }
        if any_mon {
            self.mon_bitmaps.insert(midx.0, mon_bitmap);
        }
        if !local_pcs.is_empty() {
            let mut bitmap = vec![0u64; code.ops.len().div_ceil(64)];
            for pc in local_pcs {
                bitmap[(pc / 64) as usize] |= 1 << (pc % 64);
            }
            self.local_bitmaps.insert(midx.0, bitmap);
        }
        for (i, &pc) in site_pc.iter().enumerate() {
            if states.contains_key(&pc) {
                self.alloc_escape.insert((midx.0, pc), esc[i]);
            }
        }
        for (pc, msg) in lock_lints {
            self.lints.push(Lint {
                kind: LintKind::LockHeldAcrossSyscall,
                class: class_name.clone(),
                method: method_name.clone(),
                pc,
                line: code.line_for(pc),
                msg,
            });
        }
    }

    /// Interns a lock identity by name (collection-walk variant of
    /// [`Analysis::lock_identity`]).
    fn intern_lock_name(&mut self, name: &str) -> u16 {
        match self.lock_names.iter().position(|n| n == name) {
            Some(i) => i as u16,
            None => {
                self.lock_names.push(name.to_string());
                (self.lock_names.len() - 1) as u16
            }
        }
    }

    /// Escalates a fresh site stored at `(midx, pc)`: stores into a
    /// proven-own-heap receiver keep the object process-local; anything
    /// else may cross.
    fn escalate_store(&mut self, esc: &mut [EscapeClass], s: u16, midx: MethodIdx, pc: u32) {
        let to = match self.sites.get(&(midx.0, pc)).map(|site| site.recv) {
            Some(Region::Local) => EscapeClass::ProcessLocal,
            _ => EscapeClass::MayCross,
        };
        esc[s as usize] = esc[s as usize].max(to);
    }

    /// Emits `deadlock-candidate` lints: one per lock-order edge that
    /// participates in a cycle of the global (cross-method) graph.
    fn deadlock_lints(&mut self, table: &ClassTable) {
        if self.lock_edges.is_empty() {
            return;
        }
        let n = self.lock_names.len();
        let mut adj = vec![Vec::new(); n];
        for &(from, to, _, _) in &self.lock_edges {
            if !adj[from as usize].contains(&to) {
                adj[from as usize].push(to);
            }
        }
        let reaches = |from: u16, to: u16| -> bool {
            let mut seen = vec![false; n];
            let mut stack = vec![from];
            while let Some(v) = stack.pop() {
                if v == to {
                    return true;
                }
                if std::mem::replace(&mut seen[v as usize], true) {
                    continue;
                }
                stack.extend(adj[v as usize].iter().copied());
            }
            false
        };
        let edges = self.lock_edges.clone();
        for (from, to, mid, pc) in edges {
            if !reaches(to, from) {
                continue;
            }
            let Some(m) = table.methods.get(mid as usize) else {
                continue;
            };
            let class_name = table
                .classes
                .get(m.class.0 as usize)
                .map(|c| c.name.clone())
                .unwrap_or_default();
            let (a, b) = (
                self.lock_names.get(from as usize).map_or("?", String::as_str),
                self.lock_names.get(to as usize).map_or("?", String::as_str),
            );
            self.lints.push(Lint {
                kind: LintKind::DeadlockCandidate,
                class: class_name,
                method: m.name.clone(),
                pc,
                line: m.code.line_for(pc),
                msg: format!("lock-order cycle: {a} -> {b}"),
            });
        }
    }
}

/// Figure-2 verdict for a reference store given operand regions.
fn classify(recv: Region, val: Region) -> Verdict {
    use Region::*;
    match (recv, val) {
        (SharedFrozen, _) => Verdict::FrozenWrite,
        (Local, Local) => Verdict::Elide,
        // Own-heap receiver, definitely-shared value: a legal user→shared
        // edge — but it needs its entry/exit items, so the barrier runs.
        (Local, SharedFrozen | KernelConst) => Verdict::LegalCross,
        _ => Verdict::Unknown,
    }
}

/// Region of an intrinsic's reference result.
fn intrinsic_region(name: &str, ret: &TypeDesc) -> Region {
    if !ret.is_reference() {
        return Region::Local;
    }
    match name {
        // `shm.get` hands out objects on a frozen shared heap.
        "shm.get" => Region::SharedFrozen,
        // procfs replies are strings materialised on the *caller's* heap.
        "proc.status" | "proc.meminfo" | "proc.profile" => Region::Local,
        _ => Region::MayCross,
    }
}

/// `a` is `b` or a subclass of `b` — with the superclass walk bounded by
/// the table size, so a mangled/cyclic hierarchy yields `None` (the CHA
/// pass then treats the site as fully polymorphic) instead of looping.
fn bounded_is_subclass(table: &ClassTable, a: ClassIdx, b: ClassIdx) -> Option<bool> {
    let mut cursor = Some(a);
    for _ in 0..=table.classes.len() {
        match cursor {
            None => return Some(false),
            Some(c) if c == b => return Some(true),
            Some(c) => cursor = table.classes.get(c.0 as usize)?.super_idx,
        }
    }
    None
}

/// Walks up the superclass chain to the class that declared `slot`, so
/// stores through a subclass receiver and reads through the superclass
/// share one field summary.
fn declaring_class(table: &ClassTable, mut c: ClassIdx, slot: u16) -> Option<ClassIdx> {
    // Bounded like `bounded_is_subclass`: a cyclic chain bails the method
    // rather than spinning.
    for _ in 0..=table.classes.len() {
        let lc = table.classes.get(c.0 as usize)?;
        match lc.super_idx {
            Some(s) if (slot as usize) < table.classes.get(s.0 as usize)?.instance_fields.len() => {
                c = s;
            }
            _ => return Some(c),
        }
    }
    None
}

/// Merges `state` into the recorded state at `pc`, queueing `pc` when the
/// state is new or widened. Returns `None` on out-of-range targets or
/// merge-shape mismatches (ill-formed input — the method is abandoned).
fn merge_into(
    states: &mut HashMap<u32, AbsState>,
    worklist: &mut Vec<u32>,
    ops_len: usize,
    pc: u32,
    state: AbsState,
) -> Option<()> {
    if pc as usize > ops_len {
        return None;
    }
    match states.get_mut(&pc) {
        None => {
            states.insert(pc, state);
            worklist.push(pc);
        }
        Some(existing) => {
            if existing.stack.len() != state.stack.len()
                || existing.locals.len() != state.locals.len()
            {
                return None;
            }
            let mut changed = false;
            for (a, b) in existing.locals.iter_mut().zip(&state.locals) {
                let j = a.join(*b);
                if *a != j {
                    *a = j;
                    changed = true;
                }
            }
            for (a, b) in existing.stack.iter_mut().zip(&state.stack) {
                let j = a.join(*b);
                if *a != j {
                    *a = j;
                    changed = true;
                }
            }
            if changed {
                worklist.push(pc);
            }
        }
    }
    Some(())
}

/// Escape-domain counterpart of [`merge_into`]. When two paths disagree
/// on a slot the merged slot drops to `None`, but the site whose identity
/// was lost is *killed* (escalated to `MayCross`, disabling every monitor
/// elision on it) only when some tracked occurrence of it **survives the
/// merge** — another slot both paths agree on, or a pending tracked
/// `MonitorEnter` on both paths (`mon_held`). A surviving alias is the
/// hazard: it could reach a `MonitorExit` that elides while the matching
/// enter ran unelided through the lost reference, or vice versa. When
/// every occurrence dies in the same merge (the classic loop-head merge
/// of a fresh loop-body allocation — plus its hidden `sync` alias —
/// against the pre-loop `None`s), dropping them silently is sound: no
/// reference to the old iteration's object remains tracked, so no later
/// op can decide anything about it, and the next iteration's object
/// starts its own fresh tracking. `clean` intersects; `held` (lock
/// identities, for the deadlock lint — deliberately over-approximate)
/// unions; `mon_held` intersects, and a site pending on only one path is
/// killed outright — elision must not change whether a path that never
/// entered raises on its exit.
fn esc_merge_into(
    states: &mut HashMap<u32, EscState>,
    worklist: &mut Vec<u32>,
    ops_len: usize,
    pc: u32,
    state: EscState,
    esc: &mut [EscapeClass],
) -> Option<()> {
    if pc as usize > ops_len {
        return None;
    }
    match states.get_mut(&pc) {
        None => {
            states.insert(pc, state);
            worklist.push(pc);
        }
        Some(existing) => {
            if existing.stack.len() != state.stack.len()
                || existing.locals.len() != state.locals.len()
            {
                return None;
            }
            let mut changed = false;
            // Pending tracked enters must agree across paths: a site in
            // the symmetric difference entered on one path only, and an
            // elided exit on the never-entered path would swallow the
            // IllegalState the dynamic op raises — killed outright.
            if existing.mon_held != state.mon_held {
                let (mut i, mut j) = (0usize, 0usize);
                let mut inter = Vec::new();
                while i < existing.mon_held.len() && j < state.mon_held.len() {
                    let (a, b) = (existing.mon_held[i], state.mon_held[j]);
                    match a.0.cmp(&b.0) {
                        core::cmp::Ordering::Equal => {
                            inter.push((a.0, a.1 || b.1));
                            i += 1;
                            j += 1;
                        }
                        core::cmp::Ordering::Less => {
                            esc[a.0 as usize] = EscapeClass::MayCross;
                            i += 1;
                        }
                        core::cmp::Ordering::Greater => {
                            esc[b.0 as usize] = EscapeClass::MayCross;
                            j += 1;
                        }
                    }
                }
                for &(s, _) in &existing.mon_held[i..] {
                    esc[s as usize] = EscapeClass::MayCross;
                }
                for &(s, _) in &state.mon_held[j..] {
                    esc[s as usize] = EscapeClass::MayCross;
                }
                if existing.mon_held != inter {
                    existing.mon_held = inter;
                    changed = true;
                }
            }
            let mut lost: Vec<u16> = Vec::new();
            let slots = existing
                .locals
                .iter_mut()
                .zip(&state.locals)
                .chain(existing.stack.iter_mut().zip(&state.stack));
            for (a, b) in slots {
                if *a != *b {
                    lost.extend(a.iter().chain(b.iter()));
                    if a.is_some() {
                        changed = true;
                    }
                    *a = None;
                }
            }
            // A lost site with a surviving tracked occurrence is killed;
            // one whose every occurrence died here is silently forgotten.
            for s in lost {
                if existing.locals.iter().chain(&existing.stack).any(|x| *x == Some(s))
                    || existing.mon_held.iter().any(|e| e.0 == s)
                {
                    esc[s as usize] = esc[s as usize].max(EscapeClass::MayCross);
                }
            }
            for (a, b) in existing.clean.iter_mut().zip(&state.clean) {
                let j = *a & *b;
                if *a != j {
                    *a = j;
                    changed = true;
                }
            }
            for &h in &state.held {
                if let Err(at) = existing.held.binary_search(&h) {
                    existing.held.insert(at, h);
                    changed = true;
                }
            }
            if changed {
                worklist.push(pc);
            }
        }
    }
    Some(())
}

enum Flow {
    Fall,
    JumpTo(u32),
    BranchTo(u32),
    Stop,
}

#[cfg(test)]
mod tests;
