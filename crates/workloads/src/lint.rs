//! Static-analysis lint driver: loads every bundled guest program into one
//! VM and reports the heap-flow analyzer's diagnostics.
//!
//! This is the program behind `kaffeos-lint` and `kaffeos-workloads
//! --lint`. It boots a kernel, registers the seven SPEC-analogue
//! benchmarks, the servlet engine, the memhog, and the fault-runner's
//! shared-memory writer, spawns each once (spawning is what loads an
//! image's classes), and then runs [`kaffeos::analyze`] over the whole
//! class table — stdlib included.
//!
//! In `--allowlist` mode every diagnostic's stable key
//! (`"<kind> <Class>.<method>"`, deliberately pc-free) must appear in the
//! given file or the run fails; CI pins the expected lint surface this
//! way, so a new diagnostic anywhere in the bundled guests breaks the
//! build until a human looks at it.

use std::collections::BTreeSet;
use std::process::ExitCode;

use kaffeos::{KaffeOs, KaffeOsConfig};

use crate::spec;

/// The fault-runner's shared-memory writer: stores into a frozen shared
/// `Cell` — the canonical *dynamic* seg-violation workload, and therefore
/// also the canonical expected lint.
pub const SHMER_SOURCE: &str = r#"
    class Main {
        static int main(int n) {
            try {
                if (Shm.lookup("box") < 0) {
                    Shm.create("box", "Cell", 16);
                }
                Cell c = Shm.get("box", n % 16) as Cell;
                c.value = n;
                return c.value;
            } catch (Exception e) {
                return -5;
            }
        }
    }
"#;

/// Result of a lint sweep over the bundled programs.
pub struct LintReport {
    /// Every diagnostic, sorted and exact-deduplicated (per-process class
    /// reloads produce byte-identical repeats).
    pub lines: Vec<String>,
    /// Stable allowlist keys of the diagnostics, deduplicated.
    pub keys: BTreeSet<String>,
    /// Reference-store sites proven elidable.
    pub elided: usize,
    /// All reference-store sites seen.
    pub total_sites: usize,
    /// One-line verdict summary across all passes (store elision,
    /// devirtualization, monitor elision, escape classes). Byte-stable for
    /// a fixed class table; CI double-runs the linter and compares it.
    pub verdicts: String,
}

/// Boots a kernel with every bundled guest program loaded and runs the
/// static heap-flow analyzer over the full class table.
pub fn lint_bundled() -> LintReport {
    let mut os = KaffeOs::new(KaffeOsConfig::default());
    os.load_shared_source("class Cell { int value; }")
        .expect("shared class compiles");
    os.register_image("shmer", SHMER_SOURCE)
        .expect("shmer compiles");
    os.register_image("servlet", crate::servlet::SERVLET_SOURCE)
        .expect("servlet compiles");
    os.register_image("memhog", crate::servlet::MEMHOG_SOURCE)
        .expect("memhog compiles");
    for bench in spec::all_benchmarks() {
        os.register_image(bench.name, bench.source)
            .expect("benchmark compiles");
    }
    for image in [
        "shmer",
        "servlet",
        "memhog",
        "compress",
        "jess",
        "db",
        "javac",
        "mpegaudio",
        "mtrt",
        "jack",
    ] {
        os.spawn(image, "1", None).expect("spawn loads the image");
    }

    let analysis = os.analysis();
    let (elided, total_sites) = analysis.elision_counts();
    let mut lines: Vec<String> = Vec::new();
    let mut keys = BTreeSet::new();
    for lint in &analysis.lints {
        let line = lint.to_string();
        // Per-process stdlib reloads repeat identical diagnostics.
        if lines.last() != Some(&line) {
            lines.push(line);
        }
        keys.insert(lint.key());
    }
    lines.dedup();
    LintReport {
        lines,
        keys,
        elided,
        total_sites,
        verdicts: analysis.verdict_summary(),
    }
}

/// CLI entry shared by `kaffeos-lint` and `kaffeos-workloads --lint`:
/// prints the report; with `--allowlist <path>` fails on any diagnostic
/// key missing from the file (one key per line, `#` comments). With
/// `--strict`, allowlist entries that no longer fire are *also* fatal, so
/// the pinned lint surface cannot silently rot as diagnostics are fixed.
pub fn run_lint_cli(args: &[String]) -> ExitCode {
    let strict = args.iter().any(|a| a == "--strict");
    let allowlist_path = match args.iter().position(|a| a == "--allowlist") {
        Some(i) => match args.get(i + 1) {
            Some(path) => Some(path.clone()),
            None => {
                eprintln!("usage: kaffeos-lint [--allowlist <path>] [--strict]");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let report = lint_bundled();
    for line in &report.lines {
        println!("{line}");
    }
    println!(
        "{} diagnostics ({} unique keys); {}/{} reference-store sites barrier-elidable",
        report.lines.len(),
        report.keys.len(),
        report.elided,
        report.total_sites
    );
    println!("{}", report.verdicts);

    let Some(path) = allowlist_path else {
        return ExitCode::SUCCESS;
    };
    let allow = match std::fs::read_to_string(&path) {
        Ok(text) => text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect::<BTreeSet<_>>(),
        Err(e) => {
            eprintln!("cannot read allowlist {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let new: Vec<_> = report.keys.difference(&allow).collect();
    for key in &new {
        eprintln!("NEW DIAGNOSTIC (not in {path}): {key}");
    }
    let mut stale_count = 0usize;
    for stale in allow.difference(&report.keys) {
        if strict {
            eprintln!("STALE ALLOWLIST ENTRY (no longer fires): {stale}");
            stale_count += 1;
        } else {
            println!("note: allowlist entry no longer fires: {stale}");
        }
    }
    if new.is_empty() && stale_count == 0 {
        println!("lint surface matches {path}");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
