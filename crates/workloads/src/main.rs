//! Fault-injection runner: drives a small multi-process workload under a
//! seeded [`FaultPlan`] and audits every kernel invariant afterwards.
//!
//! ```text
//! cargo run -p kaffeos-workloads -- --faults seed=42
//! cargo run -p kaffeos-workloads -- --faults seed=42 --trace out.json
//! cargo run -p kaffeos-workloads -- --faults seed=42 --profile prof --top
//! ```
//!
//! The seed fully determines the experiment (which mechanisms arm, where
//! the injected OOM lands, which victims the termination sweep picks), so
//! any failure reported here replays exactly. With `--trace <path>` the run
//! records the kernel's structured event stream and writes it as a Chrome
//! `trace_event` file (load in `chrome://tracing` / Perfetto); the JSON
//! lines form is written alongside with a `.jsonl` suffix. With
//! `--profile <base>` the virtual-time sampling profiler records the run
//! and writes `<base>.folded` (Brendan-Gregg folded stacks), `<base>.svg`
//! (flamegraph) and `<base>.hist` (GC pause / syscall latency / quantum
//! jitter histograms) — all byte-identical across reruns of the same seed.
//! `--top` prints a `kaffeos-top` snapshot table before teardown. With
//! `--heap-profile <base>` the heap observability plane records the run
//! and writes `<base>.alloc.folded` / `<base>.objects.folded` (allocation
//! flamegraph inputs weighted by bytes / object counts),
//! `<base>.alloc.svg`, `<base>.survival` (per-site tenure-vs-die-young
//! table), `<base>.timeline.jsonl` (GC/page events and occupancy samples)
//! and `<base>.heaphist` (per-heap pause/reclaim histograms). With
//! `--heap-dump <path>` a deterministic whole-space snapshot is written
//! mid-run (after the fault window) to `<path>` and again after teardown
//! to `<path>.final`. All outputs are byte-identical across reruns of the
//! same seed. Exits non-zero if the audit finds a violation or a process
//! outlives teardown.

use std::process::ExitCode;

use kaffeos::{FaultPlan, KaffeOs, KaffeOsConfig, Pid, SpawnOpts};
use kaffeos_workloads::lint::SHMER_SOURCE as SHMER;
use kaffeos_workloads::spec;

fn build_os(trace: bool, profile: bool, heapprof: bool) -> KaffeOs {
    let mut os = KaffeOs::new(KaffeOsConfig {
        trace,
        profile,
        heapprof,
        ..KaffeOsConfig::default()
    });
    os.load_shared_source("class Cell { int value; }")
        .expect("shared class compiles");
    os.register_image("shmer", SHMER).expect("shmer compiles");
    for name in ["compress", "db", "jack"] {
        let bench = spec::by_name(name).expect("known benchmark");
        os.register_image(name, bench.source)
            .expect("benchmark compiles");
    }
    os
}

fn spawn_workload(os: &mut KaffeOs) -> Vec<Pid> {
    [("compress", "1"), ("db", "1"), ("jack", "1"), ("shmer", "3")]
        .iter()
        .map(|(image, arg)| {
            os.spawn_with(
                image,
                arg,
                SpawnOpts {
                    mem_limit: Some(8 << 20),
                    ..SpawnOpts::default()
                },
            )
            .expect("spawn succeeds")
        })
        .collect()
}

fn run_faults(
    seed: u64,
    trace_path: Option<&str>,
    profile_base: Option<&str>,
    heap_profile_base: Option<&str>,
    heap_dump_path: Option<&str>,
    top: bool,
) -> Result<(), String> {
    let plan = FaultPlan::from_seed(seed);
    println!("seed {seed:#x} arms: {plan:?}");

    // `--top` wants the TOP-METHOD column, so it turns the profiler on too.
    let mut os = build_os(
        trace_path.is_some(),
        profile_base.is_some() || top,
        heap_profile_base.is_some(),
    );
    os.install_faults(plan);
    let pids = spawn_workload(&mut os);
    os.run(Some(os.clock() + 2_000_000_000));

    // Mid-run audit: every invariant must hold while faults are active.
    os.audit()
        .map_err(|v| format!("audit while faulted: {v}"))?;

    if top {
        println!("kaffeos-top @ {} cycles:", os.clock());
        print!("{}", os.top_text());
    }

    // Mid-run snapshot: after the fault window, before teardown — the
    // interesting moment for a dump (dead processes not yet merged).
    if let Some(path) = heap_dump_path {
        std::fs::write(path, os.heap_dump())
            .map_err(|e| format!("writing heap dump {path}: {e}"))?;
    }

    // Teardown: kill survivors, drain, collect twice, audit again. The
    // cleared plan keeps the injection counters for the final summary.
    let fired = os.clear_faults();
    for &pid in &pids {
        let _ = os.kill(pid);
    }
    os.run(Some(os.clock() + 500_000_000));
    os.kernel_gc();
    os.kernel_gc();
    for &pid in &pids {
        if os.is_alive(pid) {
            return Err(format!("{pid:?} survived teardown"));
        }
    }
    let report = os
        .audit()
        .map_err(|v| format!("audit after teardown: {v}"))?;
    let root = os.space().root_memlimit();
    if os.space().limits().current(root) != 0 {
        return Err(format!(
            "machine budget did not drain: {} bytes",
            os.space().limits().current(root)
        ));
    }

    if let Some(path) = trace_path {
        std::fs::write(path, os.trace_chrome())
            .map_err(|e| format!("writing trace {path}: {e}"))?;
        let jsonl_path = format!("{path}.jsonl");
        std::fs::write(&jsonl_path, os.trace_jsonl())
            .map_err(|e| format!("writing trace {jsonl_path}: {e}"))?;
        let metrics = os.metrics();
        println!(
            "trace: {} events recorded ({} dropped by the ring) -> {path}, {jsonl_path}",
            metrics.events_recorded, metrics.events_dropped
        );
    }

    if let Some(base) = profile_base {
        for (suffix, body) in [
            ("folded", os.profile_folded()),
            ("svg", os.profile_flamegraph_svg()),
            ("hist", os.profile_histograms()),
        ] {
            let path = format!("{base}.{suffix}");
            std::fs::write(&path, &body).map_err(|e| format!("writing profile {path}: {e}"))?;
        }
        let sampled: u64 = os.profile_totals().values().map(|t| t.total()).sum();
        println!("profile: {sampled} cycles sampled -> {base}.folded, {base}.svg, {base}.hist");
    }

    if let Some(base) = heap_profile_base {
        for (suffix, body) in [
            ("alloc.folded", os.heapprof_folded_bytes()),
            ("objects.folded", os.heapprof_folded_objects()),
            ("alloc.svg", os.heapprof_flamegraph_svg()),
            ("survival", os.heapprof_survival()),
            ("timeline.jsonl", os.heapprof_timeline()),
            ("heaphist", os.heapprof_histograms()),
        ] {
            let path = format!("{base}.{suffix}");
            std::fs::write(&path, &body)
                .map_err(|e| format!("writing heap profile {path}: {e}"))?;
        }
        println!(
            "heap profile: {} timeline events -> {base}.alloc.folded, {base}.objects.folded, {base}.alloc.svg, {base}.survival, {base}.timeline.jsonl, {base}.heaphist",
            os.space().heapprof().timeline_len()
        );
    }

    if let Some(path) = heap_dump_path {
        let final_path = format!("{path}.final");
        std::fs::write(&final_path, os.heap_dump())
            .map_err(|e| format!("writing heap dump {final_path}: {e}"))?;
        println!("heap dumps -> {path} (mid-run), {final_path}");
    }

    println!("statuses:");
    for &pid in &pids {
        println!("  {pid:?}: {:?}", os.status(pid));
    }
    println!("audit report: {report:#?}");
    if let Some(fired) = fired {
        println!(
            "injections: {} alloc faults, {} kills, {} illegal writes (0 accepted required: {})",
            report.alloc_faults_fired, fired.kills_injected, fired.illegal_writes_attempted,
            fired.illegal_writes_accepted
        );
        if fired.illegal_writes_accepted > 0 {
            return Err(format!(
                "barrier accepted {} illegal writes",
                fired.illegal_writes_accepted
            ));
        }
    }
    println!("seed {seed:#x}: all invariants held");
    Ok(())
}

/// Runs one named SLO scenario (or `all`) and prints/writes the golden
/// per-tenant report.
fn run_scenarios(which: &str, seed: u64, out: Option<&str>) -> Result<(), String> {
    let names: Vec<&str> = if which == "all" {
        kaffeos_workloads::SCENARIOS.to_vec()
    } else {
        vec![which]
    };
    let mut combined = String::new();
    for name in names {
        let report = kaffeos_workloads::run_scenario(name, seed)
            .ok_or_else(|| format!("unknown scenario {name:?} (see --scenario list)"))?;
        combined.push_str(&report.text);
        combined.push('\n');
    }
    match out {
        Some(path) => {
            std::fs::write(path, &combined).map_err(|e| format!("writing {path}: {e}"))?;
            println!("scenario report -> {path}");
        }
        None => print!("{combined}"),
    }
    Ok(())
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: kaffeos-workloads --faults seed=<N> [--trace <path>] [--profile <base>] \
       [--heap-profile <base>] [--heap-dump <path>] [--top] [--jit=off|on|threshold=N]"
    );
    eprintln!("       kaffeos-workloads --scenario <name|all|list> seed=<N> [--out <path>]");
    eprintln!("       kaffeos-workloads --lint [--allowlist <path>]");
    eprintln!("       (N may be decimal or 0x-prefixed hex)");
    eprintln!("       --profile writes <base>.folded, <base>.svg and <base>.hist");
    eprintln!(
        "       --heap-profile writes <base>.alloc.folded, <base>.objects.folded, \
       <base>.alloc.svg, <base>.survival, <base>.timeline.jsonl, <base>.heaphist"
    );
    eprintln!("       --heap-dump writes a deterministic JSONL snapshot mid-run and <path>.final");
    eprintln!("       --top prints a kaffeos-top snapshot table before teardown");
    eprintln!(
        "       scenarios: {}",
        kaffeos_workloads::SCENARIOS.join(", ")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--jit=off|on|threshold=N` overrides the `KAFFEOS_JIT` environment
    // toggle for this run. Every kernel built below reads the variable via
    // `KaffeOsConfig::default()`, so setting it up front covers faults,
    // scenarios and lint alike. Default: on, threshold 64
    // (`kaffeos_vm::DEFAULT_JIT_THRESHOLD`).
    for arg in &args {
        if let Some(v) = arg.strip_prefix("--jit=") {
            if kaffeos_vm::JitConfig::parse(v).is_none() {
                eprintln!("bad --jit value {v:?} (want off, on, or threshold=N)");
                return ExitCode::FAILURE;
            }
            std::env::set_var("KAFFEOS_JIT", v);
        }
    }
    if args.iter().any(|a| a == "--lint") {
        return kaffeos_workloads::lint::run_lint_cli(&args);
    }
    let scenario = args
        .iter()
        .position(|a| a == "--scenario")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    if scenario.is_none() && !args.iter().any(|a| a == "--faults") {
        return usage();
    }
    if scenario == Some("list") {
        for name in kaffeos_workloads::SCENARIOS {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    let Some(seed) = args.iter().find_map(|a| {
        let n = a.strip_prefix("seed=")?;
        match n.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => n.parse().ok(),
        }
    }) else {
        return usage();
    };
    let path_after = |flag: &str| match args.iter().position(|a| a == flag) {
        Some(i) => match args.get(i + 1) {
            Some(path) => Ok(Some(path.as_str())),
            None => Err(()),
        },
        None => Ok(None),
    };
    if let Some(which) = scenario {
        let Ok(out) = path_after("--out") else {
            return usage();
        };
        return match run_scenarios(which, seed, out) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("SCENARIO FAILED: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    let Ok(trace_path) = path_after("--trace") else {
        return usage();
    };
    let Ok(profile_base) = path_after("--profile") else {
        return usage();
    };
    let Ok(heap_profile_base) = path_after("--heap-profile") else {
        return usage();
    };
    let Ok(heap_dump_path) = path_after("--heap-dump") else {
        return usage();
    };
    let top = args.iter().any(|a| a == "--top");
    match run_faults(
        seed,
        trace_path,
        profile_base,
        heap_profile_base,
        heap_dump_path,
        top,
    ) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("FAULT EXPERIMENT FAILED (seed {seed:#x}): {msg}");
            ExitCode::FAILURE
        }
    }
}
