//! Runs a spec benchmark on one of the seven Figure 3 platforms and
//! reports virtual time, wall time, and barrier counts.

use std::time::Instant;

use kaffeos::{BarrierKind, Engine, ExitStatus, KaffeOs, KaffeOsConfig};

use crate::spec::SpecBenchmark;

/// How a platform maps onto VM configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlatformKind {
    /// A pre-KaffeOS JVM: one heap, no barriers, no processes.
    Baseline(Engine),
    /// KaffeOS with no write barrier: "we execute without a write barrier,
    /// and run everything on the kernel heap" (§4.1).
    KaffeOsNoBarrier,
    /// KaffeOS proper, with the given barrier implementation.
    KaffeOs(BarrierKind),
}

/// One column of Figure 3.
#[derive(Debug, Clone, Copy)]
pub struct Platform {
    /// Figure 3 legend label.
    pub name: &'static str,
    /// VM configuration family.
    pub kind: PlatformKind,
}

/// The seven platforms of Figure 3, in the paper's legend order.
pub fn platforms() -> [Platform; 7] {
    [
        Platform {
            name: "IBM",
            kind: PlatformKind::Baseline(Engine::JIT_IBM),
        },
        Platform {
            name: "Kaffe00",
            kind: PlatformKind::Baseline(Engine::KAFFE00),
        },
        Platform {
            name: "Kaffe99",
            kind: PlatformKind::Baseline(Engine::KAFFE99),
        },
        Platform {
            name: "KaffeOS, No Write Barrier",
            kind: PlatformKind::KaffeOsNoBarrier,
        },
        Platform {
            name: "KaffeOS, Heap Pointer",
            kind: PlatformKind::KaffeOs(BarrierKind::HeapPointer),
        },
        Platform {
            name: "KaffeOS, No Heap Pointer",
            kind: PlatformKind::KaffeOs(BarrierKind::NoHeapPointer),
        },
        Platform {
            name: "KaffeOS, Fake Heap Pointer",
            kind: PlatformKind::KaffeOs(BarrierKind::FakeHeapPointer),
        },
    ]
}

impl Platform {
    /// VM configuration for this platform.
    pub fn config(&self) -> KaffeOsConfig {
        match self.kind {
            PlatformKind::Baseline(engine) => KaffeOsConfig::monolithic(engine, 128 << 20),
            PlatformKind::KaffeOsNoBarrier => KaffeOsConfig {
                barrier: BarrierKind::None,
                engine: Engine::KAFFEOS,
                monolithic: true,
                user_budget: 128 << 20,
                default_process_limit: 128 << 20,
                ..Default::default()
            },
            PlatformKind::KaffeOs(barrier) => KaffeOsConfig {
                barrier,
                engine: Engine::KAFFEOS,
                default_process_limit: 64 << 20,
                user_budget: 128 << 20,
                ..Default::default()
            },
        }
    }
}

/// One measurement: a benchmark on a platform.
#[derive(Debug, Clone)]
pub struct SpecResult {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Platform label.
    pub platform: &'static str,
    /// Deterministic modelled seconds at 500 MHz.
    pub virtual_seconds: f64,
    /// Host wall-clock seconds for the same run.
    pub wall_seconds: f64,
    /// Write barriers executed (Table 1 counts).
    pub barriers_executed: u64,
    /// Modelled cycles spent in barriers.
    pub barrier_cycles: u64,
    /// Cycles spent collecting the benchmark process' heap.
    pub gc_cycles: u64,
    /// The benchmark's checksum (must agree across platforms).
    pub checksum: i64,
}

/// Runs `bench` for `n` iterations on `platform`.
pub fn run_spec(bench: &SpecBenchmark, platform: &Platform, n: i64) -> SpecResult {
    let mut os = KaffeOs::new(platform.config());
    os.register_image(bench.name, bench.source)
        .unwrap_or_else(|e| panic!("{} does not compile: {e}", bench.name));
    let started = Instant::now();
    let pid = os
        .spawn(bench.name, &n.to_string(), None)
        .expect("benchmark spawns");
    let report = os.run(None);
    let wall = started.elapsed();
    let checksum = match os.status(pid) {
        Some(ExitStatus::Exited(v)) => v,
        other => panic!("{} on {} ended with {other:?}", bench.name, platform.name),
    };
    assert!(checksum >= 0, "{} checksum signals an error", bench.name);
    SpecResult {
        benchmark: bench.name,
        platform: platform.name,
        virtual_seconds: report.virtual_seconds,
        wall_seconds: wall.as_secs_f64(),
        barriers_executed: report.barrier.executed,
        barrier_cycles: report.barrier.cycles,
        gc_cycles: os.cpu(pid).gc,
        checksum,
    }
}
