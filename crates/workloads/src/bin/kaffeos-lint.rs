//! `kaffeos-lint`: run the static heap-flow analyzer over every bundled
//! guest program and print the diagnostics.
//!
//! ```text
//! cargo run -p kaffeos-workloads --bin kaffeos-lint
//! cargo run -p kaffeos-workloads --bin kaffeos-lint -- --allowlist ci/lint-allowlist.txt
//! ```
//!
//! With `--allowlist`, exits non-zero if any diagnostic key is missing
//! from the file — CI pins the expected lint surface this way.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    kaffeos_workloads::lint::run_lint_cli(&args)
}
