//! The machine model behind Figure 4.
//!
//! The paper's testbed is a 500 MHz Pentium III with 256 MB of RAM. The
//! IBM/1 configuration runs one JVM per servlet; each JVM costs about 2 MB
//! of virtual memory at startup and was capped at an 8 MB heap, and "an
//! attempt to start 100 IBM JVMs rendered the machine inoperable" — the
//! machine thrashes once the working set exceeds RAM. This model supplies
//! the deterministic equivalents: a commit-based thrash multiplier and the
//! fixed startup cost of booting a JVM.

/// Deterministic stand-in for the paper's testbed.
#[derive(Debug, Clone, Copy)]
pub struct MachineModel {
    /// Physical memory, bytes (256 MB).
    pub ram_bytes: u64,
    /// Per-OS-process (per-JVM) base footprint, bytes (~2 MB).
    pub vm_overhead_bytes: u64,
    /// Heap cap per JVM in the one-VM-per-servlet configuration (8 MB).
    pub heap_per_vm_bytes: u64,
    /// Modelled cycles to boot one JVM and its servlet engine.
    pub vm_startup_cycles: u64,
}

impl Default for MachineModel {
    fn default() -> Self {
        MachineModel {
            ram_bytes: 256 << 20,
            vm_overhead_bytes: 2 << 20,
            heap_per_vm_bytes: 8 << 20,
            vm_startup_cycles: 500_000_000, // 1 s at 500 MHz
        }
    }
}

impl MachineModel {
    /// Committed memory for `vms` concurrently running JVMs.
    pub fn committed(&self, vms: usize) -> u64 {
        vms as u64 * (self.vm_overhead_bytes + self.heap_per_vm_bytes)
    }

    /// Execution-time multiplier due to paging. 1.0 while everything fits;
    /// grows quadratically with the overcommit ratio once it does not —
    /// gentle at +10%, catastrophic at 4× RAM (the "inoperable" regime).
    pub fn thrash_factor(&self, committed: u64) -> f64 {
        if committed <= self.ram_bytes {
            return 1.0;
        }
        let over = (committed - self.ram_bytes) as f64 / self.ram_bytes as f64;
        1.0 + over * over * 40.0
    }

    /// Convenience: thrash factor for `vms` JVMs.
    pub fn thrash_for_vms(&self, vms: usize) -> f64 {
        self.thrash_factor(self.committed(vms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_thrash_within_ram() {
        let m = MachineModel::default();
        // 25 VMs × 10 MB = 250 MB < 256 MB.
        assert_eq!(m.thrash_for_vms(25), 1.0);
    }

    #[test]
    fn thrash_grows_past_ram() {
        let m = MachineModel::default();
        let f30 = m.thrash_for_vms(30);
        let f50 = m.thrash_for_vms(50);
        let f100 = m.thrash_for_vms(100);
        assert!(f30 > 1.0 && f30 < 3.0, "mild at 30 VMs: {f30}");
        assert!(f50 > f30, "monotone");
        assert!(f100 > 100.0, "inoperable at 100 VMs: {f100}");
    }
}
