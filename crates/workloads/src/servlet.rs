//! The servlet-engine experiment (Figure 4, §4.2).
//!
//! A fixed client workload (1000 requests in the paper) is served by `n`
//! servlets while a **MemHog** servlet — "sits in a loop, repeatedly
//! allocates memory, and keeps it from being garbage-collected" — attacks
//! the deployment. Like the paper's system administrator, the harness
//! restarts whatever crashes. Three deployments are compared:
//!
//! * **KaffeOS** — one VM, one KaffeOS process per servlet (JServ per
//!   process), 8 MB memlimit each. The MemHog is killed by its own limit
//!   and restarted; nobody else notices.
//! * **IBM/n** — one monolithic baseline VM hosting every servlet. The
//!   MemHog exhausts the shared heap; the first out-of-memory failure
//!   corrupts the engine and the whole VM must be restarted, losing all
//!   in-flight work and paying a full JVM startup.
//! * **IBM/1** — one baseline VM per servlet. Isolation comes from the
//!   operating system, at ~10 MB of commit per JVM: past ~25 VMs the
//!   256 MB machine starts to thrash ([`MachineModel`]).

use kaffeos::{CauseCounts, ExitCause, Engine, KaffeOs, KaffeOsConfig, Pid};

use crate::machine::MachineModel;

/// The well-behaved servlet: serves `requests` requests of dynamic
/// content, printing one marker per request so progress survives a crash
/// (responses already sent to clients count).
pub const SERVLET_SOURCE: &str = r#"
class Main {
    static void handle(int i) {
        // Query evaluation: sort a working set, then render a page.
        int[] rows = new int[64];
        for (int j = 0; j < rows.len(); j = j + 1) {
            rows[j] = (i * 37 + j * 101) % 997;
        }
        for (int a = 1; a < rows.len(); a = a + 1) {
            int key = rows[a];
            int b = a - 1;
            while (b >= 0 && rows[b] > key) {
                rows[b + 1] = rows[b];
                b = b - 1;
            }
            rows[b + 1] = key;
        }
        StringBuilder b = new StringBuilder();
        b.add("<html><body><h1>page ");
        b.add("" + i);
        b.add("</h1>");
        for (int j = 0; j < 24; j = j + 1) {
            b.add("<p>row " + rows[j] + "</p>");
        }
        b.add("</body></html>");
        String page = b.build();
        if (page.len() < 20) { Sys.print("error"); }
    }

    static int main(int requests) {
        int served = 0;
        while (served < requests) {
            Main.handle(served);
            Sys.print("r");
            served = served + 1;
        }
        return served;
    }
}
"#;

/// The denial-of-service servlet (§4.2). Class names are distinct from the
/// good servlet's so the two images can coexist in one monolithic
/// namespace (in a shared JServ they would be distinct servlet classes).
pub const MEMHOG_SOURCE: &str = r#"
class MemHogChunk {
    int[] data;
    MemHogChunk next;
}

class MemHog {
    static int main() {
        MemHogChunk head = null;
        while (true) {
            MemHogChunk c = new MemHogChunk();
            c.data = new int[4096];
            c.next = head;
            head = c;
        }
        return 0;
    }
}
"#;

/// Deployment under test (the three Figure 4 series).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deployment {
    /// One KaffeOS process per servlet.
    KaffeOsProcs,
    /// All servlets in one monolithic baseline VM ("IBM/n").
    MonolithicShared,
    /// One baseline VM per servlet ("IBM/1").
    VmPerServlet,
}

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct ServletParams {
    /// Which Figure 4 deployment to run.
    pub deployment: Deployment,
    /// Number of well-behaved servlets.
    pub servlets: usize,
    /// Replace one slot with a MemHog attacker.
    pub with_memhog: bool,
    /// Client requests, split round-robin over the good servlets.
    pub total_requests: u64,
    /// Heap of the shared monolithic VM (IBM/n). The paper does not state
    /// it; 64 MB comfortably serves the servlets while leaving the hog a
    /// realistic fill time.
    pub mono_heap_bytes: u64,
    /// The modelled machine (RAM, per-VM footprint, boot cost).
    pub machine: MachineModel,
}

impl ServletParams {
    /// Paper-scale defaults for one Figure 4 data point.
    pub fn figure4(deployment: Deployment, servlets: usize, with_memhog: bool) -> Self {
        ServletParams {
            deployment,
            servlets,
            with_memhog,
            total_requests: 1000,
            mono_heap_bytes: 32 << 20,
            machine: MachineModel::default(),
        }
    }
}

/// Experiment outcome.
#[derive(Debug, Clone, Copy)]
pub struct ServletOutcome {
    /// Modelled time for the good servlets to answer every request.
    pub virtual_seconds: f64,
    /// Whole-VM restarts (monolithic) — the crash count.
    pub vm_restarts: u32,
    /// MemHog kills/restarts that did *not* take anyone else down.
    pub memhog_restarts: u32,
    /// Requests the good servlets actually answered.
    pub requests_served: u64,
    /// Typed causes of every restart the administrator performed (VM
    /// reboots and MemHog respawns alike) — replaces the old ad-hoc
    /// "must be OOM" assertion strings on the restart path.
    pub restart_causes: CauseCounts,
}

/// Deadline increment for the crash-polling loops.
const CHUNK_CYCLES: u64 = 20_000_000;
/// Per-servlet heap/memlimit (the paper's 8 MB cap).
const SERVLET_HEAP: u64 = 8 << 20;
/// Hard cap on crash-restart rounds (safety net).
const MAX_ROUNDS: u32 = 10_000;

/// Splits `total` requests round-robin over `n` servlets.
fn shares(total: u64, n: usize) -> Vec<u64> {
    let base = total / n as u64;
    let extra = (total % n as u64) as usize;
    (0..n).map(|i| base + u64::from(i < extra)).collect()
}

fn served_count(stdout: &[String]) -> u64 {
    stdout.iter().filter(|l| l.as_str() == "r").count() as u64
}

/// Runs one Figure 4 data point.
pub fn run_servlet_experiment(params: ServletParams) -> ServletOutcome {
    match params.deployment {
        Deployment::KaffeOsProcs => run_kaffeos(params),
        Deployment::MonolithicShared => run_monolithic(params),
        Deployment::VmPerServlet => run_vm_per_servlet(params),
    }
}

fn register(os: &mut KaffeOs) {
    os.register_image("servlet", SERVLET_SOURCE)
        .expect("servlet compiles");
    os.register_image("memhog", MEMHOG_SOURCE)
        .expect("memhog compiles");
}

fn run_kaffeos(params: ServletParams) -> ServletOutcome {
    let mut os = KaffeOs::new(KaffeOsConfig {
        default_process_limit: SERVLET_HEAP,
        user_budget: params.machine.ram_bytes,
        ..KaffeOsConfig::default()
    });
    register(&mut os);
    let share = shares(params.total_requests, params.servlets);
    let servlets: Vec<Pid> = share
        .iter()
        .map(|&r| {
            os.spawn("servlet", &r.to_string(), Some(SERVLET_HEAP))
                .expect("servlet spawns")
        })
        .collect();
    let mut memhog = params.with_memhog.then(|| {
        os.spawn("memhog", "", Some(SERVLET_HEAP))
            .expect("memhog spawns")
    });
    let mut memhog_restarts = 0;
    let mut restart_causes = CauseCounts::default();

    loop {
        let deadline = os.clock() + CHUNK_CYCLES;
        os.run(Some(deadline));
        if let Some(hog) = memhog {
            if !os.is_alive(hog) {
                restart_causes.note(
                    os.status(hog)
                        .map(|s| s.cause())
                        .unwrap_or(ExitCause::Killed),
                );
                // The administrator restarts the crashed servlet zone —
                // a cheap process spawn under KaffeOS.
                memhog = Some(
                    os.spawn("memhog", "", Some(SERVLET_HEAP))
                        .expect("memhog respawns"),
                );
                memhog_restarts += 1;
            }
        }
        let all_done = servlets.iter().all(|&pid| !os.is_alive(pid));
        if all_done {
            break;
        }
    }
    if let Some(hog) = memhog {
        let _ = os.kill(hog);
    }
    let served: u64 = servlets
        .iter()
        .map(|&pid| served_count(os.stdout(pid)))
        .sum();
    // One VM boot, charged like every other deployment.
    let cycles = os.clock() + params.machine.vm_startup_cycles;
    ServletOutcome {
        virtual_seconds: kaffeos_heap::costs::cycles_to_seconds(cycles),
        vm_restarts: 0,
        memhog_restarts,
        requests_served: served,
        restart_causes,
    }
}

fn run_monolithic(params: ServletParams) -> ServletOutcome {
    // One shared VM: a heap that would comfortably serve the servlets, but
    // is shared with the attacker.
    let heap = params
        .mono_heap_bytes
        .max(params.servlets as u64 * (1 << 20));
    let mut remaining = shares(params.total_requests, params.servlets);
    let mut total_cycles = 0u64;
    let mut vm_restarts = 0u32;
    let mut restart_causes = CauseCounts::default();
    let mut rounds = 0u32;

    while remaining.iter().any(|&r| r > 0) {
        rounds += 1;
        if rounds > MAX_ROUNDS {
            break;
        }
        let mut os = KaffeOs::new(KaffeOsConfig::monolithic(Engine::JIT_IBM, heap));
        register(&mut os);
        total_cycles += params.machine.vm_startup_cycles;
        let servlets: Vec<Option<Pid>> = remaining
            .iter()
            .map(|&r| {
                (r > 0).then(|| {
                    os.spawn("servlet", &r.to_string(), None)
                        .expect("servlet spawns")
                })
            })
            .collect();
        let memhog = params
            .with_memhog
            .then(|| os.spawn("memhog", "", None).expect("memhog spawns"));

        // Run until the servlets finish or the engine corrupts: "the
        // system runs out of memory in seemingly random places ... This
        // corruption eventually led to a crash of the JVM" (§4.2).
        // `run_until_exit` observes every process death as it happens, so
        // service stops at the exact crash point.
        // The first fatal exit anywhere (the hog's OOM, or a servlet the
        // hog starved) is the VM crash; its typed cause feeds the restart
        // tally.
        let crash_cause = loop {
            os.run_until_exit(None);
            let fatal = servlets
                .iter()
                .flatten()
                .chain(memhog.iter())
                .find_map(|&pid| {
                    os.status(pid)
                        .map(|s| s.cause())
                        .filter(|c| matches!(c, ExitCause::Oom))
                });
            if fatal.is_some() {
                break fatal;
            }
            let all_done = servlets.iter().flatten().all(|&pid| !os.is_alive(pid));
            if all_done {
                break None;
            }
        };

        for (slot, pid) in servlets.iter().enumerate() {
            if let Some(pid) = pid {
                let served = served_count(os.stdout(*pid)).min(remaining[slot]);
                remaining[slot] -= served;
            }
        }
        total_cycles += os.clock();
        if let Some(cause) = crash_cause {
            vm_restarts += 1;
            restart_causes.note(cause);
        }
    }

    let served = params.total_requests - remaining.iter().sum::<u64>();
    ServletOutcome {
        virtual_seconds: kaffeos_heap::costs::cycles_to_seconds(total_cycles),
        vm_restarts,
        memhog_restarts: 0,
        requests_served: served,
        restart_causes,
    }
}

fn run_vm_per_servlet(params: ServletParams) -> ServletOutcome {
    struct Instance {
        os: KaffeOs,
        pid: Pid,
        done: bool,
    }
    let boot = |requests: Option<u64>| -> Instance {
        let mut os = KaffeOs::new(KaffeOsConfig::monolithic(Engine::JIT_IBM, SERVLET_HEAP));
        register(&mut os);
        let pid = match requests {
            Some(r) => os.spawn("servlet", &r.to_string(), None).expect("spawn"),
            None => os.spawn("memhog", "", None).expect("spawn"),
        };
        Instance {
            os,
            pid,
            done: false,
        }
    };

    let share = shares(params.total_requests, params.servlets);
    let mut instances: Vec<Instance> = share.iter().map(|&r| boot(Some(r))).collect();
    let mut hog = params.with_memhog.then(|| boot(None));
    let mut machine_cycles = 0f64;
    let mut memhog_restarts = 0u32;
    let mut restart_causes = CauseCounts::default();

    // Every JVM pays its startup, under the current memory pressure.
    let initial_vms = instances.len() + usize::from(hog.is_some());
    machine_cycles += params.machine.vm_startup_cycles as f64
        * initial_vms as f64
        * params.machine.thrash_for_vms(initial_vms);

    loop {
        let live = instances.iter().filter(|i| !i.done).count() + usize::from(hog.is_some());
        let thrash = params.machine.thrash_for_vms(live);
        let mut progressed = false;
        for inst in instances.iter_mut().filter(|i| !i.done) {
            let before = inst.os.clock();
            inst.os.run(Some(before + CHUNK_CYCLES));
            machine_cycles += (inst.os.clock() - before) as f64 * thrash;
            progressed = true;
            if !inst.os.is_alive(inst.pid) {
                inst.done = true;
            }
        }
        if let Some(h) = hog.as_mut() {
            let before = h.os.clock();
            h.os.run(Some(before + CHUNK_CYCLES));
            machine_cycles += (h.os.clock() - before) as f64 * thrash;
            if !h.os.is_alive(h.pid) {
                // The hog only crashes its own JVM; the administrator
                // restarts it — a full JVM boot.
                restart_causes.note(
                    h.os.status(h.pid)
                        .map(|s| s.cause())
                        .unwrap_or(ExitCause::Killed),
                );
                *h = boot(None);
                machine_cycles += params.machine.vm_startup_cycles as f64 * thrash;
                memhog_restarts += 1;
            }
        }
        if instances.iter().all(|i| i.done) {
            break;
        }
        assert!(progressed, "scheduler made no progress");
    }

    let served: u64 = instances
        .iter()
        .map(|i| served_count(i.os.stdout(i.pid)))
        .sum();
    ServletOutcome {
        virtual_seconds: kaffeos_heap::costs::cycles_to_seconds(machine_cycles as u64),
        vm_restarts: 0,
        memhog_restarts,
        requests_served: served,
        restart_causes,
    }
}
