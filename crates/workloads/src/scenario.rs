//! Multi-tenant SLO scenarios: open-loop arrival curves driven against
//! the kernel's admission controller, restart engine, and circuit
//! breaker, producing a per-tenant SLO report (latency percentiles,
//! goodput, kills, rejections, restarts) that is a **pure function of
//! (scenario, seed)** — byte-identical across runs and platforms.
//!
//! The driver is open-loop: requests arrive on a virtual-time schedule
//! whether or not the system keeps up, which is what makes overload
//! visible (queues fill, admissions reject, latency tails grow) instead
//! of the load generator politely backing off. Each request is one
//! process spawned through `spawn_for_tenant`; its SLO latency is the
//! span from its *scheduled arrival* to its exit, so queueing delay
//! counts against the tenant exactly as a client would experience it.

use kaffeos::{
    Admission, ExitStatus, FaultPlan, KaffeOs, KaffeOsConfig, OverloadPolicy, Pid, SpawnOpts,
    TenantId, TenantPolicy, TenantStats,
};
use kaffeos_trace::hist::LogHistogram;

use crate::servlet::MEMHOG_SOURCE;

/// Open-loop arrival schedule: the inter-arrival interval as a pure
/// function of virtual time, so every curve replays exactly.
#[derive(Debug, Clone, Copy)]
pub enum ArrivalCurve {
    /// Constant inter-arrival interval.
    Steady {
        /// Cycles between arrivals.
        interval: u64,
    },
    /// Triangle-wave load: the interval sweeps from `max_interval`
    /// (off-peak) down to `min_interval` (peak) and back over `period`.
    Diurnal {
        /// Peak-load inter-arrival interval.
        min_interval: u64,
        /// Off-peak inter-arrival interval.
        max_interval: u64,
        /// Full wave period in cycles.
        period: u64,
    },
    /// Periodic bursts: `burst_interval` for the first `burst_len`
    /// cycles of every `period`, `base_interval` otherwise.
    Burst {
        /// Quiet-phase inter-arrival interval.
        base_interval: u64,
        /// Burst-phase inter-arrival interval.
        burst_interval: u64,
        /// Burst duration per period, in cycles.
        burst_len: u64,
        /// Period in cycles.
        period: u64,
    },
    /// Denial-of-service ramp: the interval starts at `start_interval`
    /// and halves every `halve_every` cycles down to `floor_interval`.
    Dos {
        /// Initial inter-arrival interval.
        start_interval: u64,
        /// Terminal (fastest) inter-arrival interval.
        floor_interval: u64,
        /// Cycles per halving step.
        halve_every: u64,
    },
}

impl ArrivalCurve {
    /// Inter-arrival interval in effect at virtual time `t` (never 0).
    pub fn interval_at(&self, t: u64) -> u64 {
        match *self {
            ArrivalCurve::Steady { interval } => interval.max(1),
            ArrivalCurve::Diurnal {
                min_interval,
                max_interval,
                period,
            } => {
                let period = period.max(2);
                let half = period / 2;
                let pos = t % period;
                let toward_peak = if pos < half { pos } else { period - pos };
                let span = max_interval.saturating_sub(min_interval);
                (max_interval - span * toward_peak / half).max(1)
            }
            ArrivalCurve::Burst {
                base_interval,
                burst_interval,
                burst_len,
                period,
            } => {
                if t % period.max(1) < burst_len {
                    burst_interval.max(1)
                } else {
                    base_interval.max(1)
                }
            }
            ArrivalCurve::Dos {
                start_interval,
                floor_interval,
                halve_every,
            } => {
                let steps = (t / halve_every.max(1)).min(63) as u32;
                (start_interval >> steps).max(floor_interval).max(1)
            }
        }
    }
}

/// How a request tenant derives each spawn's argument string.
#[derive(Debug, Clone, Copy)]
enum ArgMode {
    /// Same argument for every request.
    Fixed(&'static str),
    /// The request's 0-based issue index.
    Index,
}

/// A tenant whose load is a stream of request processes on a curve.
struct RequestTenantSpec {
    name: &'static str,
    policy: TenantPolicy,
    image: &'static str,
    args: ArgMode,
    opts: SpawnOpts,
    curve: ArrivalCurve,
}

/// A tenant whose load is long-running supervised replicas.
struct ServiceTenantSpec {
    name: &'static str,
    policy: TenantPolicy,
    image: &'static str,
    args: &'static str,
    opts: SpawnOpts,
    replicas: u32,
}

/// One scenario definition: kernel setup plus tenant population.
struct Setup {
    images: Vec<(&'static str, &'static str)>,
    shared_sources: Vec<&'static str>,
    faults: Option<FaultPlan>,
    overload: Option<OverloadPolicy>,
    services: Vec<ServiceTenantSpec>,
    requests: Vec<RequestTenantSpec>,
    /// Virtual cycle at which arrivals stop.
    end: u64,
}

/// Per-tenant SLO summary, the structured form of one report block.
#[derive(Debug, Clone)]
pub struct TenantSummary {
    /// Tenant name.
    pub name: String,
    /// Kernel-side counters (admissions, rejections, restarts, exits).
    pub stats: TenantStats,
    /// Requests that ran to completion (any cause).
    pub completed: u64,
    /// Requests that completed successfully (clean exit, code ≥ 0).
    pub good: u64,
    /// `good * 1000 / offered` (0 when nothing was offered).
    pub goodput_permille: u64,
    /// Arrival→exit latency of completed requests, in cycles.
    pub latency: LogHistogram,
}

/// One scenario run: the golden report text plus structured summaries.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: &'static str,
    /// Seed the run derived from.
    pub seed: u64,
    /// Deterministic key=value report (byte-identical per (name, seed)).
    pub text: String,
    /// Per-tenant summaries, in tenant-creation order.
    pub tenants: Vec<TenantSummary>,
}

/// Names of every scenario, in running order.
pub const SCENARIOS: &[&str] = &[
    "noisy-neighbour",
    "memhog",
    "exception-storm",
    "shm-fanout",
    "kill-storm",
    "admission-overload",
];

/// Idle grace after `end` for in-flight requests to finish.
const DRAIN_CYCLES: u64 = 100_000_000;

/// One-request servlet: bounded dynamic-content work, clean exit.
const PAGE_SOURCE: &str = r#"
class Main {
    static int main(int i) {
        int[] rows = new int[64];
        for (int j = 0; j < rows.len(); j = j + 1) {
            rows[j] = (i * 37 + j * 101) % 997;
        }
        for (int a = 1; a < rows.len(); a = a + 1) {
            int key = rows[a];
            int b = a - 1;
            while (b >= 0 && rows[b] > key) {
                rows[b + 1] = rows[b];
                b = b - 1;
            }
            rows[b + 1] = key;
        }
        StringBuilder b = new StringBuilder();
        b.add("<html><body><h1>page ");
        b.add("" + i);
        b.add("</h1>");
        for (int j = 0; j < 16; j = j + 1) {
            b.add("<p>row " + rows[j] + "</p>");
        }
        b.add("</body></html>");
        String page = b.build();
        if (page.len() < 20) { return 1 / 0; }
        return 0;
    }
}
"#;

/// CPU abuser: spins forever; only a CPU limit stops it.
const SPIN_SOURCE: &str = "class Spin { static int main() { while (true) { } return 0; } }";

/// Request that throws an uncaught exception on every third index.
const FLAKY_SOURCE: &str = r#"
class Main {
    static int main(int i) {
        if (i % 3 == 2) {
            int[] a = new int[1];
            return a[9];
        }
        int acc = 0;
        for (int j = 0; j < 400; j = j + 1) {
            acc = acc + (i + j) * 7 % 31;
        }
        return 0;
    }
}
"#;

/// Shared-heap feeder: publishes a 64-slot `Cell` table, then idles on a
/// paced NIC so it stays alive without burning CPU or deadlocking the
/// scheduler (timed parks feed the idle fast-forward).
const FEEDER_SOURCE: &str = r#"
class Main {
    static int main() {
        Shm.create("feed", "Cell", 64);
        for (int i = 0; i < 64; i = i + 1) {
            Cell c = Shm.get("feed", i) as Cell;
            c.value = i * 17;
        }
        while (true) {
            Net.send(1000);
        }
        return 0;
    }
}
"#;

/// Fan-out reader: attaches to the shared table and consumes it in place.
const FAN_SOURCE: &str = r#"
class Main {
    static int main() {
        if (Shm.lookup("feed") < 0) { return 1 / 0; }
        int acc = 0;
        for (int i = 0; i < 64; i = i + 1) {
            Cell c = Shm.get("feed", i) as Cell;
            acc = acc + c.value;
        }
        if (acc < 0) { return 1 / 0; }
        return 0;
    }
}
"#;

/// Copy baseline: rebuilds the same table privately on every request.
const COPY_SOURCE: &str = r#"
class Main {
    static int main() {
        int acc = 0;
        for (int r = 0; r < 8; r = r + 1) {
            int[] local = new int[64];
            for (int i = 0; i < 64; i = i + 1) {
                local[i] = i * 17;
            }
            for (int i = 0; i < 64; i = i + 1) {
                acc = acc + local[i];
            }
        }
        if (acc < 0) { return 1 / 0; }
        return 0;
    }
}
"#;

fn base_policy() -> TenantPolicy {
    TenantPolicy {
        max_procs: 8,
        queue_capacity: 16,
        ..TenantPolicy::default()
    }
}

fn steady(interval: u64) -> ArrivalCurve {
    ArrivalCurve::Steady { interval }
}

fn page_tenant(name: &'static str, curve: ArrivalCurve) -> RequestTenantSpec {
    RequestTenantSpec {
        name,
        policy: base_policy(),
        image: "page",
        args: ArgMode::Index,
        opts: SpawnOpts {
            mem_limit: Some(2 << 20),
            ..SpawnOpts::default()
        },
        curve,
    }
}

fn setup_for(name: &str, seed: u64) -> Option<Setup> {
    let page = ("page", PAGE_SOURCE);
    match name {
        "noisy-neighbour" => Some(Setup {
            images: vec![page, ("spin", SPIN_SOURCE)],
            shared_sources: vec![],
            faults: None,
            overload: None,
            services: vec![ServiceTenantSpec {
                name: "abuser",
                policy: TenantPolicy {
                    max_procs: 2,
                    restart: kaffeos::RestartPolicy {
                        restart_on_failure: true,
                        max_restarts: 32,
                        backoff_base: 4_000_000,
                        backoff_cap: 32_000_000,
                        breaker_threshold: 0,
                        ..kaffeos::RestartPolicy::default()
                    },
                    ..base_policy()
                },
                image: "spin",
                args: "",
                opts: SpawnOpts {
                    cpu_limit: Some(8_000_000),
                    cpu_share: 50,
                    mem_limit: Some(1 << 20),
                    ..SpawnOpts::default()
                },
                replicas: 2,
            }],
            requests: vec![page_tenant("frontend", steady(2_500_000))],
            end: 250_000_000,
        }),
        "memhog" => Some(Setup {
            images: vec![page, ("memhog", MEMHOG_SOURCE)],
            shared_sources: vec![],
            faults: None,
            overload: None,
            services: vec![ServiceTenantSpec {
                name: "hog",
                policy: TenantPolicy {
                    max_procs: 1,
                    restart: kaffeos::RestartPolicy {
                        restart_on_failure: true,
                        max_restarts: 64,
                        backoff_base: 2_000_000,
                        backoff_cap: 16_000_000,
                        breaker_threshold: 0,
                        ..kaffeos::RestartPolicy::default()
                    },
                    ..base_policy()
                },
                image: "memhog",
                args: "",
                opts: SpawnOpts {
                    mem_limit: Some(4 << 20),
                    ..SpawnOpts::default()
                },
                replicas: 1,
            }],
            requests: vec![page_tenant("frontend", steady(2_500_000))],
            end: 250_000_000,
        }),
        "exception-storm" => Some(Setup {
            images: vec![page, ("flaky", FLAKY_SOURCE)],
            shared_sources: vec![],
            faults: None,
            overload: None,
            services: vec![],
            requests: vec![
                page_tenant("frontend", steady(3_000_000)),
                RequestTenantSpec {
                    name: "flaky",
                    policy: TenantPolicy {
                        restart: kaffeos::RestartPolicy {
                            breaker_threshold: 6,
                            breaker_window: 40_000_000,
                            breaker_cooldown: 30_000_000,
                            ..kaffeos::RestartPolicy::default()
                        },
                        ..base_policy()
                    },
                    image: "flaky",
                    args: ArgMode::Index,
                    opts: SpawnOpts {
                        mem_limit: Some(2 << 20),
                        ..SpawnOpts::default()
                    },
                    curve: steady(1_500_000),
                },
            ],
            end: 250_000_000,
        }),
        "shm-fanout" => Some(Setup {
            images: vec![
                ("feeder", FEEDER_SOURCE),
                ("fan", FAN_SOURCE),
                ("copy", COPY_SOURCE),
            ],
            shared_sources: vec!["class Cell { int value; }"],
            faults: None,
            overload: None,
            services: vec![ServiceTenantSpec {
                name: "feeder",
                policy: base_policy(),
                image: "feeder",
                args: "",
                opts: SpawnOpts {
                    net_bps: Some(10_000),
                    mem_limit: Some(2 << 20),
                    ..SpawnOpts::default()
                },
                replicas: 1,
            }],
            requests: vec![
                RequestTenantSpec {
                    name: "fanout",
                    policy: base_policy(),
                    image: "fan",
                    args: ArgMode::Fixed(""),
                    opts: SpawnOpts {
                        mem_limit: Some(2 << 20),
                        ..SpawnOpts::default()
                    },
                    curve: steady(2_500_000),
                },
                RequestTenantSpec {
                    name: "copier",
                    policy: base_policy(),
                    image: "copy",
                    args: ArgMode::Fixed(""),
                    opts: SpawnOpts {
                        mem_limit: Some(2 << 20),
                        ..SpawnOpts::default()
                    },
                    curve: steady(2_500_000),
                },
            ],
            end: 250_000_000,
        }),
        "kill-storm" => {
            let mut plan = FaultPlan::quiet(seed);
            plan.kill_sweep = true;
            Some(Setup {
                images: vec![page, ("spin", SPIN_SOURCE)],
                shared_sources: vec![],
                faults: Some(plan),
                overload: None,
                services: vec![ServiceTenantSpec {
                    name: "victims",
                    policy: TenantPolicy {
                        max_procs: 3,
                        restart: kaffeos::RestartPolicy {
                            restart_on_failure: true,
                            max_restarts: 8,
                            backoff_base: 2_000_000,
                            backoff_cap: 32_000_000,
                            breaker_threshold: 4,
                            breaker_window: 50_000_000,
                            breaker_cooldown: 60_000_000,
                        },
                        ..base_policy()
                    },
                    image: "spin",
                    args: "",
                    opts: SpawnOpts {
                        cpu_limit: Some(50_000_000),
                        mem_limit: Some(1 << 20),
                        ..SpawnOpts::default()
                    },
                    replicas: 3,
                }],
                requests: vec![page_tenant("frontend", steady(4_000_000))],
                end: 200_000_000,
            })
        }
        "admission-overload" => Some(Setup {
            images: vec![page],
            shared_sources: vec![],
            faults: None,
            overload: None,
            services: vec![],
            requests: vec![
                page_tenant("steady", steady(3_000_000)),
                RequestTenantSpec {
                    name: "flood",
                    policy: TenantPolicy {
                        max_procs: 2,
                        queue_capacity: 4,
                        ..base_policy()
                    },
                    image: "page",
                    args: ArgMode::Index,
                    opts: SpawnOpts {
                        mem_limit: Some(2 << 20),
                        ..SpawnOpts::default()
                    },
                    curve: ArrivalCurve::Dos {
                        start_interval: 4_000_000,
                        floor_interval: 150_000,
                        halve_every: 40_000_000,
                    },
                },
            ],
            end: 250_000_000,
        }),
        _ => None,
    }
}

/// An in-flight request tenant while the driver runs.
struct LiveRequestTenant {
    tenant: TenantId,
    image: &'static str,
    args: ArgMode,
    opts: SpawnOpts,
    curve: ArrivalCurve,
    next: u64,
    issued: u64,
}

/// Per-tenant SLO accumulator.
#[derive(Default)]
struct Acc {
    completed: u64,
    good: u64,
    latency: LogHistogram,
}

/// Runs one named scenario for one seed; `None` for unknown names.
pub fn run_scenario(name: &str, seed: u64) -> Option<ScenarioReport> {
    let canonical = SCENARIOS.iter().find(|&&s| s == name)?;
    let setup = setup_for(canonical, seed)?;
    Some(drive(canonical, seed, setup))
}

fn drive(name: &'static str, seed: u64, setup: Setup) -> ScenarioReport {
    let mut os = KaffeOs::new(KaffeOsConfig {
        // Elision is host-wall-clock-only analysis re-run on every spawn;
        // scenarios spawn a process per request, so keep it off.
        elide: false,
        ..KaffeOsConfig::default()
    });
    for src in &setup.shared_sources {
        os.load_shared_source(src).expect("shared source compiles");
    }
    for (img, src) in &setup.images {
        os.register_image(img, src).expect("scenario image compiles");
    }
    if let Some(plan) = setup.faults {
        os.install_faults(plan);
    }
    os.set_overload_policy(setup.overload);

    let mut names: Vec<&'static str> = Vec::new();
    let mut service_tenants: Vec<TenantId> = Vec::new();
    for svc in &setup.services {
        let t = os.create_tenant(svc.name, svc.policy);
        names.push(svc.name);
        service_tenants.push(t);
        for _ in 0..svc.replicas {
            // Service replicas go through admission like everyone else;
            // a failed boot surfaces in the tenant's stats.
            let _ = os.spawn_for_tenant(t, svc.image, svc.args, svc.opts);
        }
    }
    // Seed-derived phase offset: different seeds shift every arrival
    // schedule, giving each seed a genuinely different interleaving.
    let phase = (seed % 7) * 100_000;
    let mut reqs: Vec<LiveRequestTenant> = Vec::new();
    for (i, spec) in setup.requests.iter().enumerate() {
        let t = os.create_tenant(spec.name, spec.policy);
        names.push(spec.name);
        reqs.push(LiveRequestTenant {
            tenant: t,
            image: spec.image,
            args: spec.args,
            opts: spec.opts,
            curve: spec.curve,
            next: 5_000_000 + phase + i as u64 * 333_333,
            issued: 0,
        });
    }
    let tenant_count = names.len();
    let mut accs: Vec<Acc> = (0..tenant_count).map(|_| Acc::default()).collect();
    // (pid, tenant, scheduled arrival) of every in-flight request.
    let mut outstanding: Vec<(Pid, TenantId, u64)> = Vec::new();
    // (tenant, ticket, scheduled arrival) of queued admissions.
    let mut ticketed: Vec<(TenantId, u64, u64)> = Vec::new();

    // Arrival loop: issue due arrivals, run to the next event, harvest.
    loop {
        let now = os.clock();
        if now >= setup.end {
            break;
        }
        for rt in &mut reqs {
            while rt.next <= now && rt.next < setup.end {
                let arrival = rt.next;
                let args = match rt.args {
                    ArgMode::Fixed(s) => s.to_string(),
                    ArgMode::Index => rt.issued.to_string(),
                };
                rt.issued += 1;
                rt.next += rt.curve.interval_at(rt.next);
                match os.spawn_for_tenant(rt.tenant, rt.image, &args, rt.opts) {
                    Ok(Admission::Admitted(pid)) => {
                        outstanding.push((pid, rt.tenant, arrival));
                    }
                    Ok(Admission::Queued { ticket }) => {
                        ticketed.push((rt.tenant, ticket, arrival));
                    }
                    Err(_) => {} // typed and tallied in TenantStats
                }
            }
        }
        let next_arrival = reqs
            .iter()
            .map(|rt| rt.next)
            .filter(|&t| t < setup.end)
            .min()
            .unwrap_or(setup.end)
            .min(setup.end);
        os.run_until_exit(Some(next_arrival));
        harvest(&mut os, &mut outstanding, &mut ticketed, &mut accs, true);
        // Idle stall (nothing runnable, nothing timed): jump to the next
        // arrival so the open-loop schedule keeps its promises.
        if os.clock() < next_arrival {
            os.advance_clock_to(next_arrival);
        }
    }

    // Drain: no new arrivals; let in-flight requests finish.
    let drain_deadline = setup.end + DRAIN_CYCLES;
    while !outstanding.is_empty() || !ticketed.is_empty() {
        let before_clock = os.clock();
        if before_clock >= drain_deadline {
            break;
        }
        let before_work = outstanding.len() + ticketed.len();
        os.run_until_exit(Some(drain_deadline));
        harvest(&mut os, &mut outstanding, &mut ticketed, &mut accs, true);
        if os.clock() == before_clock && outstanding.len() + ticketed.len() == before_work {
            break; // wedged on something non-clock-driven
        }
    }

    // Teardown: kill services and whatever outlived the drain; their
    // exits are tallied (as kills) but record no latency.
    for &t in &service_tenants {
        for pid in os.tenant_live_pids(t) {
            let _ = os.kill(pid);
        }
    }
    for &(pid, _, _) in &outstanding {
        let _ = os.kill(pid);
    }
    os.run(Some(os.clock() + 50_000_000));
    harvest(&mut os, &mut outstanding, &mut ticketed, &mut accs, false);

    // Report: all-integer key=value text, tenants in creation order.
    use std::fmt::Write as _;
    let mut text = String::new();
    let _ = writeln!(text, "scenario={name} seed={seed}");
    let _ = writeln!(text, "end={} clock={}", setup.end, os.clock());
    let mut tenants = Vec::new();
    for (i, &tname) in names.iter().enumerate() {
        let t = TenantId(i as u32);
        let stats = *os.tenant_stats(t).expect("tenant exists");
        let acc = &accs[i];
        let goodput = (acc.good * 1000).checked_div(stats.offered).unwrap_or(0);
        let _ = writeln!(text, "tenant={tname}");
        let _ = writeln!(
            text,
            "  offered={} admitted={} queued={} rejected_cap={} rejected_breaker={} \
             rejected_shed={} spawn_failures={} restarts={} restarts_abandoned={} \
             breaker_opens={} sheds={}",
            stats.offered,
            stats.admitted,
            stats.queued,
            stats.rejected_cap,
            stats.rejected_breaker,
            stats.rejected_shed,
            stats.spawn_failures,
            stats.restarts,
            stats.restarts_abandoned,
            stats.breaker_opens,
            stats.sheds,
        );
        let _ = writeln!(text, "  exits {}", stats.exits.render());
        let _ = writeln!(
            text,
            "  heap bytes_reaped={} objects_reaped={} gcs={} minor_gcs={}",
            stats.heap_bytes_reaped,
            stats.heap_objects_reaped,
            stats.heap_gcs,
            stats.heap_minor_gcs,
        );
        let _ = writeln!(
            text,
            "  completed={} good={} goodput_permille={goodput}",
            acc.completed, acc.good
        );
        let _ = writeln!(
            text,
            "  latency count={} min={} p50={} p99={} p999={} max={}",
            acc.latency.count(),
            acc.latency.min(),
            acc.latency.p50(),
            acc.latency.p99(),
            acc.latency.p999(),
            acc.latency.max(),
        );
        tenants.push(TenantSummary {
            name: tname.to_string(),
            stats,
            completed: acc.completed,
            good: acc.good,
            goodput_permille: goodput,
            latency: acc.latency.clone(),
        });
    }
    ScenarioReport {
        name,
        seed,
        text,
        tenants,
    }
}

/// Resolves queued-admission launches to their arrival times and folds
/// finished requests into the per-tenant accumulators.
fn harvest(
    os: &mut KaffeOs,
    outstanding: &mut Vec<(Pid, TenantId, u64)>,
    ticketed: &mut Vec<(TenantId, u64, u64)>,
    accs: &mut [Acc],
    record_latency: bool,
) {
    for launch in os.drain_tenant_launches() {
        let Some(ticket) = launch.ticket else {
            continue; // supervised restart, not a request
        };
        if let Some(pos) = ticketed
            .iter()
            .position(|&(t, k, _)| t == launch.tenant && k == ticket)
        {
            let (_, _, arrival) = ticketed.remove(pos);
            outstanding.push((launch.pid, launch.tenant, arrival));
        }
    }
    let now = os.clock();
    let mut still = Vec::with_capacity(outstanding.len());
    for (pid, tenant, arrival) in outstanding.drain(..) {
        if os.is_alive(pid) {
            still.push((pid, tenant, arrival));
            continue;
        }
        let acc = &mut accs[tenant.0 as usize];
        acc.completed += 1;
        if matches!(os.status(pid), Some(ExitStatus::Exited(code)) if code >= 0) {
            acc.good += 1;
        }
        if record_latency {
            acc.latency.record(now.saturating_sub(arrival));
        }
    }
    *outstanding = still;
}
