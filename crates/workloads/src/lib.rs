//! Workloads for the KaffeOS reproduction: the SPEC JVM98-analogue guest
//! programs behind Figure 3 and Table 1, and the servlet-engine experiment
//! behind Figure 4.
//!
//! SPEC JVM98 itself is proprietary and needs a full JDK 1.1; these Cup
//! programs are substitutes chosen so the paper's per-benchmark
//! observations carry over: `compress` executes almost no write barriers,
//! `db` the most, `jack` raises thousands of exceptions (the fast-dispatch
//! story), `mpegaudio` is float-heavy with little allocation, `mtrt` is a
//! two-thread ray tracer, `jess` a forward-chaining rule engine, and
//! `javac` a compiler front-end — all deterministic, all returning a
//! checksum so every platform configuration can be cross-checked.

pub mod lint;
pub mod machine;
pub mod runner;
pub mod scenario;
pub mod servlet;
pub mod spec;

pub use machine::MachineModel;
pub use runner::{platforms, run_spec, Platform, PlatformKind, SpecResult};
pub use scenario::{run_scenario, ArrivalCurve, ScenarioReport, TenantSummary, SCENARIOS};
pub use servlet::{run_servlet_experiment, Deployment, ServletOutcome, ServletParams};
pub use spec::{all_benchmarks, SpecBenchmark};

#[cfg(test)]
mod tests;
