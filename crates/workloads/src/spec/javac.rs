//! `javac` — compiler front-end (213_javac analogue).
//!
//! Generates arithmetic-expression source strings, tokenises them, parses
//! them with recursive descent into AST objects, folds constants, and
//! evaluates — the lex/parse/tree-build/walk profile of a compiler, with
//! a mixed allocation and string load like SPEC's javac.

pub const SOURCE: &str = r#"
// kind: 0 number, 1 '+', 2 '*', 3 '(', 4 ')', 5 '-', 6 end
class Tok {
    int kind;
    int value;
    init(int kind, int value) { this.kind = kind; this.value = value; }
}

class Node {
    int op;       // 0 literal, 1 add, 2 mul, 5 sub
    int value;
    Node left;
    Node right;
    init(int op) { this.op = op; }
}

class Parser {
    Tok[] toks;
    int pos;
    init(Tok[] toks) { this.toks = toks; this.pos = 0; }

    Tok peek() { return toks[pos]; }

    Tok bump() {
        Tok t = toks[pos];
        pos = pos + 1;
        return t;
    }

    Node expr() {
        Node lhs = this.term();
        while (this.peek().kind == 1 || this.peek().kind == 5) {
            int op = this.bump().kind;
            Node rhs = this.term();
            Node parent = new Node(op);
            parent.left = lhs;
            parent.right = rhs;
            lhs = parent;
        }
        return lhs;
    }

    Node term() {
        Node lhs = this.factor();
        while (this.peek().kind == 2) {
            this.bump();
            Node rhs = this.factor();
            Node parent = new Node(2);
            parent.left = lhs;
            parent.right = rhs;
            lhs = parent;
        }
        return lhs;
    }

    Node factor() {
        Tok t = this.bump();
        if (t.kind == 0) {
            Node leaf = new Node(0);
            leaf.value = t.value;
            return leaf;
        }
        if (t.kind == 3) {
            Node inner = this.expr();
            this.bump(); // ')'
            return inner;
        }
        throw new Exception("parse error at " + t.kind);
    }
}

class Main {
    static Tok[] lex(String src) {
        Tok[] out = new Tok[src.len() + 1];
        int o = 0;
        int i = 0;
        while (i < src.len()) {
            int c = src.charAt(i);
            if (c >= 48 && c <= 57) {
                int v = 0;
                while (i < src.len()) {
                    int d = src.charAt(i);
                    if (d < 48 || d > 57) { break; }
                    v = v * 10 + (d - 48);
                    i = i + 1;
                }
                out[o] = new Tok(0, v);
                o = o + 1;
            } else {
                if (c == 43) { out[o] = new Tok(1, 0); o = o + 1; }
                if (c == 42) { out[o] = new Tok(2, 0); o = o + 1; }
                if (c == 40) { out[o] = new Tok(3, 0); o = o + 1; }
                if (c == 41) { out[o] = new Tok(4, 0); o = o + 1; }
                if (c == 45) { out[o] = new Tok(5, 0); o = o + 1; }
                i = i + 1;
            }
        }
        out[o] = new Tok(6, 0);
        Tok[] trimmed = new Tok[o + 1];
        for (int k = 0; k <= o; k = k + 1) { trimmed[k] = out[k]; }
        return trimmed;
    }

    static int eval(Node n) {
        if (n.op == 0) { return n.value; }
        int l = Main.eval(n.left);
        int r = Main.eval(n.right);
        if (n.op == 1) { return l + r; }
        if (n.op == 2) { return l * r; }
        return l - r;
    }

    // Constant folding: rebuilds the tree bottom-up (allocation churn).
    static Node fold(Node n) {
        if (n.op == 0) { return n; }
        Node l = Main.fold(n.left);
        Node r = Main.fold(n.right);
        if (l.op == 0 && r.op == 0) {
            Node leaf = new Node(0);
            if (n.op == 1) { leaf.value = l.value + r.value; }
            if (n.op == 2) { leaf.value = l.value * r.value; }
            if (n.op == 5) { leaf.value = l.value - r.value; }
            return leaf;
        }
        Node parent = new Node(n.op);
        parent.left = l;
        parent.right = r;
        return parent;
    }

    // Deterministic expression generator.
    static String gen(int depth) {
        if (depth == 0 || Random.next(4) == 0) {
            return "" + Random.next(100);
        }
        int op = Random.next(3);
        String lhs = Main.gen(depth - 1);
        String rhs = Main.gen(depth - 1);
        if (op == 0) { return "(" + lhs + "+" + rhs + ")"; }
        if (op == 1) { return "(" + lhs + "*" + rhs + ")"; }
        return "(" + lhs + "-" + rhs + ")";
    }

    static int main(int n) {
        int check = 0;
        for (int iter = 0; iter < n; iter = iter + 1) {
            Random.setSeed(1000 + iter);
            for (int e = 0; e < 12; e = e + 1) {
                String src = Main.gen(5);
                Tok[] toks = Main.lex(src);
                Parser p = new Parser(toks);
                Node tree = p.expr();
                int direct = Main.eval(tree);
                Node folded = Main.fold(tree);
                if (folded.op != 0) { return -1; }
                if (folded.value != direct) { return -2; }
                check = (check + direct + src.len()) % 1000000007;
                if (check < 0) { check = check + 1000000007; }
            }
        }
        return check;
    }
}
"#;
