//! `mtrt` — multi-threaded ray tracer (227_mtrt analogue).
//!
//! Two green threads render the top and bottom halves of a small scene of
//! spheres (quadratic intersection with `Math.sqrt`, depth shading),
//! synchronising through per-process statics — SPEC's mtrt is exactly a
//! two-thread raytracer.

pub const SOURCE: &str = r#"
class Sphere {
    float cx;
    float cy;
    float cz;
    float r;
    int color;
    init(float cx, float cy, float cz, float r, int color) {
        this.cx = cx;
        this.cy = cy;
        this.cz = cz;
        this.r = r;
        this.color = color;
    }
}

class Scene {
    static Sphere[] spheres;
    static int[] pixels;
    static int width;
    static int height;
    static int done0;
    static int done1;
}

// Per-ray hit record: like SPEC's mtrt, the tracer allocates intersection
// objects as it works (object churn plus reference stores).
class Hit {
    Sphere sphere;
    float t;
}

class Tracer {
    // Renders rows [y0, y1) of the image.
    static void renderHalf(int half) {
        int w = Scene.width;
        int h = Scene.height;
        int y0 = 0;
        int y1 = h / 2;
        if (half == 1) { y0 = h / 2; y1 = h; }
        for (int y = y0; y < y1; y = y + 1) {
            for (int x = 0; x < w; x = x + 1) {
                Scene.pixels[y * w + x] = Tracer.trace(x, y, w, h);
            }
        }
        if (half == 0) { Scene.done0 = 1; } else { Scene.done1 = 1; }
    }

    // Casts a ray from the origin through pixel (x, y); returns a shaded
    // colour for the nearest sphere hit, 0 for the background.
    static int trace(int x, int y, int w, int h) {
        float dx = (x * 2.0 - w) / w;
        float dy = (y * 2.0 - h) / h;
        float dz = 1.0;
        float len = Math.sqrt(dx * dx + dy * dy + dz * dz);
        dx = dx / len;
        dy = dy / len;
        dz = dz / len;
        Hit nearest = new Hit();
        nearest.t = 100000.0;
        for (int i = 0; i < Scene.spheres.len(); i = i + 1) {
            Sphere s = Scene.spheres[i];
            // |o + t*d - c|^2 = r^2 with o = origin.
            float b = -2.0 * (dx * s.cx + dy * s.cy + dz * s.cz);
            float c = s.cx * s.cx + s.cy * s.cy + s.cz * s.cz - s.r * s.r;
            float disc = b * b - 4.0 * c;
            if (disc > 0.0) {
                float t = (-b - Math.sqrt(disc)) / 2.0;
                if (t > 0.1 && t < nearest.t) {
                    nearest.t = t;
                    nearest.sphere = s;
                }
            }
        }
        if (nearest.sphere == null) { return 0; }
        // Depth shading: nearer is brighter.
        float shade = 255.0 / (1.0 + nearest.t * 0.25);
        return nearest.sphere.color + shade.toInt();
    }
}

class Main {
    static int main(int n) {
        int check = 0;
        for (int iter = 0; iter < n; iter = iter + 1) {
            Scene.width = 48;
            Scene.height = 32;
            Scene.pixels = new int[Scene.width * Scene.height];
            Scene.spheres = new Sphere[5];
            Random.setSeed(42 + iter);
            for (int i = 0; i < 5; i = i + 1) {
                Scene.spheres[i] = new Sphere(
                    (Random.next(200) - 100) * 0.02,
                    (Random.next(200) - 100) * 0.02,
                    3.0 + Random.next(50) * 0.1,
                    0.5 + Random.next(10) * 0.05,
                    (i + 1) * 1000);
            }
            Scene.done0 = 0;
            Scene.done1 = 0;
            // Second rendering thread for the bottom half.
            Proc.thread("Tracer", "renderHalf", 1);
            Tracer.renderHalf(0);
            while (Scene.done1 == 0) { Sys.yield(); }
            int sum = 0;
            for (int i = 0; i < Scene.pixels.len(); i = i + 1) {
                sum = (sum + Scene.pixels[i] * (i % 17 + 1)) % 1000000007;
            }
            check = (check + sum) % 1000000007;
        }
        return check;
    }
}
"#;
