//! `jack` — parser generator (228_jack analogue).
//!
//! SPEC's jack is a JavaCC ancestor notorious for using exceptions as
//! control flow: "the benefits of adding faster exception handling shows up
//! strongly in jack because that benchmark raises many exceptions" (§4.1).
//! This analogue scans an item list where the end of every item is
//! signalled by a thrown `EndOfItem`, raising hundreds of exceptions per
//! iteration.

pub const SOURCE: &str = r#"
class EndOfItem extends Exception {
    int at;
    int sum;
    init(int at, int sum) { this.at = at; this.sum = sum; }
}

class Main {
    // Scans one item; throws EndOfItem at the terminating ';'.
    static int scanItem(String src, int start) {
        int i = start;
        int acc = 0;
        while (i < src.len()) {
            int c = src.charAt(i);
            if (c == 59) { throw new EndOfItem(i, acc); }
            acc = acc + c;
            i = i + 1;
        }
        return acc;
    }

    static int main(int n) {
        Random.setSeed(3);
        StringBuilder b = new StringBuilder();
        for (int i = 0; i < 200; i = i + 1) {
            b.add("item");
            b.add("" + Random.next(100));
            b.add(";");
        }
        String src = b.build();
        int check = 0;
        for (int iter = 0; iter < n; iter = iter + 1) {
            int pos = 0;
            int items = 0;
            while (pos < src.len()) {
                try {
                    int tail = Main.scanItem(src, pos);
                    check = (check + tail) % 1000000007;
                    pos = src.len();
                } catch (EndOfItem e) {
                    items = items + 1;
                    check = (check + e.sum + e.at) % 1000000007;
                    pos = e.at + 1;
                }
            }
            check = (check + items) % 1000000007;
        }
        return check;
    }
}
"#;
