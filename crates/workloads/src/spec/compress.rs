//! `compress` — integer array compression (201_compress analogue).
//!
//! Pure `int[]` crunching: run-length encodes a skewed pseudo-random
//! buffer, decodes it back, and verifies. Like SPEC's compress it executes
//! almost no write barriers (Table 1 reports 0.017M for compress vs 33M
//! for db) because it never stores references.

pub const SOURCE: &str = r#"
class Main {
    static int main(int n) {
        Random.setSeed(12345);
        int size = 4096;
        int[] data = new int[size];
        for (int i = 0; i < size; i = i + 1) {
            if (Random.next(10) < 7) { data[i] = 0; }
            else { data[i] = Random.next(256); }
        }
        int check = 0;
        for (int iter = 0; iter < n; iter = iter + 1) {
            // Run-length encode.
            int[] out = new int[size * 2];
            int o = 0;
            int i = 0;
            while (i < size) {
                int v = data[i];
                int run = 1;
                while (i + run < size && data[i + run] == v && run < 255) {
                    run = run + 1;
                }
                out[o] = v;
                out[o + 1] = run;
                o = o + 2;
                i = i + run;
            }
            // Decode and verify.
            int[] back = new int[size];
            int bi = 0;
            for (int j = 0; j < o; j = j + 2) {
                for (int r = 0; r < out[j + 1]; r = r + 1) {
                    back[bi] = out[j];
                    bi = bi + 1;
                }
            }
            int sum = 0;
            for (int j = 0; j < size; j = j + 1) {
                if (back[j] != data[j]) { return -1; }
                sum = sum + back[j];
            }
            check = (check + sum + o) % 1000000007;
        }
        return check;
    }
}
"#;
