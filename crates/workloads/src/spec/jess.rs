//! `jess` — forward-chaining rule engine (202_jess analogue).
//!
//! Facts are objects; rules scan the working memory and assert derived
//! facts until fixpoint. Object-reference heavy with a moderate barrier
//! count (the paper reports 7.9M for jess).

pub const SOURCE: &str = r#"
class Fact {
    int kind;
    int a;
    int b;
    init(int kind, int a, int b) {
        this.kind = kind;
        this.a = a;
        this.b = b;
    }
}

class Main {
    static bool exists(Vector facts, int kind, int a, int b) {
        for (int i = 0; i < facts.count(); i = i + 1) {
            Fact f = facts.get(i) as Fact;
            if (f.kind == kind && f.a == a && f.b == b) { return true; }
        }
        return false;
    }

    static int main(int n) {
        int check = 0;
        for (int iter = 0; iter < n; iter = iter + 1) {
            Random.setSeed(7 + iter);
            Vector facts = new Vector();
            for (int i = 0; i < 60; i = i + 1) {
                facts.add(new Fact(Random.next(3), Random.next(20), Random.next(20)));
            }
            // Rule 1: kind0(a,b) & kind1(b,c) => kind2(a,c)
            // Rule 2: kind2(a,a)              => kind0(a,a+1)
            bool changed = true;
            int rounds = 0;
            while (changed && rounds < 6) {
                changed = false;
                rounds = rounds + 1;
                int m = facts.count();
                for (int i = 0; i < m; i = i + 1) {
                    Fact f = facts.get(i) as Fact;
                    if (f.kind == 0) {
                        for (int j = 0; j < m; j = j + 1) {
                            Fact g = facts.get(j) as Fact;
                            if (g.kind == 1 && g.a == f.b) {
                                if (!Main.exists(facts, 2, f.a, g.b)) {
                                    facts.add(new Fact(2, f.a, g.b));
                                    changed = true;
                                }
                            }
                        }
                    }
                    if (f.kind == 2 && f.a == f.b) {
                        if (!Main.exists(facts, 0, f.a, f.a + 1)) {
                            facts.add(new Fact(0, f.a, f.a + 1));
                            changed = true;
                        }
                    }
                }
            }
            int sum = 0;
            for (int i = 0; i < facts.count(); i = i + 1) {
                Fact f = facts.get(i) as Fact;
                sum = sum + f.kind * 31 + f.a * 7 + f.b;
            }
            check = (check + sum + facts.count()) % 1000000007;
        }
        return check;
    }
}
"#;
