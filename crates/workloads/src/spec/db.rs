//! `db` — memory-resident database (209_db analogue).
//!
//! Builds a table of records, indexes them by name, insertion-sorts the
//! table by balance with reference swaps, and runs queries. The reference
//! stores into the record array and the index make this the
//! barrier-heaviest benchmark, as db is in the paper (33M barriers,
//! 2.26% of execution time at 41 cycles each — the Table 1 maximum).

pub const SOURCE: &str = r#"
class Record {
    String name;
    int balance;
    int age;
    init(String name, int balance, int age) {
        this.name = name;
        this.balance = balance;
        this.age = age;
    }
}

class Main {
    static int main(int n) {
        int check = 0;
        for (int iter = 0; iter < n; iter = iter + 1) {
            Random.setSeed(99 + iter);
            int count = 120;
            Record[] table = new Record[count];
            StringMap index = new StringMap();
            for (int i = 0; i < count; i = i + 1) {
                String name = "user" + Random.next(10000) + "_" + i;
                Record r = new Record(name, Random.next(100000), 20 + Random.next(50));
                table[i] = r;
                index.put(name, r);
            }
            // Insertion sort by balance: many reference array stores.
            for (int i = 1; i < count; i = i + 1) {
                Record key = table[i];
                int j = i - 1;
                while (j >= 0) {
                    Record t = table[j];
                    if (t.balance <= key.balance) { break; }
                    table[j + 1] = t;
                    j = j - 1;
                }
                table[j + 1] = key;
            }
            // Verify sortedness and run index lookups.
            int sum = 0;
            for (int i = 0; i < count; i = i + 1) {
                if (i > 0) {
                    Record prev = table[i - 1];
                    Record cur = table[i];
                    if (prev.balance > cur.balance) { return -1; }
                }
                Record r = index.get(table[i].name) as Record;
                if (r != table[i]) { return -2; }
                sum = sum + r.balance + i * r.age;
            }
            // Delete a third of the records from the index.
            for (int i = 0; i < count; i = i + 3) {
                index.put(table[i].name, null);
            }
            check = (check + sum + index.count()) % 1000000007;
        }
        return check;
    }
}
"#;
