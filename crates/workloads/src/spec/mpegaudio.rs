//! `mpegaudio` — float filterbank (222_mpegaudio analogue).
//!
//! A 32-subband windowed synthesis over a pseudo-random sample buffer:
//! float-multiply-accumulate loops over `float[]`, almost no allocation and
//! very few reference stores — the floating-point decoder profile.

pub const SOURCE: &str = r#"
class Main {
    static int main(int n) {
        int size = 512;
        float[] window = new float[size];
        for (int i = 0; i < size; i = i + 1) {
            float x = i * 1.0;
            window[i] = 1.0 / (1.0 + x / 100.0);
        }
        float[] samples = new float[size];
        Random.setSeed(5);
        for (int i = 0; i < size; i = i + 1) {
            samples[i] = (Random.next(2000) - 1000) * 0.001;
        }
        float acc = 0.0;
        for (int iter = 0; iter < n; iter = iter + 1) {
            for (int frame = 0; frame < 24; frame = frame + 1) {
                // Synthesis: 32 subbands, each a windowed dot product.
                for (int sb = 0; sb < 32; sb = sb + 1) {
                    float sum = 0.0;
                    int stride = sb + 1;
                    for (int i = 0; i < size; i = i + 1) {
                        sum = sum + samples[i] * window[(i * stride) % size];
                    }
                    acc = acc + sum;
                    while (acc > 1000000.0) { acc = acc - 1000000.0; }
                    while (acc < -1000000.0) { acc = acc + 1000000.0; }
                }
                // Shift the sample window.
                float carry = samples[0];
                for (int i = 0; i < size - 1; i = i + 1) {
                    samples[i] = samples[i + 1];
                }
                samples[size - 1] = carry * 0.5 + 0.1;
            }
        }
        float scaled = acc * 1000.0;
        int check = scaled.toInt();
        if (check < 0) { check = -check; }
        return check % 1000000007;
    }
}
"#;
