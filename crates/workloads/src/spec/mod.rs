//! The seven SPEC JVM98-analogue benchmarks (Figure 3 / Table 1).
//!
//! Each benchmark is a deterministic Cup program whose `Main.main(int n)`
//! runs `n` iterations and returns a checksum, so every platform
//! configuration can be verified to compute the same answer. The
//! behavioural profiles mirror the SPEC programs the paper measured:
//!
//! | ours       | SPEC analogue | profile |
//! |------------|---------------|---------|
//! | compress   | 201_compress  | integer array crunching, ~no barriers |
//! | jess       | 202_jess      | forward-chaining rule engine, object-heavy |
//! | db         | 209_db        | in-memory database, the most barriers |
//! | javac      | 213_javac     | compiler front-end (lex/parse/eval) |
//! | mpegaudio  | 222_mpegaudio | float filterbank, few allocations |
//! | mtrt       | 227_mtrt      | two-thread ray tracer |
//! | jack       | 228_jack      | parser generator, thousands of throws |

mod compress;
mod db;
mod jack;
mod javac;
mod jess;
mod mpegaudio;
mod mtrt;

/// One benchmark: name, guest source, and the default iteration count used
/// by the Figure 3 harness.
#[derive(Debug, Clone, Copy)]
pub struct SpecBenchmark {
    /// Benchmark name (the SPEC analogue's).
    pub name: &'static str,
    /// Cup source of the guest program.
    pub source: &'static str,
    /// Iterations for the figure/table harness.
    pub default_n: i64,
    /// Iterations for smoke tests.
    pub test_n: i64,
}

/// All seven, in the paper's order.
pub fn all_benchmarks() -> [SpecBenchmark; 7] {
    [
        SpecBenchmark {
            name: "compress",
            source: compress::SOURCE,
            default_n: 60,
            test_n: 1,
        },
        SpecBenchmark {
            name: "jess",
            source: jess::SOURCE,
            default_n: 40,
            test_n: 1,
        },
        SpecBenchmark {
            name: "db",
            source: db::SOURCE,
            default_n: 60,
            test_n: 1,
        },
        SpecBenchmark {
            name: "javac",
            source: javac::SOURCE,
            default_n: 40,
            test_n: 1,
        },
        SpecBenchmark {
            name: "mpegaudio",
            source: mpegaudio::SOURCE,
            default_n: 12,
            test_n: 1,
        },
        SpecBenchmark {
            name: "mtrt",
            source: mtrt::SOURCE,
            default_n: 6,
            test_n: 1,
        },
        SpecBenchmark {
            name: "jack",
            source: jack::SOURCE,
            default_n: 40,
            test_n: 1,
        },
    ]
}

/// Benchmark by name.
pub fn by_name(name: &str) -> Option<SpecBenchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}
