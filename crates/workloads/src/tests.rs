//! Workload smoke tests: every benchmark compiles, runs, and computes the
//! same checksum on every platform; the servlet experiment produces the
//! Figure 4 shape at miniature scale.

use crate::machine::MachineModel;
use crate::runner::{platforms, run_spec};
use crate::servlet::{run_servlet_experiment, Deployment, ServletParams};
use crate::spec::{all_benchmarks, by_name};

#[test]
fn every_benchmark_runs_on_the_reference_platform() {
    let reference = platforms()[5]; // KaffeOS, No Heap Pointer
    for bench in all_benchmarks() {
        let result = run_spec(&bench, &reference, bench.test_n);
        assert!(
            result.checksum > 0,
            "{} produced checksum {}",
            bench.name,
            result.checksum
        );
        assert!(result.virtual_seconds > 0.0);
    }
}

#[test]
fn checksums_agree_across_all_platforms() {
    for bench in all_benchmarks() {
        let mut checksums = Vec::new();
        for platform in platforms() {
            let result = run_spec(&bench, &platform, bench.test_n);
            checksums.push((platform.name, result.checksum));
        }
        let first = checksums[0].1;
        for (name, checksum) in &checksums {
            assert_eq!(
                *checksum, first,
                "{} differs on {name}: {checksum} vs {first}",
                bench.name
            );
        }
    }
}

#[test]
fn platform_virtual_times_are_ordered_like_the_paper() {
    // IBM < Kaffe00 < KaffeOS variants < Kaffe99... Figure 3 actually has
    // the KaffeOS variants slightly *faster* than Kaffe99 and slower than
    // Kaffe00; check those orderings per benchmark.
    let p = platforms();
    for bench in [by_name("db").unwrap(), by_name("jess").unwrap()] {
        let ibm = run_spec(&bench, &p[0], bench.test_n).virtual_seconds;
        let k00 = run_spec(&bench, &p[1], bench.test_n).virtual_seconds;
        let k99 = run_spec(&bench, &p[2], bench.test_n).virtual_seconds;
        let kos_nwb = run_spec(&bench, &p[3], bench.test_n).virtual_seconds;
        let kos_nhp = run_spec(&bench, &p[5], bench.test_n).virtual_seconds;
        assert!(ibm < k00, "{}: IBM {ibm} < Kaffe00 {k00}", bench.name);
        assert!(
            k00 < kos_nwb,
            "{}: Kaffe00 {k00} < KaffeOS {kos_nwb}",
            bench.name
        );
        assert!(
            kos_nwb < k99,
            "{}: KaffeOS-NoWB {kos_nwb} < Kaffe99 {k99} (back-ported features)",
            bench.name
        );
        assert!(
            kos_nhp > kos_nwb,
            "{}: barriers cost something ({kos_nhp} vs {kos_nwb})",
            bench.name
        );
    }
}

/// Tracing must be free when disabled and *virtually* free when enabled:
/// the event plane has no cycle model, so the Figure 3 numbers — virtual
/// seconds (bit-for-bit) and every barrier counter — are identical with
/// tracing off and on. Only the recorded event count may differ.
#[test]
fn tracing_never_perturbs_figure3_numbers() {
    use kaffeos::{ExitStatus, KaffeOs, KaffeOsConfig};

    let bench = by_name("compress").unwrap();
    let reference = platforms()[5]; // KaffeOS, No Heap Pointer
    let run = |trace: bool| {
        let mut os = KaffeOs::new(KaffeOsConfig {
            trace,
            ..reference.config()
        });
        os.register_image(bench.name, bench.source).unwrap();
        let pid = os.spawn(bench.name, "1", None).unwrap();
        let report = os.run(None);
        let checksum = match os.status(pid) {
            Some(ExitStatus::Exited(v)) => v,
            other => panic!("compress ended with {other:?}"),
        };
        (
            report.virtual_seconds.to_bits(),
            report.barrier,
            os.clock(),
            checksum,
            os.trace_events().len(),
        )
    };
    let (vs_off, barrier_off, clock_off, sum_off, events_off) = run(false);
    let (vs_on, barrier_on, clock_on, sum_on, events_on) = run(true);
    assert_eq!(events_off, 0, "disabled tracing must record zero events");
    assert!(events_on > 0, "enabled tracing must record the run");
    assert_eq!(vs_off, vs_on, "virtual seconds must be bit-identical");
    assert_eq!(clock_off, clock_on, "the virtual clock must not move");
    assert_eq!(barrier_off, barrier_on, "barrier stats must be identical");
    assert_eq!(sum_off, sum_on, "the checksum must be unaffected");
}

/// The profiler has the same contract as tracing: an Option-sink with no
/// cycle model, sampled only at virtual-time edges, so the Figure 3
/// numbers — virtual seconds (bit-for-bit), the clock, every barrier
/// counter and the checksum — are identical with profiling off and on.
/// Only the recorded profile may differ (empty off, populated on).
#[test]
fn profiler_never_perturbs_figure3_numbers() {
    use kaffeos::{ExitStatus, KaffeOs, KaffeOsConfig};

    let bench = by_name("compress").unwrap();
    let reference = platforms()[5]; // KaffeOS, No Heap Pointer
    let run = |profile: bool| {
        let mut os = KaffeOs::new(KaffeOsConfig {
            profile,
            ..reference.config()
        });
        os.register_image(bench.name, bench.source).unwrap();
        let pid = os.spawn(bench.name, "1", None).unwrap();
        let report = os.run(None);
        let checksum = match os.status(pid) {
            Some(ExitStatus::Exited(v)) => v,
            other => panic!("compress ended with {other:?}"),
        };
        (
            report.virtual_seconds.to_bits(),
            report.barrier,
            os.clock(),
            checksum,
            os.profile_folded(),
        )
    };
    let (vs_off, barrier_off, clock_off, sum_off, folded_off) = run(false);
    let (vs_on, barrier_on, clock_on, sum_on, folded_on) = run(true);
    assert!(
        folded_off.is_empty(),
        "disabled profiling must record zero samples"
    );
    assert!(
        !folded_on.is_empty(),
        "enabled profiling must sample the run"
    );
    assert_eq!(vs_off, vs_on, "virtual seconds must be bit-identical");
    assert_eq!(clock_off, clock_on, "the virtual clock must not move");
    assert_eq!(barrier_off, barrier_on, "barrier stats must be identical");
    assert_eq!(sum_off, sum_on, "the checksum must be unaffected");
}

#[test]
fn compress_executes_far_fewer_barriers_than_db() {
    let reference = platforms()[5];
    let compress = run_spec(&by_name("compress").unwrap(), &reference, 1);
    let db = run_spec(&by_name("db").unwrap(), &reference, 1);
    assert!(
        db.barriers_executed > 20 * compress.barriers_executed.max(1),
        "db {} vs compress {}",
        db.barriers_executed,
        compress.barriers_executed
    );
}

#[test]
fn jack_is_disproportionately_slow_on_kaffe99() {
    // The slow-exception-dispatch story: jack's Kaffe99/KaffeOS gap is
    // larger than compress's.
    let p = platforms();
    let jack = by_name("jack").unwrap();
    let compress = by_name("compress").unwrap();
    let jack_gap =
        run_spec(&jack, &p[2], 2).virtual_seconds / run_spec(&jack, &p[3], 2).virtual_seconds;
    let compress_gap = run_spec(&compress, &p[2], 1).virtual_seconds
        / run_spec(&compress, &p[3], 1).virtual_seconds;
    assert!(
        jack_gap > compress_gap * 1.2,
        "jack gap {jack_gap:.2} vs compress gap {compress_gap:.2}"
    );
}

mod servlet_shape {
    use super::*;
    use kaffeos::ExitCause;

    fn params(deployment: Deployment, servlets: usize, with_memhog: bool) -> ServletParams {
        ServletParams {
            deployment,
            servlets,
            with_memhog,
            // Enough service work that the hog fills the (small) shared
            // heap several times before the servlets can finish.
            total_requests: 300,
            mono_heap_bytes: 2 << 20,
            machine: MachineModel::default(),
        }
    }

    #[test]
    fn kaffeos_serves_all_requests_with_and_without_memhog() {
        let clean = run_servlet_experiment(params(Deployment::KaffeOsProcs, 3, false));
        assert_eq!(clean.requests_served, 300);
        let attacked = run_servlet_experiment(params(Deployment::KaffeOsProcs, 3, true));
        assert_eq!(attacked.requests_served, 300);
        assert!(attacked.memhog_restarts > 0, "hog was killed and restarted");
        assert_eq!(attacked.vm_restarts, 0, "no whole-VM crash under KaffeOS");
        assert_eq!(
            attacked.restart_causes.get(ExitCause::Oom),
            u64::from(attacked.memhog_restarts),
            "every hog restart is a typed OOM, not an ad-hoc string"
        );
        assert_eq!(clean.restart_causes.total(), 0);
        // Consistent performance: the attack costs something, but not an
        // order of magnitude.
        assert!(
            attacked.virtual_seconds < clean.virtual_seconds * 10.0,
            "KaffeOS stays consistent: {} vs {}",
            attacked.virtual_seconds,
            clean.virtual_seconds
        );
    }

    #[test]
    fn monolithic_crashes_under_memhog_but_finishes() {
        let attacked = run_servlet_experiment(params(Deployment::MonolithicShared, 3, true));
        assert_eq!(attacked.requests_served, 300, "requests eventually served");
        assert!(attacked.vm_restarts > 0, "whole VM crashed at least once");
        assert_eq!(
            attacked.restart_causes.get(ExitCause::Oom),
            u64::from(attacked.vm_restarts),
            "every whole-VM reboot traces to a typed OOM cause"
        );
        let clean = run_servlet_experiment(params(Deployment::MonolithicShared, 3, false));
        assert_eq!(clean.vm_restarts, 0);
        assert_eq!(clean.restart_causes.total(), 0);
        assert!(
            attacked.virtual_seconds > 2.0 * clean.virtual_seconds,
            "attack devastates the shared VM: {} vs {}",
            attacked.virtual_seconds,
            clean.virtual_seconds
        );
    }

    #[test]
    fn monolithic_is_fastest_when_everyone_behaves() {
        let mono = run_servlet_experiment(params(Deployment::MonolithicShared, 3, false));
        let kos = run_servlet_experiment(params(Deployment::KaffeOsProcs, 3, false));
        assert!(
            mono.virtual_seconds < kos.virtual_seconds,
            "IBM/n beats KaffeOS absent an attacker: {} vs {}",
            mono.virtual_seconds,
            kos.virtual_seconds
        );
    }

    #[test]
    fn vm_per_servlet_isolates_but_pays_startup() {
        let one = run_servlet_experiment(params(Deployment::VmPerServlet, 2, false));
        assert_eq!(one.requests_served, 300);
        let attacked = run_servlet_experiment(params(Deployment::VmPerServlet, 2, true));
        assert_eq!(attacked.requests_served, 300);
        assert_eq!(attacked.vm_restarts, 0, "only the hog's own JVM dies");
        assert_eq!(
            attacked.restart_causes.get(ExitCause::Oom),
            u64::from(attacked.memhog_restarts),
            "hog JVM reboots carry the typed OOM cause"
        );
    }
}

mod scenarios {
    use crate::scenario::{run_scenario, SCENARIOS};
    use kaffeos::ExitCause;

    #[test]
    fn every_scenario_is_deterministic_on_seed_one() {
        for name in SCENARIOS {
            let a = run_scenario(name, 1).expect("known scenario");
            let b = run_scenario(name, 1).expect("known scenario");
            assert_eq!(a.text, b.text, "{name} must replay byte-identically");
            assert!(
                a.tenants.iter().any(|t| t.stats.offered > 0),
                "{name} must offer load"
            );
        }
        assert!(run_scenario("no-such-scenario", 1).is_none());
    }

    #[test]
    fn noisy_neighbour_preserves_the_frontend_slo() {
        let r = run_scenario("noisy-neighbour", 1).unwrap();
        let fe = r.tenants.iter().find(|t| t.name == "frontend").unwrap();
        assert!(
            fe.goodput_permille >= 950,
            "frontend goodput {} ‰ under attack",
            fe.goodput_permille
        );
        assert!(
            fe.latency.p99() < 20_000_000,
            "frontend p99 {} cycles bounded despite the spinner",
            fe.latency.p99()
        );
        let abuser = r.tenants.iter().find(|t| t.name == "abuser").unwrap();
        assert!(
            abuser.stats.exits.get(ExitCause::CpuLimit) > 0,
            "the spinner is repeatedly stopped by its CPU limit"
        );
        assert!(abuser.stats.restarts > 0, "supervision restarts the abuser");
    }

    #[test]
    fn memhog_scenario_confines_the_hog_to_its_limit() {
        let r = run_scenario("memhog", 1).unwrap();
        let fe = r.tenants.iter().find(|t| t.name == "frontend").unwrap();
        assert!(
            fe.goodput_permille >= 950,
            "frontend goodput {} ‰ despite the hog",
            fe.goodput_permille
        );
        assert!(
            fe.latency.p99() < 40_000_000,
            "frontend p99 {} cycles bounded",
            fe.latency.p99()
        );
        assert_eq!(fe.stats.exits.get(ExitCause::Oom), 0, "hog OOM never leaks");
        let hog = r.tenants.iter().find(|t| t.name == "hog").unwrap();
        assert!(hog.stats.exits.get(ExitCause::Oom) > 0, "hog dies of OOM");
        assert!(hog.stats.restarts > 0, "supervision keeps restarting it");
    }

    #[test]
    fn exception_storm_trips_the_breaker_but_spares_the_neighbour() {
        let r = run_scenario("exception-storm", 1).unwrap();
        let flaky = r.tenants.iter().find(|t| t.name == "flaky").unwrap();
        assert!(flaky.stats.breaker_opens > 0, "storm opens the breaker");
        assert!(
            flaky.stats.rejected_breaker > 0,
            "open breaker sheds arrivals"
        );
        assert!(
            flaky.stats.exits.get(ExitCause::Exception) > 0,
            "the storm is made of typed exception exits"
        );
        let fe = r.tenants.iter().find(|t| t.name == "frontend").unwrap();
        assert!(
            fe.goodput_permille >= 990,
            "frontend goodput {} ‰ untouched by the storm",
            fe.goodput_permille
        );
    }

    #[test]
    fn shm_fanout_beats_private_copies_on_latency() {
        let r = run_scenario("shm-fanout", 1).unwrap();
        let fan = r.tenants.iter().find(|t| t.name == "fanout").unwrap();
        let copy = r.tenants.iter().find(|t| t.name == "copier").unwrap();
        assert!(fan.goodput_permille >= 990, "fan-out serves its load");
        assert!(copy.goodput_permille >= 990, "copier serves its load");
        assert!(
            fan.latency.p50() < copy.latency.p50(),
            "reading the shared table (p50 {}) beats rebuilding it (p50 {})",
            fan.latency.p50(),
            copy.latency.p50()
        );
    }

    #[test]
    fn kill_storm_restart_work_is_bounded_across_seeds() {
        for seed in [1u64, 2, 3, 5] {
            let r = run_scenario("kill-storm", seed).unwrap();
            let v = r.tenants.iter().find(|t| t.name == "victims").unwrap();
            // The spinners never exit cleanly, so the consecutive-failure
            // ladder is never reset: supervision performs at most
            // max_restarts (8) respawns no matter how hard the sweep kills.
            assert!(
                v.stats.restarts <= 8,
                "seed {seed}: {} restarts exceed the backoff budget",
                v.stats.restarts
            );
            assert!(
                v.stats.restarts_abandoned > 0 || v.stats.breaker_opens > 0,
                "seed {seed}: the storm must hit a policy bound"
            );
            assert!(
                v.stats.exits.get(ExitCause::Killed) > 0,
                "seed {seed}: the sweep kills victims"
            );
        }
    }

    #[test]
    fn admission_overload_rejects_the_flood_not_the_steady_tenant() {
        let r = run_scenario("admission-overload", 1).unwrap();
        let flood = r.tenants.iter().find(|t| t.name == "flood").unwrap();
        assert!(
            flood.stats.rejected_cap > 0,
            "the DoS ramp is clipped at the admission cap"
        );
        assert!(
            flood.goodput_permille < 800,
            "the flood cannot buy goodput past its cap"
        );
        let steady = r.tenants.iter().find(|t| t.name == "steady").unwrap();
        assert!(
            steady.goodput_permille >= 990,
            "steady tenant goodput {} ‰ unharmed by the flood",
            steady.goodput_permille
        );
        assert_eq!(steady.stats.rejected_cap, 0);
    }
}
