//! Differential tier oracle: the template JIT must be invisible in every
//! virtual number.
//!
//! Runs every BENCH_interp benchmark and all six tenant scenarios twice —
//! interpreter-only and JIT-enabled — and compares the virtual outputs
//! byte-for-byte: modelled seconds, barrier and GC cycle counts, checksums
//! (the Figure 3/4 inputs), the scenarios' golden report text (latency
//! histograms included), and the trace/profile planes.
//!
//! `run_spec`/`run_scenario` build their kernels from the `KAFFEOS_JIT`
//! environment toggle, which is process-global — so the whole oracle is
//! ONE test function, and the only one in this binary, to keep the toggle
//! free of races. The trace/profile comparison pins the tier through
//! explicit configs instead and does not depend on the environment.

use kaffeos::{KaffeOs, KaffeOsConfig};
use kaffeos_vm::JitConfig;
use kaffeos_workloads::runner::{platforms, run_spec, Platform, PlatformKind};
use kaffeos_workloads::scenario::{run_scenario, SCENARIOS};
use kaffeos_workloads::spec::all_benchmarks;

fn kaffeos_platform() -> Platform {
    platforms()
        .into_iter()
        .find(|p| matches!(p.kind, PlatformKind::KaffeOs(kaffeos::BarrierKind::HeapPointer)))
        .expect("heap-pointer platform exists")
}

/// Points at the first diverging line so a mismatch is debuggable without
/// dumping two full reports.
fn assert_same_text(off: &str, on: &str, label: &str) {
    if off == on {
        return;
    }
    for (i, (a, b)) in off.lines().zip(on.lines()).enumerate() {
        assert_eq!(a, b, "{label}: first divergence at line {}", i + 1);
    }
    panic!(
        "{label}: line counts differ ({} interpreter vs {} jit)",
        off.lines().count(),
        on.lines().count()
    );
}

/// Virtual fingerprint of one spec run; everything here must be identical
/// across tiers.
fn spec_fingerprints() -> Vec<(String, f64, u64, u64, u64, i64)> {
    let platform = kaffeos_platform();
    all_benchmarks()
        .into_iter()
        .map(|bench| {
            let r = run_spec(&bench, &platform, bench.test_n);
            (
                bench.name.to_string(),
                r.virtual_seconds,
                r.barriers_executed,
                r.barrier_cycles,
                r.gc_cycles,
                r.checksum,
            )
        })
        .collect()
}

fn scenario_texts(seed: u64) -> Vec<(&'static str, String)> {
    SCENARIOS
        .iter()
        .map(|&name| {
            let report = run_scenario(name, seed).expect("known scenario");
            (report.name, report.text)
        })
        .collect()
}

/// Trace + profile planes under an explicitly pinned tier (no env).
fn observability_planes(jit: bool) -> (String, String) {
    let mut os = KaffeOs::new(KaffeOsConfig {
        trace: true,
        profile: true,
        jit: JitConfig {
            enabled: jit,
            ..JitConfig::default()
        },
        ..KaffeOsConfig::default()
    });
    os.register_image(
        "churn",
        r#"
        class Main {
            static int work(int i) { return i * 3 + 1; }
            static int main(int n) {
                int acc = 0;
                for (int i = 0; i < 30000; i = i + 1) { acc = acc + work(i); }
                int[] a = new int[64 + n];
                for (int i = 0; i < a.len(); i = i + 1) { a[i] = acc + i; }
                Sys.gc();
                return acc + a[63];
            }
        }
        "#,
    )
    .unwrap();
    os.spawn("churn", "2", Some(1 << 20)).unwrap();
    os.run(Some(60_000_000));
    os.kernel_gc();
    (os.trace_jsonl(), os.profile_folded())
}

/// The one oracle: interpreter-only vs JIT-enabled, everything virtual
/// byte-compared.
#[test]
fn jit_tier_is_virtually_invisible() {
    let saved = std::env::var("KAFFEOS_JIT").ok();

    std::env::set_var("KAFFEOS_JIT", "off");
    let spec_off = spec_fingerprints();
    let scen_off = scenario_texts(1);

    std::env::set_var("KAFFEOS_JIT", "on");
    let spec_on = spec_fingerprints();
    let scen_on = scenario_texts(1);

    match saved {
        Some(v) => std::env::set_var("KAFFEOS_JIT", v),
        None => std::env::remove_var("KAFFEOS_JIT"),
    }

    for (off, on) in spec_off.iter().zip(spec_on.iter()) {
        assert_eq!(off, on, "spec benchmark {} diverged across tiers", off.0);
    }
    for ((name, off), (_, on)) in scen_off.iter().zip(scen_on.iter()) {
        assert_same_text(off, on, &format!("scenario {name}"));
    }

    let (trace_off, profile_off) = observability_planes(false);
    let (trace_on, profile_on) = observability_planes(true);
    assert!(
        trace_off.contains("\n"),
        "trace plane must have produced events"
    );
    assert_same_text(&trace_off, &trace_on, "trace plane");
    assert_same_text(&profile_off, &profile_on, "profile plane");
}
