//! Hierarchical memory limits for KaffeOS.
//!
//! Every heap in KaffeOS is associated with a *memlimit*: a node in a tree
//! that carries an upper `limit` and a `current` use. All memory allocated to
//! the heap is debited from its memlimit and memory collected from the heap
//! is credited back; the credit/debit is applied recursively to the node's
//! ancestors (§2, "Hierarchical memory management").
//!
//! A memlimit is **hard** or **soft**:
//!
//! * A *hard* memlimit's maximum is debited from its parent when the node is
//!   created — memory is set aside as a reservation. Credits and debits of
//!   its descendants are therefore **not** propagated past a hard limit.
//! * A *soft* memlimit is just a cap: its debits and credits are reflected in
//!   the parent, so a summary limit can govern several activities without
//!   reserving memory for each.
//!
//! The tree is a flat arena ([`MemLimitTree`]) indexed by [`MemLimitId`];
//! KaffeOS owns one tree whose root models the machine's physical memory.

mod error;
mod tree;

pub use error::{LimitError, LimitExceeded};
pub use tree::{Kind, LimitAuditError, MemLimitId, MemLimitSnapshot, MemLimitTree};

#[cfg(test)]
mod tests;
