use crate::{Kind, LimitError, MemLimitTree};

fn tree() -> (MemLimitTree, crate::MemLimitId) {
    let mut t = MemLimitTree::new();
    let root = t.create_root(1000, "root");
    (t, root)
}

#[test]
fn root_debit_and_credit() {
    let (mut t, root) = tree();
    t.debit(root, 400).unwrap();
    assert_eq!(t.current(root), 400);
    t.credit(root, 150).unwrap();
    assert_eq!(t.current(root), 250);
    assert_eq!(t.headroom(root), 750);
}

#[test]
fn root_limit_enforced() {
    let (mut t, root) = tree();
    t.debit(root, 1000).unwrap();
    let err = t.debit(root, 1).unwrap_err();
    assert_eq!(err.node, root);
    assert_eq!(err.requested, 1);
    assert_eq!(err.available, 0);
    // Failed debit must not change state.
    assert_eq!(t.current(root), 1000);
}

#[test]
fn soft_child_percolates_to_parent() {
    let (mut t, root) = tree();
    let child = t.create_child(root, Kind::Soft, 300, "soft").unwrap();
    t.debit(child, 200).unwrap();
    assert_eq!(t.current(child), 200);
    assert_eq!(t.current(root), 200, "soft debits reflect in parent");
    t.credit(child, 50).unwrap();
    assert_eq!(t.current(child), 150);
    assert_eq!(t.current(root), 150, "soft credits reflect in parent");
}

#[test]
fn soft_child_capped_by_own_limit() {
    let (mut t, root) = tree();
    let child = t.create_child(root, Kind::Soft, 300, "soft").unwrap();
    let err = t.debit(child, 301).unwrap_err();
    assert_eq!(err.node, child);
    assert_eq!(t.current(root), 0);
}

#[test]
fn soft_child_capped_by_parent() {
    let (mut t, root) = tree();
    // Child's own limit is generous, but the parent cannot cover it.
    let child = t.create_child(root, Kind::Soft, 5000, "soft").unwrap();
    t.debit(root, 900).unwrap();
    let err = t.debit(child, 200).unwrap_err();
    assert_eq!(err.node, root);
    assert_eq!(err.available, 100);
    // Rollback: the child's partial debit was undone.
    assert_eq!(t.current(child), 0);
    assert_eq!(t.current(root), 900);
}

#[test]
fn hard_child_reserves_at_creation() {
    let (mut t, root) = tree();
    let child = t.create_child(root, Kind::Hard, 400, "hard").unwrap();
    assert_eq!(t.current(root), 400, "reservation debited up front");
    // Debits inside the hard child do not move the parent.
    t.debit(child, 100).unwrap();
    assert_eq!(t.current(root), 400);
    assert_eq!(t.current(child), 100);
}

#[test]
fn hard_child_reservation_failure_is_clean() {
    let (mut t, root) = tree();
    t.debit(root, 800).unwrap();
    let err = t.create_child(root, Kind::Hard, 400, "hard").unwrap_err();
    assert!(matches!(err, LimitError::ReservationFailed(_)));
    assert_eq!(t.current(root), 800);
    assert_eq!(t.len(), 1, "failed child must not exist");
}

#[test]
fn hard_child_enforces_own_limit() {
    let (mut t, root) = tree();
    let child = t.create_child(root, Kind::Hard, 400, "hard").unwrap();
    let err = t.debit(child, 401).unwrap_err();
    assert_eq!(err.node, child);
    assert_eq!(t.current(child), 0);
}

#[test]
fn hard_removal_returns_reservation() {
    let (mut t, root) = tree();
    let child = t.create_child(root, Kind::Hard, 400, "hard").unwrap();
    t.debit(child, 100).unwrap();
    t.credit(child, 100).unwrap();
    t.remove(child).unwrap();
    assert_eq!(t.current(root), 0, "reservation credited back");
    assert!(!t.is_alive(child));
}

#[test]
fn soft_stack_percolates_through_chain() {
    let (mut t, root) = tree();
    let a = t.create_child(root, Kind::Soft, 800, "a").unwrap();
    let b = t.create_child(a, Kind::Soft, 600, "b").unwrap();
    let c = t.create_child(b, Kind::Soft, 400, "c").unwrap();
    t.debit(c, 300).unwrap();
    assert_eq!(t.current(c), 300);
    assert_eq!(t.current(b), 300);
    assert_eq!(t.current(a), 300);
    assert_eq!(t.current(root), 300);
}

#[test]
fn hard_node_stops_percolation_mid_chain() {
    let (mut t, root) = tree();
    let hard = t.create_child(root, Kind::Hard, 500, "hard").unwrap();
    let soft = t.create_child(hard, Kind::Soft, 400, "soft").unwrap();
    t.debit(soft, 200).unwrap();
    assert_eq!(t.current(soft), 200);
    assert_eq!(t.current(hard), 200, "debit reaches the hard node itself");
    assert_eq!(
        t.current(root),
        500,
        "but not past it (only the reservation)"
    );
}

#[test]
fn siblings_share_soft_parent_budget() {
    let (mut t, root) = tree();
    let parent = t.create_child(root, Kind::Soft, 500, "p").unwrap();
    let s1 = t.create_child(parent, Kind::Soft, 500, "s1").unwrap();
    let s2 = t.create_child(parent, Kind::Soft, 500, "s2").unwrap();
    t.debit(s1, 300).unwrap();
    // s2's own cap would allow 300, but the shared parent only has 200 left.
    let err = t.debit(s2, 300).unwrap_err();
    assert_eq!(err.node, parent);
    t.debit(s2, 200).unwrap();
    assert_eq!(t.current(parent), 500);
}

#[test]
fn remove_rejects_children_and_use() {
    let (mut t, root) = tree();
    let a = t.create_child(root, Kind::Soft, 800, "a").unwrap();
    let b = t.create_child(a, Kind::Soft, 600, "b").unwrap();
    assert!(matches!(t.remove(a), Err(LimitError::HasChildren(_))));
    t.debit(b, 10).unwrap();
    assert!(matches!(t.remove(b), Err(LimitError::InUse(_, 10))));
    t.credit(b, 10).unwrap();
    t.remove(b).unwrap();
    t.remove(a).unwrap();
    assert_eq!(t.len(), 1);
}

#[test]
fn drain_and_remove_credits_ancestors() {
    let (mut t, root) = tree();
    let a = t.create_child(root, Kind::Soft, 800, "a").unwrap();
    t.debit(a, 123).unwrap();
    let drained = t.drain_and_remove(a).unwrap();
    assert_eq!(drained, 123);
    assert_eq!(t.current(root), 0);
}

#[test]
fn credit_underflow_detected() {
    let (mut t, root) = tree();
    t.debit(root, 5).unwrap();
    assert!(matches!(
        t.credit(root, 6),
        Err(LimitError::CreditUnderflow(_))
    ));
    assert_eq!(t.current(root), 5, "failed credit must not change state");
}

#[test]
fn credit_underflow_on_ancestor_is_atomic() {
    let (mut t, root) = tree();
    let a = t.create_child(root, Kind::Soft, 800, "a").unwrap();
    t.debit(a, 100).unwrap();
    // Manufacture an inconsistency the validator must catch: credit the root
    // directly so the ancestor has less than the child.
    t.credit(root, 60).unwrap();
    let err = t.credit(a, 100).unwrap_err();
    assert!(matches!(err, LimitError::CreditUnderflow(_)));
    assert_eq!(t.current(a), 100, "child untouched on ancestor underflow");
}

#[test]
fn stale_ids_are_rejected() {
    let (mut t, root) = tree();
    let a = t.create_child(root, Kind::Soft, 100, "a").unwrap();
    t.remove(a).unwrap();
    assert!(!t.is_alive(a));
    assert!(matches!(t.credit(a, 1), Err(LimitError::Dead(_))));
    // Reuse the slot; the old id must still be dead.
    let b = t.create_child(root, Kind::Soft, 100, "b").unwrap();
    assert_eq!(a.index(), b.index(), "slot reused");
    assert!(!t.is_alive(a));
    assert!(t.is_alive(b));
}

#[test]
fn available_is_min_along_path() {
    let (mut t, root) = tree();
    let a = t.create_child(root, Kind::Soft, 700, "a").unwrap();
    let b = t.create_child(a, Kind::Soft, 900, "b").unwrap();
    t.debit(root, 500).unwrap(); // root has 500 left
    assert_eq!(t.available(b), 500);
    t.debit(b, 400).unwrap();
    assert_eq!(t.available(b), 100, "root now binds at 100");
    assert_eq!(t.headroom(b), 500);
}

#[test]
fn available_stops_at_hard() {
    let (mut t, root) = tree();
    let h = t.create_child(root, Kind::Hard, 300, "h").unwrap();
    t.debit(root, 700).unwrap(); // root fully consumed
    assert_eq!(t.available(h), 300, "hard child lives off its reservation");
}

#[test]
fn set_limit_soft_only() {
    let (mut t, root) = tree();
    let s = t.create_child(root, Kind::Soft, 100, "s").unwrap();
    let h = t.create_child(root, Kind::Hard, 100, "h").unwrap();
    t.set_limit(s, 200).unwrap();
    assert_eq!(t.limit(s), 200);
    assert!(t.set_limit(h, 200).is_err());
    // Lowering below current use is allowed; further debits blocked.
    t.debit(s, 150).unwrap();
    t.set_limit(s, 100).unwrap();
    assert!(t.debit(s, 1).is_err());
    t.credit(s, 60).unwrap();
    t.debit(s, 1).unwrap();
}

#[test]
fn snapshot_reports_state() {
    let (mut t, root) = tree();
    let a = t.create_child(root, Kind::Hard, 250, "proc-a").unwrap();
    t.debit(a, 25).unwrap();
    let snap = t.snapshot(a);
    assert_eq!(snap.limit, 250);
    assert_eq!(snap.current, 25);
    assert_eq!(snap.kind, Kind::Hard);
    assert_eq!(snap.parent, Some(root));
    assert_eq!(snap.label, "proc-a");
    assert_eq!(t.snapshot_all().len(), 2);
}

#[test]
fn shared_heap_charging_pattern() {
    // The kernel charges every sharer the full size of a shared heap while
    // it holds a reference (§2, "Direct sharing"): model two sharers.
    let (mut t, root) = tree();
    let p1 = t.create_child(root, Kind::Soft, 400, "p1").unwrap();
    let p2 = t.create_child(root, Kind::Soft, 400, "p2").unwrap();
    let shared_size = 100;
    // Creator charged while populating (soft child of p1's memlimit).
    let shm = t.create_child(p1, Kind::Soft, shared_size, "shm").unwrap();
    t.debit(shm, shared_size).unwrap();
    assert_eq!(t.current(p1), 100);
    // Second sharer looks it up: charged the full amount.
    t.debit(p2, shared_size).unwrap();
    assert_eq!(t.current(p2), 100);
    // p1 exits: its charge is credited; p2 still pays in full, so no
    // asynchronous recharging is ever needed.
    t.credit(shm, shared_size).unwrap();
    assert_eq!(t.current(p1), 0);
    assert_eq!(t.current(p2), 100);
}
