use core::fmt;

use crate::tree::MemLimitId;

/// A debit that would push a memlimit past its maximum.
///
/// Carries enough context for the kernel to turn it into an out-of-memory
/// condition attributed to the right process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LimitExceeded {
    /// The node whose limit would be violated (may be an ancestor of the
    /// node that was debited).
    pub node: MemLimitId,
    /// Bytes the caller asked for.
    pub requested: u64,
    /// Bytes still available at `node` before the request.
    pub available: u64,
}

impl fmt::Display for LimitExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memlimit {:?} exceeded: requested {} bytes, {} available",
            self.node, self.requested, self.available
        )
    }
}

impl std::error::Error for LimitExceeded {}

/// Errors from structural operations on the memlimit tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitError {
    /// The id does not name a live node.
    Dead(MemLimitId),
    /// A hard child's reservation could not be satisfied by the parent.
    ReservationFailed(LimitExceeded),
    /// Node still has live children and cannot be removed.
    HasChildren(MemLimitId),
    /// Node still has a non-zero current use and cannot be removed.
    InUse(MemLimitId, u64),
    /// Attempted to credit more than the node's current use.
    CreditUnderflow(MemLimitId),
}

impl fmt::Display for LimitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LimitError::Dead(id) => write!(f, "memlimit {id:?} is not alive"),
            LimitError::ReservationFailed(e) => write!(f, "hard reservation failed: {e}"),
            LimitError::HasChildren(id) => write!(f, "memlimit {id:?} still has children"),
            LimitError::InUse(id, n) => write!(f, "memlimit {id:?} still holds {n} bytes"),
            LimitError::CreditUnderflow(id) => {
                write!(f, "credit underflow on memlimit {id:?}")
            }
        }
    }
}

impl std::error::Error for LimitError {}
