use crate::error::{LimitError, LimitExceeded};

/// A conservation violation found by [`MemLimitTree::audit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LimitAuditError {
    /// The node at which the violation was detected.
    pub node: MemLimitId,
    /// Human-readable description of the inconsistency.
    pub detail: String,
}

impl std::fmt::Display for LimitAuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "memlimit {:?}: {}", self.node, self.detail)
    }
}

impl std::error::Error for LimitAuditError {}

/// Whether a memlimit reserves its maximum from its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Reservation: the node's full `limit` is debited from the parent at
    /// creation and credited back at removal. Debits and credits inside the
    /// node never percolate past it.
    Hard,
    /// Pass-through cap: the node's debits and credits are reflected in the
    /// parent (and recursively above), so the parent limit bounds the sum of
    /// its soft children.
    Soft,
}

/// Handle to a node in a [`MemLimitTree`].
///
/// Ids are generational: removing a node and reusing its slot yields a new
/// id, so stale handles are detected rather than silently aliased.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemLimitId {
    index: u32,
    generation: u32,
}

impl MemLimitId {
    /// Slot index; stable for the node's lifetime. Useful as a map key when
    /// the caller knows the node is alive.
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// Generation of the slot; together with [`index`](MemLimitId::index)
    /// this uniquely names a node across slot reuse (trace events key on
    /// the pair).
    pub fn generation(self) -> u32 {
        self.generation
    }
}

#[derive(Debug)]
struct Node {
    generation: u32,
    alive: bool,
    parent: Option<MemLimitId>,
    kind: Kind,
    limit: u64,
    current: u64,
    children: u32,
    label: String,
}

/// Read-only view of one memlimit, for diagnostics and the `ps`-style
/// reporting the kernel exposes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemLimitSnapshot {
    /// The node.
    pub id: MemLimitId,
    /// Parent node, if any.
    pub parent: Option<MemLimitId>,
    /// Hard or soft.
    pub kind: Kind,
    /// Maximum bytes.
    pub limit: u64,
    /// Bytes currently debited.
    pub current: u64,
    /// Diagnostic label.
    pub label: String,
}

/// Arena of memlimit nodes forming one hierarchy.
#[derive(Debug, Default)]
pub struct MemLimitTree {
    nodes: Vec<Node>,
    free: Vec<u32>,
    sink: kaffeos_trace::TraceSink,
}

impl MemLimitTree {
    /// Creates an empty tree. Use [`MemLimitTree::create_root`] to plant the
    /// root (typically sized to the machine's physical memory).
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the trace sink that [`debit`] and [`credit`] report to.
    /// The default sink is disabled and records nothing.
    ///
    /// [`debit`]: MemLimitTree::debit
    /// [`credit`]: MemLimitTree::credit
    pub fn set_trace_sink(&mut self, sink: kaffeos_trace::TraceSink) {
        self.sink = sink;
    }

    /// Creates a root memlimit with the given maximum. Multiple roots are
    /// permitted (e.g. one per simulated machine) but KaffeOS uses one.
    pub fn create_root(&mut self, limit: u64, label: impl Into<String>) -> MemLimitId {
        self.insert(Node {
            generation: 0,
            alive: true,
            parent: None,
            kind: Kind::Hard,
            limit,
            current: 0,
            children: 0,
            label: label.into(),
        })
    }

    /// Creates a child memlimit under `parent`.
    ///
    /// A [`Kind::Hard`] child immediately debits its full `limit` from the
    /// parent chain (the reservation); if the chain cannot cover it the child
    /// is not created and [`LimitError::ReservationFailed`] is returned.
    pub fn create_child(
        &mut self,
        parent: MemLimitId,
        kind: Kind,
        limit: u64,
        label: impl Into<String>,
    ) -> Result<MemLimitId, LimitError> {
        self.check_alive(parent)?;
        if kind == Kind::Hard {
            // Reserve the child's full maximum from the parent before the
            // child exists; on failure nothing changes.
            self.debit(parent, limit)
                .map_err(LimitError::ReservationFailed)?;
        }
        let id = self.insert(Node {
            generation: 0,
            alive: true,
            parent: Some(parent),
            kind,
            limit,
            current: 0,
            children: 0,
            label: label.into(),
        });
        self.node_mut(parent).children += 1;
        Ok(id)
    }

    /// Debits `bytes` from `id`, percolating up through soft ancestors.
    ///
    /// The debit is all-or-nothing: if any node on the percolation path would
    /// exceed its limit, every node already debited is rolled back and the
    /// offending node is reported.
    pub fn debit(&mut self, id: MemLimitId, bytes: u64) -> Result<(), LimitExceeded> {
        debug_assert!(self.is_alive(id), "debit on dead memlimit {id:?}");
        let mut done: Vec<MemLimitId> = Vec::new();
        let mut cursor = Some(id);
        while let Some(cur) = cursor {
            let node = self.node_mut(cur);
            let available = node.limit.saturating_sub(node.current);
            if bytes > available {
                for undo in done {
                    self.node_mut(undo).current -= bytes;
                }
                return Err(LimitExceeded {
                    node: cur,
                    requested: bytes,
                    available,
                });
            }
            node.current += bytes;
            done.push(cur);
            // A hard node absorbs the debit: its own reservation was taken
            // from the parent at creation time.
            cursor = if node.kind == Kind::Hard {
                None
            } else {
                node.parent
            };
        }
        // One event at the node the caller named, not per percolation step:
        // soft-ancestor updates are derivable from the tree shape, and a
        // single event keeps the node's net trace equal to its direct use.
        self.sink.emit_with(|| kaffeos_trace::Payload::Charge {
            node: id.index,
            node_gen: id.generation,
            bytes,
        });
        Ok(())
    }

    /// Credits `bytes` back to `id`, percolating exactly as [`debit`] does.
    ///
    /// Crediting more than a node's current use is a kernel bug and reported
    /// as [`LimitError::CreditUnderflow`] without modifying the tree.
    ///
    /// [`debit`]: MemLimitTree::debit
    pub fn credit(&mut self, id: MemLimitId, bytes: u64) -> Result<(), LimitError> {
        self.check_alive(id)?;
        // Validate the whole path first so the operation is atomic.
        let mut cursor = Some(id);
        while let Some(cur) = cursor {
            let node = self.node(cur);
            if node.current < bytes {
                return Err(LimitError::CreditUnderflow(cur));
            }
            cursor = if node.kind == Kind::Hard {
                None
            } else {
                node.parent
            };
        }
        let mut cursor = Some(id);
        while let Some(cur) = cursor {
            let node = self.node_mut(cur);
            node.current -= bytes;
            cursor = if node.kind == Kind::Hard {
                None
            } else {
                node.parent
            };
        }
        self.sink.emit_with(|| kaffeos_trace::Payload::Credit {
            node: id.index,
            node_gen: id.generation,
            bytes,
        });
        Ok(())
    }

    /// Removes a leaf node with no remaining use.
    ///
    /// A hard node's reservation is credited back to its parent chain. The
    /// caller must first credit the node down to zero (KaffeOS does this when
    /// a process heap is merged into the kernel heap).
    pub fn remove(&mut self, id: MemLimitId) -> Result<(), LimitError> {
        self.check_alive(id)?;
        let node = self.node(id);
        if node.children != 0 {
            return Err(LimitError::HasChildren(id));
        }
        if node.current != 0 {
            return Err(LimitError::InUse(id, node.current));
        }
        let parent = node.parent;
        let kind = node.kind;
        let limit = node.limit;
        if let Some(p) = parent {
            if kind == Kind::Hard {
                // Return the reservation.
                self.credit(p, limit)?;
            }
            self.node_mut(p).children -= 1;
        }
        let n = self.node_mut(id);
        n.alive = false;
        n.generation = n.generation.wrapping_add(1);
        self.free.push(id.index);
        Ok(())
    }

    /// Force-credits the node's entire current use (used when tearing down a
    /// terminated process whose exact outstanding byte count the kernel wants
    /// to discard wholesale), then removes it.
    pub fn drain_and_remove(&mut self, id: MemLimitId) -> Result<u64, LimitError> {
        self.check_alive(id)?;
        let current = self.node(id).current;
        if current > 0 {
            self.credit(id, current)?;
        }
        self.remove(id)?;
        Ok(current)
    }

    /// Raises or lowers a node's maximum. Lowering below `current` is
    /// allowed: the node simply cannot debit until it drops below the new
    /// cap (mirrors `setrlimit` semantics). Hard nodes cannot be resized
    /// because their reservation is already committed.
    pub fn set_limit(&mut self, id: MemLimitId, limit: u64) -> Result<(), LimitError> {
        self.check_alive(id)?;
        let node = self.node_mut(id);
        if node.kind == Kind::Hard && node.parent.is_some() {
            return Err(LimitError::ReservationFailed(LimitExceeded {
                node: id,
                requested: limit,
                available: node.limit,
            }));
        }
        node.limit = limit;
        Ok(())
    }

    /// Current use in bytes.
    pub fn current(&self, id: MemLimitId) -> u64 {
        self.node(id).current
    }

    /// Maximum in bytes.
    pub fn limit(&self, id: MemLimitId) -> u64 {
        self.node(id).limit
    }

    /// Bytes the node itself could still debit (ignoring ancestors).
    pub fn headroom(&self, id: MemLimitId) -> u64 {
        let node = self.node(id);
        node.limit.saturating_sub(node.current)
    }

    /// Bytes a debit at this node could actually obtain, i.e. the minimum
    /// headroom along the percolation path.
    pub fn available(&self, id: MemLimitId) -> u64 {
        let mut avail = u64::MAX;
        let mut cursor = Some(id);
        while let Some(cur) = cursor {
            let node = self.node(cur);
            avail = avail.min(node.limit.saturating_sub(node.current));
            cursor = if node.kind == Kind::Hard {
                None
            } else {
                node.parent
            };
        }
        avail
    }

    /// Parent handle, if any.
    pub fn parent(&self, id: MemLimitId) -> Option<MemLimitId> {
        self.node(id).parent
    }

    /// Hard or soft.
    pub fn kind(&self, id: MemLimitId) -> Kind {
        self.node(id).kind
    }

    /// True if `id` names a live node.
    pub fn is_alive(&self, id: MemLimitId) -> bool {
        self.nodes
            .get(id.index as usize)
            .map(|n| n.alive && n.generation == id.generation)
            .unwrap_or(false)
    }

    /// Snapshot of one node for reporting.
    pub fn snapshot(&self, id: MemLimitId) -> MemLimitSnapshot {
        let node = self.node(id);
        MemLimitSnapshot {
            id,
            parent: node.parent,
            kind: node.kind,
            limit: node.limit,
            current: node.current,
            label: node.label.clone(),
        }
    }

    /// Snapshots of every live node, in slot order.
    pub fn snapshot_all(&self) -> Vec<MemLimitSnapshot> {
        (0..self.nodes.len())
            .filter_map(|i| {
                let n = &self.nodes[i];
                n.alive.then(|| {
                    self.snapshot(MemLimitId {
                        index: i as u32,
                        generation: n.generation,
                    })
                })
            })
            .collect()
    }

    /// Renders the subtree under `root` as an indented procfs-style text
    /// table, one node per line:
    ///
    /// ```text
    /// machine                hard      0/16777216 (0%)
    ///   proc1:compress       hard 524288/8388608 (6%)
    /// ```
    ///
    /// Children print in slot order (creation order for never-reused
    /// slots), so equal trees render byte-identically — the text is served
    /// verbatim through the kernel's `proc.meminfo` syscall.
    pub fn render_tree(&self, root: MemLimitId) -> String {
        let mut out = String::new();
        self.render_node(&mut out, root, 0);
        out
    }

    fn render_node(&self, out: &mut String, id: MemLimitId, depth: usize) {
        use std::fmt::Write as _;
        let node = self.node(id);
        let pct = node
            .current
            .saturating_mul(100)
            .checked_div(node.limit)
            .unwrap_or(0);
        let name = format!("{}{}", "  ".repeat(depth), node.label);
        let _ = writeln!(
            out,
            "{name:<28} {:<4} {}/{} ({pct}%)",
            match node.kind {
                Kind::Hard => "hard",
                Kind::Soft => "soft",
            },
            node.current,
            node.limit
        );
        for (i, n) in self.nodes.iter().enumerate() {
            if n.alive && n.parent == Some(id) {
                self.render_node(
                    out,
                    MemLimitId {
                        index: i as u32,
                        generation: n.generation,
                    },
                    depth + 1,
                );
            }
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// True if the tree has no live nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks structural conservation over the whole tree:
    ///
    /// * every live node's parent is alive and its `children` count matches
    ///   the number of live children pointing at it;
    /// * for every node, the sum of its children's contributions (a soft
    ///   child's `current`, a hard child's full `limit` — the reservation)
    ///   does not exceed the node's own `current`. The remainder is the
    ///   node's direct debits, which cannot be negative.
    ///
    /// Used by the kernel's fault auditor after injected faults; a violation
    /// means a debit/credit pair was lost or double-applied somewhere.
    pub fn audit(&self) -> Result<(), LimitAuditError> {
        let live: Vec<MemLimitId> = (0..self.nodes.len())
            .filter_map(|i| {
                let n = &self.nodes[i];
                n.alive.then_some(MemLimitId {
                    index: i as u32,
                    generation: n.generation,
                })
            })
            .collect();
        for &id in &live {
            let node = self.node(id);
            if let Some(p) = node.parent {
                if !self.is_alive(p) {
                    return Err(LimitAuditError {
                        node: id,
                        detail: format!("parent {p:?} is dead"),
                    });
                }
            }
        }
        for &id in &live {
            let node = self.node(id);
            let mut child_count = 0u32;
            let mut contributed = 0u64;
            for &c in &live {
                let child = self.node(c);
                if child.parent != Some(id) {
                    continue;
                }
                child_count += 1;
                contributed = contributed.saturating_add(match child.kind {
                    Kind::Hard => child.limit,
                    Kind::Soft => child.current,
                });
            }
            if child_count != node.children {
                return Err(LimitAuditError {
                    node: id,
                    detail: format!(
                        "children count {} but {} live children found",
                        node.children, child_count
                    ),
                });
            }
            if contributed > node.current {
                return Err(LimitAuditError {
                    node: id,
                    detail: format!(
                        "children contribute {} bytes but node's current is only {}",
                        contributed, node.current
                    ),
                });
            }
        }
        Ok(())
    }

    fn insert(&mut self, mut node: Node) -> MemLimitId {
        if let Some(index) = self.free.pop() {
            node.generation = self.nodes[index as usize].generation;
            let generation = node.generation;
            self.nodes[index as usize] = node;
            MemLimitId { index, generation }
        } else {
            let index = self.nodes.len() as u32;
            let generation = node.generation;
            self.nodes.push(node);
            MemLimitId { index, generation }
        }
    }

    fn check_alive(&self, id: MemLimitId) -> Result<(), LimitError> {
        if self.is_alive(id) {
            Ok(())
        } else {
            Err(LimitError::Dead(id))
        }
    }

    fn node(&self, id: MemLimitId) -> &Node {
        debug_assert!(self.is_alive(id), "access to dead memlimit {id:?}");
        &self.nodes[id.index as usize]
    }

    fn node_mut(&mut self, id: MemLimitId) -> &mut Node {
        debug_assert!(self.is_alive(id), "access to dead memlimit {id:?}");
        &mut self.nodes[id.index as usize]
    }
}
