//! Property tests for the memlimit hierarchy.
//!
//! Invariants checked over arbitrary operation sequences:
//! 1. `current <= limit` at every node, always (for soft paths; hard nodes
//!    additionally never exceed their reservation).
//! 2. A node's `current` equals the sum of successful debits minus credits
//!    applied at or below it through soft chains.
//! 3. Failed operations leave the tree byte-for-byte unchanged.
//!
//! Sequences are drawn from a seeded SplitMix64 generator (the container
//! has no registry access, so no proptest): every case replays exactly from
//! its seed, and a failure message names the seed to rerun.

use kaffeos_memlimit::{Kind, MemLimitId, MemLimitTree};

/// Deterministic SplitMix64 sequence generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[derive(Debug, Clone)]
enum Op {
    CreateSoft { parent: usize, limit: u64 },
    CreateHard { parent: usize, limit: u64 },
    Debit { node: usize, bytes: u64 },
    Credit { node: usize, bytes: u64 },
}

fn gen_op(rng: &mut Rng) -> Op {
    match rng.below(4) {
        0 => Op::CreateSoft {
            parent: rng.below(usize::MAX),
            limit: rng.range(1, 2000),
        },
        1 => Op::CreateHard {
            parent: rng.below(usize::MAX),
            limit: rng.range(1, 500),
        },
        2 => Op::Debit {
            node: rng.below(usize::MAX),
            bytes: rng.range(1, 800),
        },
        _ => Op::Credit {
            node: rng.below(usize::MAX),
            bytes: rng.range(1, 800),
        },
    }
}

/// Shadow model: tracks per-node outstanding debits (applied at that node
/// directly, not via percolation).
struct Shadow {
    ids: Vec<MemLimitId>,
    direct: Vec<u64>,
}

impl Shadow {
    fn pick(&self, raw: usize) -> (usize, MemLimitId) {
        let i = raw % self.ids.len();
        (i, self.ids[i])
    }
}

fn expected_current(t: &MemLimitTree, shadow: &Shadow, idx: usize) -> u64 {
    // current(n) = direct debits at n + sum over soft descendants chains.
    // Compute by walking every node's soft-ancestor path.
    let mut total = shadow.direct[idx];
    for (j, &jid) in shadow.ids.iter().enumerate() {
        if j == idx {
            continue;
        }
        // Walk up from j through soft links; if we reach idx, j contributes.
        let mut cur = jid;
        loop {
            if t.kind(cur) == Kind::Hard {
                // A hard node contributes its *limit* (the reservation) to the
                // parent, not its current — handled separately below.
                break;
            }
            match t.parent(cur) {
                Some(p) => {
                    if p == shadow.ids[idx] {
                        total += shadow.direct[j];
                        break;
                    }
                    cur = p;
                }
                None => break,
            }
        }
    }
    // Reservations: every hard child whose soft-path to idx exists adds its
    // full limit.
    for &jid in &shadow.ids {
        if t.kind(jid) != Kind::Hard {
            continue;
        }
        let Some(mut cur) = t.parent(jid) else {
            continue;
        };
        loop {
            if cur == shadow.ids[idx] {
                total += t.limit(jid);
                break;
            }
            if t.kind(cur) == Kind::Hard {
                break;
            }
            match t.parent(cur) {
                Some(p) => cur = p,
                None => break,
            }
        }
    }
    total
}

#[test]
fn invariants_hold_under_arbitrary_ops() {
    for case in 0..256u64 {
        let mut rng = Rng::new(0xA11CE ^ case);
        let nops = rng.range(1, 60) as usize;
        let ops: Vec<Op> = (0..nops).map(|_| gen_op(&mut rng)).collect();

        let mut t = MemLimitTree::new();
        let root = t.create_root(10_000, "root");
        let mut shadow = Shadow {
            ids: vec![root],
            direct: vec![0],
        };

        for op in ops {
            match op {
                Op::CreateSoft { parent, limit } => {
                    let (_, pid) = shadow.pick(parent);
                    if let Ok(id) = t.create_child(pid, Kind::Soft, limit, "s") {
                        shadow.ids.push(id);
                        shadow.direct.push(0);
                    }
                }
                Op::CreateHard { parent, limit } => {
                    let (_, pid) = shadow.pick(parent);
                    if let Ok(id) = t.create_child(pid, Kind::Hard, limit, "h") {
                        shadow.ids.push(id);
                        shadow.direct.push(0);
                    }
                }
                Op::Debit { node, bytes } => {
                    let (i, id) = shadow.pick(node);
                    let before: Vec<u64> = shadow.ids.iter().map(|&n| t.current(n)).collect();
                    match t.debit(id, bytes) {
                        Ok(()) => shadow.direct[i] += bytes,
                        Err(_) => {
                            // Failed debit changes nothing.
                            for (k, &n) in shadow.ids.iter().enumerate() {
                                assert_eq!(t.current(n), before[k], "case {case}");
                            }
                        }
                    }
                }
                Op::Credit { node, bytes } => {
                    // Like KaffeOS itself, only credit what was debited at
                    // this node: a heap credits exactly the bytes its swept
                    // objects once debited. (Crediting percolated child
                    // debits at the parent is representable in the tree API
                    // but never issued by the kernel.)
                    let (i, id) = shadow.pick(node);
                    let bytes = bytes.min(shadow.direct[i]);
                    if bytes == 0 {
                        continue;
                    }
                    t.credit(id, bytes).unwrap();
                    shadow.direct[i] -= bytes;
                }
            }
            // Invariant 1: current <= limit everywhere.
            for &n in &shadow.ids {
                assert!(
                    t.current(n) <= t.limit(n),
                    "case {case}: current {} > limit {} at {:?}",
                    t.current(n),
                    t.limit(n),
                    n
                );
            }
            // Invariant 2: current matches the shadow model.
            for i in 0..shadow.ids.len() {
                let want = expected_current(&t, &shadow, i);
                assert_eq!(
                    t.current(shadow.ids[i]),
                    want,
                    "case {case}: node {i} current mismatch"
                );
            }
            // Invariant 3: the tree's own auditor agrees.
            t.audit().unwrap_or_else(|e| panic!("case {case}: audit failed: {e}"));
        }
    }
}

#[test]
fn debit_credit_roundtrip_is_identity() {
    for case in 0..128u64 {
        let mut rng = Rng::new(0xB0B ^ case);
        let nlimits = rng.range(1, 8) as usize;
        let limits: Vec<u64> = (0..nlimits).map(|_| rng.range(1, 1000)).collect();
        let bytes = rng.range(1, 100);

        // Build a soft chain, debit at the leaf, credit at the leaf: every
        // node must return to zero.
        let mut t = MemLimitTree::new();
        let root = t.create_root(u64::MAX, "root");
        let mut chain = vec![root];
        for (i, &l) in limits.iter().enumerate() {
            let parent = *chain.last().unwrap();
            if let Ok(id) = t.create_child(parent, Kind::Soft, l.max(bytes), format!("n{i}")) {
                chain.push(id);
            }
        }
        let leaf = *chain.last().unwrap();
        if t.debit(leaf, bytes).is_ok() {
            t.credit(leaf, bytes).unwrap();
        }
        for &n in &chain {
            assert_eq!(t.current(n), 0, "case {case}");
        }
    }
}
