//! Property tests for the memlimit hierarchy.
//!
//! Invariants checked over arbitrary operation sequences:
//! 1. `current <= limit` at every node, always (for soft paths; hard nodes
//!    additionally never exceed their reservation).
//! 2. A node's `current` equals the sum of successful debits minus credits
//!    applied at or below it through soft chains.
//! 3. Failed operations leave the tree byte-for-byte unchanged.

use kaffeos_memlimit::{Kind, MemLimitId, MemLimitTree};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    CreateSoft { parent: usize, limit: u64 },
    CreateHard { parent: usize, limit: u64 },
    Debit { node: usize, bytes: u64 },
    Credit { node: usize, bytes: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), 1u64..2000).prop_map(|(parent, limit)| Op::CreateSoft { parent, limit }),
        (any::<usize>(), 1u64..500).prop_map(|(parent, limit)| Op::CreateHard { parent, limit }),
        (any::<usize>(), 1u64..800).prop_map(|(node, bytes)| Op::Debit { node, bytes }),
        (any::<usize>(), 1u64..800).prop_map(|(node, bytes)| Op::Credit { node, bytes }),
    ]
}

/// Shadow model: tracks per-node outstanding debits (applied at that node
/// directly, not via percolation).
struct Shadow {
    ids: Vec<MemLimitId>,
    direct: Vec<u64>,
}

impl Shadow {
    fn pick(&self, raw: usize) -> (usize, MemLimitId) {
        let i = raw % self.ids.len();
        (i, self.ids[i])
    }
}

fn expected_current(t: &MemLimitTree, shadow: &Shadow, idx: usize) -> u64 {
    // current(n) = direct debits at n + sum over soft descendants chains.
    // Compute by walking every node's soft-ancestor path.
    let mut total = shadow.direct[idx];
    for (j, &jid) in shadow.ids.iter().enumerate() {
        if j == idx {
            continue;
        }
        // Walk up from j through soft links; if we reach idx, j contributes.
        let mut cur = jid;
        loop {
            if t.kind(cur) == Kind::Hard {
                // A hard node contributes its *limit* (the reservation) to the
                // parent, not its current — handled separately below.
                break;
            }
            match t.parent(cur) {
                Some(p) => {
                    if p == shadow.ids[idx] {
                        total += shadow.direct[j];
                        break;
                    }
                    cur = p;
                }
                None => break,
            }
        }
    }
    // Reservations: every hard child whose soft-path to idx exists adds its
    // full limit.
    for &jid in &shadow.ids {
        if t.kind(jid) != Kind::Hard {
            continue;
        }
        let Some(mut cur) = t.parent(jid) else {
            continue;
        };
        loop {
            if cur == shadow.ids[idx] {
                total += t.limit(jid);
                break;
            }
            if t.kind(cur) == Kind::Hard {
                break;
            }
            match t.parent(cur) {
                Some(p) => cur = p,
                None => break,
            }
        }
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn invariants_hold_under_arbitrary_ops(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut t = MemLimitTree::new();
        let root = t.create_root(10_000, "root");
        let mut shadow = Shadow { ids: vec![root], direct: vec![0] };

        for op in ops {
            match op {
                Op::CreateSoft { parent, limit } => {
                    let (_, pid) = shadow.pick(parent);
                    if let Ok(id) = t.create_child(pid, Kind::Soft, limit, "s") {
                        shadow.ids.push(id);
                        shadow.direct.push(0);
                    }
                }
                Op::CreateHard { parent, limit } => {
                    let (_, pid) = shadow.pick(parent);
                    if let Ok(id) = t.create_child(pid, Kind::Hard, limit, "h") {
                        shadow.ids.push(id);
                        shadow.direct.push(0);
                    }
                }
                Op::Debit { node, bytes } => {
                    let (i, id) = shadow.pick(node);
                    let before: Vec<u64> = shadow.ids.iter().map(|&n| t.current(n)).collect();
                    match t.debit(id, bytes) {
                        Ok(()) => shadow.direct[i] += bytes,
                        Err(_) => {
                            // Failed debit changes nothing.
                            for (k, &n) in shadow.ids.iter().enumerate() {
                                prop_assert_eq!(t.current(n), before[k]);
                            }
                        }
                    }
                }
                Op::Credit { node, bytes } => {
                    // Like KaffeOS itself, only credit what was debited at
                    // this node: a heap credits exactly the bytes its swept
                    // objects once debited. (Crediting percolated child
                    // debits at the parent is representable in the tree API
                    // but never issued by the kernel.)
                    let (i, id) = shadow.pick(node);
                    let bytes = bytes.min(shadow.direct[i]);
                    if bytes == 0 {
                        continue;
                    }
                    t.credit(id, bytes).unwrap();
                    shadow.direct[i] -= bytes;
                }
            }
            // Invariant 1: current <= limit everywhere.
            for &n in &shadow.ids {
                prop_assert!(t.current(n) <= t.limit(n),
                    "current {} > limit {} at {:?}", t.current(n), t.limit(n), n);
            }
            // Invariant 2: current matches the shadow model.
            for i in 0..shadow.ids.len() {
                let want = expected_current(&t, &shadow, i);
                prop_assert_eq!(t.current(shadow.ids[i]), want,
                    "node {} current mismatch", i);
            }
        }
    }

    #[test]
    fn debit_credit_roundtrip_is_identity(
        limits in proptest::collection::vec(1u64..1000, 1..8),
        bytes in 1u64..100,
    ) {
        // Build a soft chain, debit at the leaf, credit at the leaf: every
        // node must return to zero.
        let mut t = MemLimitTree::new();
        let root = t.create_root(u64::MAX, "root");
        let mut chain = vec![root];
        for (i, &l) in limits.iter().enumerate() {
            let parent = *chain.last().unwrap();
            if let Ok(id) = t.create_child(parent, Kind::Soft, l.max(bytes), format!("n{i}")) {
                chain.push(id);
            }
        }
        let leaf = *chain.last().unwrap();
        if t.debit(leaf, bytes).is_ok() {
            t.credit(leaf, bytes).unwrap();
        }
        for &n in &chain {
            prop_assert_eq!(t.current(n), 0);
        }
    }
}
