//! Ablations for the design choices DESIGN.md calls out:
//!
//! * **ipc_shared_vs_copy** — direct sharing through a shared heap vs
//!   copying data between process heaps (the SPIN-inspired reason KaffeOS
//!   keeps direct sharing at all).
//! * **separate_kernel_gc** — collecting a user heap independently of
//!   long-lived kernel data vs one combined heap ("the kernel heap is
//!   collected separately ... which approximates the behavior of a
//!   generational garbage collector", §4.1).
//! * **heap_pointer_padding** — the Fake Heap Pointer experiment: what the
//!   +4 bytes per object cost the collector.
//! * **memlimit_overhead** — debit/credit through soft chains of varying
//!   depth, and hard-limit reservations.
//!
//! Plain `fn main()` harness (`harness = false`): each case is warmed up,
//! then timed over a fixed number of iterations with `std::time::Instant`.
//! Run with `cargo bench -p kaffeos-bench --bench ablations`.

use std::time::Instant;

use kaffeos_heap::{BarrierKind, ClassId, HeapSpace, ProcTag, SpaceConfig, Value};
use kaffeos_memlimit::{Kind, MemLimitTree};

const CLS: ClassId = ClassId(1);

/// Times `iters` runs of `f` after `warmup` unrecorded runs and prints
/// mean ns/iteration.
fn bench(name: &str, warmup: u32, iters: u32, mut f: impl FnMut()) {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = start.elapsed();
    let per = total.as_nanos() as f64 / iters as f64;
    println!("{name:<44} {per:>14.1} ns/iter  ({iters} iters)");
}

fn space_with(kind: BarrierKind) -> HeapSpace {
    HeapSpace::new(SpaceConfig {
        barrier: kind,
        user_budget: 256 << 20,
    })
}

fn user_heap(space: &mut HeapSpace, tag: u32) -> kaffeos_heap::HeapId {
    let root = space.root_memlimit();
    let ml = space
        .limits_mut()
        .create_child(root, Kind::Soft, 64 << 20, format!("p{tag}"))
        .unwrap();
    space.create_user_heap(ProcTag(tag), ml, format!("p{tag}"))
}

/// Direct sharing vs copying: move 64 integer "messages" from producer to
/// consumer either through mutable primitive fields of one shared object
/// batch, or by allocating a copy of each message in the consumer's heap.
fn bench_ipc_shared_vs_copy() {
    {
        let mut space = space_with(BarrierKind::NoHeapPointer);
        let producer_heap = user_heap(&mut space, 1);
        let _consumer_heap = user_heap(&mut space, 2);
        // Build a frozen shared heap of 64 one-field cells.
        let producer_ml = space.heap_memlimit(producer_heap).unwrap().unwrap();
        let shm_ml = space
            .limits_mut()
            .create_child(producer_ml, Kind::Soft, 1 << 20, "shm")
            .unwrap();
        let shm = space.create_shared_heap(ProcTag(1), shm_ml, "shm");
        let cells: Vec<_> = (0..64)
            .map(|_| space.alloc_fields(shm, CLS, 1).unwrap())
            .collect();
        for &cell in &cells {
            space.store_prim(cell, 0, Value::Int(0)).unwrap();
        }
        space.freeze_shared(shm).unwrap();
        space.limits_mut().remove(shm_ml).unwrap();
        bench("ipc/shared_heap_direct", 100, 5_000, || {
            // Producer writes, consumer reads — no allocation, no copies.
            for (i, &cell) in cells.iter().enumerate() {
                space.store_prim(cell, 0, Value::Int(i as i64)).unwrap();
            }
            let mut sum = 0i64;
            for &cell in &cells {
                sum += space.load(cell, 0).unwrap().as_int();
            }
            std::hint::black_box(sum);
        });
    }

    {
        let mut space = space_with(BarrierKind::NoHeapPointer);
        let producer_heap = user_heap(&mut space, 1);
        let consumer_heap = user_heap(&mut space, 2);
        let sources: Vec<_> = (0..64)
            .map(|i| {
                let obj = space.alloc_fields(producer_heap, CLS, 1).unwrap();
                space.store_prim(obj, 0, Value::Int(i as i64)).unwrap();
                obj
            })
            .collect();
        bench("ipc/copy_between_heaps", 100, 5_000, || {
            // Kernel-style copy: allocate a fresh object in the consumer
            // heap per message and copy the payload.
            let mut sum = 0i64;
            let mut copies = Vec::with_capacity(sources.len());
            for &src in &sources {
                let v = space.load(src, 0).unwrap();
                let copy = space.alloc_fields(consumer_heap, CLS, 1).unwrap();
                space.store_prim(copy, 0, v).unwrap();
                copies.push(copy);
                sum += v.as_int();
            }
            // The copies become garbage; collect them.
            space.gc(consumer_heap, &[]).unwrap();
            std::hint::black_box(sum);
        });
    }
}

/// Separate kernel/user heaps vs one combined heap: with 20k long-lived
/// "kernel" objects, collecting only the user heap skips scanning them —
/// the generational-ish effect the paper observed.
fn bench_separate_kernel_gc() {
    {
        let mut space = space_with(BarrierKind::NoHeapPointer);
        let user = user_heap(&mut space, 1);
        let kernel = space.kernel_heap();
        // Long-lived kernel population, kept alive by entry items from a
        // user-object anchor.
        let anchor = space.alloc_fields(user, CLS, 1).unwrap();
        let mut prev: Option<kaffeos_heap::ObjRef> = None;
        for _ in 0..20_000 {
            let obj = space.alloc_fields(kernel, CLS, 1).unwrap();
            if let Some(p) = prev {
                space.store_ref(obj, 0, Value::Ref(p), true).unwrap();
            }
            prev = Some(obj);
        }
        space
            .store_ref(anchor, 0, Value::Ref(prev.unwrap()), false)
            .unwrap();
        bench("separate_kernel_gc/split_heaps", 5, 200, || {
            for _ in 0..500 {
                space.alloc_fields(user, CLS, 1).unwrap();
            }
            // Only the small user heap is scanned.
            space.gc(user, &[anchor]).unwrap();
        });
    }

    {
        let mut space = space_with(BarrierKind::NoHeapPointer);
        let user = user_heap(&mut space, 1);
        let anchor = space.alloc_fields(user, CLS, 1).unwrap();
        let mut prev: Option<kaffeos_heap::ObjRef> = None;
        for _ in 0..20_000 {
            let obj = space.alloc_fields(user, CLS, 1).unwrap();
            if let Some(p) = prev {
                space.store_ref(obj, 0, Value::Ref(p), false).unwrap();
            }
            prev = Some(obj);
        }
        space
            .store_ref(anchor, 0, Value::Ref(prev.unwrap()), false)
            .unwrap();
        bench("separate_kernel_gc/combined_heap", 5, 200, || {
            for _ in 0..500 {
                space.alloc_fields(user, CLS, 1).unwrap();
            }
            // Every collection re-marks all 20k long-lived objects.
            space.gc(user, &[anchor]).unwrap();
        });
    }
}

/// The Fake Heap Pointer experiment: identical barrier, +4 bytes/object.
fn bench_heap_pointer_padding() {
    for kind in [BarrierKind::NoHeapPointer, BarrierKind::FakeHeapPointer] {
        let mut space = space_with(kind);
        let heap = user_heap(&mut space, 1);
        bench(
            &format!("heap_pointer_padding/{}", kind.label()),
            5,
            200,
            || {
                for _ in 0..2000 {
                    space.alloc_fields(heap, CLS, 3).unwrap();
                }
                space.gc(heap, &[]).unwrap();
            },
        );
    }
}

/// Memlimit debit/credit through soft chains and hard reservations.
fn bench_memlimit_overhead() {
    for depth in [1usize, 4, 8] {
        let mut tree = MemLimitTree::new();
        let mut node = tree.create_root(u64::MAX, "root");
        for i in 0..depth {
            node = tree
                .create_child(node, Kind::Soft, 1 << 40, format!("n{i}"))
                .unwrap();
        }
        bench(&format!("memlimit/soft_chain/{depth}"), 100, 5_000, || {
            for _ in 0..1000 {
                tree.debit(node, 64).unwrap();
                tree.credit(node, 64).unwrap();
            }
        });
    }
    {
        let mut tree = MemLimitTree::new();
        let root = tree.create_root(1 << 40, "root");
        bench("memlimit/hard_reservation_create_remove", 100, 5_000, || {
            for _ in 0..100 {
                let child = tree.create_child(root, Kind::Hard, 1 << 20, "h").unwrap();
                tree.remove(child).unwrap();
            }
        });
    }
}

fn main() {
    println!("== kaffeos-bench ablations ==");
    bench_ipc_shared_vs_copy();
    bench_separate_kernel_gc();
    bench_heap_pointer_padding();
    bench_memlimit_overhead();
}
