//! Micro-benchmarks: the write barrier (§4.1's 25 vs 41 cycles story, but
//! in host wall time), allocation, per-heap GC, and exception dispatch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kaffeos_heap::{BarrierKind, ClassId, HeapSpace, ProcTag, SpaceConfig, Value};
use kaffeos_memlimit::Kind;

const CLS: ClassId = ClassId(1);

fn user_heap(space: &mut HeapSpace) -> kaffeos_heap::HeapId {
    let root = space.root_memlimit();
    let ml = space
        .limits_mut()
        .create_child(root, Kind::Soft, 64 << 20, "bench")
        .unwrap();
    space.create_user_heap(ProcTag(1), ml, "bench")
}

/// Same-heap reference stores under each barrier implementation.
fn bench_write_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("write_barrier");
    group.sample_size(30);
    for kind in BarrierKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                let mut space = HeapSpace::new(SpaceConfig {
                    barrier: kind,
                    user_budget: 64 << 20,
                });
                let heap = user_heap(&mut space);
                let src = space.alloc_fields(heap, CLS, 4).unwrap();
                let dst = space.alloc_fields(heap, CLS, 1).unwrap();
                b.iter(|| {
                    for slot in 0..4 {
                        space.store_ref(src, slot, Value::Ref(dst), false).unwrap();
                    }
                });
            },
        );
    }
    group.finish();
}

/// Cross-heap stores: the barrier's entry/exit item maintenance path.
fn bench_cross_heap_store(c: &mut Criterion) {
    c.bench_function("cross_heap_store_user_to_kernel", |b| {
        let mut space = HeapSpace::new(SpaceConfig::default());
        let heap = user_heap(&mut space);
        let kernel = space.kernel_heap();
        let kobj = space.alloc_fields(kernel, CLS, 1).unwrap();
        let uobj = space.alloc_fields(heap, CLS, 1).unwrap();
        b.iter(|| {
            space.store_ref(uobj, 0, Value::Ref(kobj), false).unwrap();
            space.store_ref(uobj, 0, Value::Null, false).unwrap();
        });
    });
}

/// Allocation fast path and one full collection.
fn bench_alloc_and_gc(c: &mut Criterion) {
    c.bench_function("alloc_1000_objects", |b| {
        let mut space = HeapSpace::new(SpaceConfig::default());
        let heap = user_heap(&mut space);
        b.iter(|| {
            for _ in 0..1000 {
                space.alloc_fields(heap, CLS, 2).unwrap();
            }
            space.gc(heap, &[]).unwrap();
        });
    });

    c.bench_function("gc_half_live_heap", |b| {
        let mut space = HeapSpace::new(SpaceConfig::default());
        let heap = user_heap(&mut space);
        // 1000 live (list-linked), garbage re-created per iteration.
        let mut roots = Vec::new();
        let mut prev = None;
        for _ in 0..1000 {
            let obj = space.alloc_fields(heap, CLS, 1).unwrap();
            if let Some(p) = prev {
                space.store_ref(obj, 0, Value::Ref(p), false).unwrap();
            }
            prev = Some(obj);
        }
        roots.push(prev.unwrap());
        b.iter(|| {
            for _ in 0..1000 {
                space.alloc_fields(heap, CLS, 1).unwrap();
            }
            space.gc(heap, &roots).unwrap()
        });
    });
}

/// Fast (Kaffe00/KaffeOS) vs slow (Kaffe99) exception dispatch — the jack
/// story, measured in host time: the slow path really materialises a stack
/// trace per throw.
fn bench_exception_dispatch(c: &mut Criterion) {
    use kaffeos::{Engine, ExitStatus, KaffeOs, KaffeOsConfig};
    let source = r#"
        class Main {
            static int main(int n) {
                int caught = 0;
                for (int i = 0; i < n; i = i + 1) {
                    try { throw new Exception("x"); }
                    catch (Exception e) { caught = caught + 1; }
                }
                return caught;
            }
        }
    "#;
    let mut group = c.benchmark_group("exception_dispatch");
    group.sample_size(20);
    for (name, engine) in [
        ("fast_kaffeos", Engine::KAFFEOS),
        ("slow_kaffe99", Engine::KAFFE99),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut os = KaffeOs::new(KaffeOsConfig {
                    engine,
                    ..KaffeOsConfig::default()
                });
                os.register_image("thrower", source).unwrap();
                let pid = os.spawn("thrower", "500", None).unwrap();
                os.run(None);
                assert_eq!(os.status(pid), Some(ExitStatus::Exited(500)));
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_write_barrier,
    bench_cross_heap_store,
    bench_alloc_and_gc,
    bench_exception_dispatch
);
criterion_main!(benches);
