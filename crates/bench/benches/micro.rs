//! Micro-benchmarks: the write barrier (§4.1's 25 vs 41 cycles story, but
//! in host wall time), allocation, per-heap GC, and exception dispatch.
//!
//! Plain `fn main()` harness (`harness = false`): each case is warmed up,
//! then timed over a fixed number of iterations with `std::time::Instant`.
//! Run with `cargo bench -p kaffeos-bench --bench micro`.

use std::time::Instant;

use kaffeos_heap::{BarrierKind, ClassId, HeapSpace, ProcTag, SpaceConfig, Value};
use kaffeos_memlimit::Kind;

const CLS: ClassId = ClassId(1);

/// Times `iters` runs of `f` after `warmup` unrecorded runs and prints
/// mean ns/iteration.
fn bench(name: &str, warmup: u32, iters: u32, mut f: impl FnMut()) {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = start.elapsed();
    let per = total.as_nanos() as f64 / iters as f64;
    println!("{name:<44} {per:>14.1} ns/iter  ({iters} iters)");
}

fn user_heap(space: &mut HeapSpace) -> kaffeos_heap::HeapId {
    let root = space.root_memlimit();
    let ml = space
        .limits_mut()
        .create_child(root, Kind::Soft, 64 << 20, "bench")
        .unwrap();
    space.create_user_heap(ProcTag(1), ml, "bench")
}

/// Same-heap reference stores under each barrier implementation.
fn bench_write_barrier() {
    for kind in BarrierKind::ALL {
        let mut space = HeapSpace::new(SpaceConfig {
            barrier: kind,
            user_budget: 64 << 20,
        });
        let heap = user_heap(&mut space);
        let src = space.alloc_fields(heap, CLS, 4).unwrap();
        let dst = space.alloc_fields(heap, CLS, 1).unwrap();
        bench(&format!("write_barrier/{}", kind.label()), 100, 10_000, || {
            for slot in 0..4 {
                space.store_ref(src, slot, Value::Ref(dst), false).unwrap();
            }
        });
    }
}

/// Cross-heap stores: the barrier's entry/exit item maintenance path.
fn bench_cross_heap_store() {
    let mut space = HeapSpace::new(SpaceConfig::default());
    let heap = user_heap(&mut space);
    let kernel = space.kernel_heap();
    let kobj = space.alloc_fields(kernel, CLS, 1).unwrap();
    let uobj = space.alloc_fields(heap, CLS, 1).unwrap();
    bench("cross_heap_store_user_to_kernel", 100, 10_000, || {
        space.store_ref(uobj, 0, Value::Ref(kobj), false).unwrap();
        space.store_ref(uobj, 0, Value::Null, false).unwrap();
    });
}

/// Allocation fast path and one full collection.
fn bench_alloc_and_gc() {
    {
        let mut space = HeapSpace::new(SpaceConfig::default());
        let heap = user_heap(&mut space);
        bench("alloc_1000_objects", 5, 200, || {
            for _ in 0..1000 {
                space.alloc_fields(heap, CLS, 2).unwrap();
            }
            space.gc(heap, &[]).unwrap();
        });
    }

    {
        let mut space = HeapSpace::new(SpaceConfig::default());
        let heap = user_heap(&mut space);
        // 1000 live (list-linked), garbage re-created per iteration.
        let mut roots = Vec::new();
        let mut prev = None;
        for _ in 0..1000 {
            let obj = space.alloc_fields(heap, CLS, 1).unwrap();
            if let Some(p) = prev {
                space.store_ref(obj, 0, Value::Ref(p), false).unwrap();
            }
            prev = Some(obj);
        }
        roots.push(prev.unwrap());
        bench("gc_half_live_heap", 5, 200, || {
            for _ in 0..1000 {
                space.alloc_fields(heap, CLS, 1).unwrap();
            }
            space.gc(heap, &roots).unwrap();
        });
    }
}

/// Fast (Kaffe00/KaffeOS) vs slow (Kaffe99) exception dispatch — the jack
/// story, measured in host time: the slow path really materialises a stack
/// trace per throw.
fn bench_exception_dispatch() {
    use kaffeos::{Engine, ExitStatus, KaffeOs, KaffeOsConfig};
    let source = r#"
        class Main {
            static int main(int n) {
                int caught = 0;
                for (int i = 0; i < n; i = i + 1) {
                    try { throw new Exception("x"); }
                    catch (Exception e) { caught = caught + 1; }
                }
                return caught;
            }
        }
    "#;
    for (name, engine) in [
        ("fast_kaffeos", Engine::KAFFEOS),
        ("slow_kaffe99", Engine::KAFFE99),
    ] {
        bench(&format!("exception_dispatch/{name}"), 2, 20, || {
            let mut os = KaffeOs::new(KaffeOsConfig {
                engine,
                ..KaffeOsConfig::default()
            });
            os.register_image("thrower", source).unwrap();
            let pid = os.spawn("thrower", "500", None).unwrap();
            os.run(None);
            assert_eq!(os.status(pid), Some(ExitStatus::Exited(500)));
        });
    }
}

fn main() {
    println!("== kaffeos-bench micro ==");
    bench_write_barrier();
    bench_cross_heap_store();
    bench_alloc_and_gc();
    bench_exception_dispatch();
}
