//! Barrier-elision benchmark: what does the static heap-flow analyzer buy?
//!
//! Runs the seven SPEC-analogue benchmarks on the default KaffeOS platform
//! (heap-pointer barrier) twice — with analyzer-driven barrier elision on
//! and off — and reports the elided-site fraction plus the host wall-clock
//! delta. Same protocol as `interp_throughput`: each configuration runs
//! `reps` times, wall time takes the **minimum** (host noise is strictly
//! additive), and every virtual number (op count, virtual seconds,
//! checksum) is asserted identical across reps *and across the two
//! configurations* — elision is host-only by contract, so a single moved
//! virtual number is a bug, and this bench doubles as the check.
//!
//! ```text
//! cargo run --release -p kaffeos-bench --bin barrier_elision
//!     [--quick]        # smoke iteration counts
//!     [--reps <k>]     # wall-clock reps per configuration (default 3)
//!     [--out <path>]   # default: BENCH_barrier.json
//! ```
//!
//! Writes a machine-readable `BENCH_barrier.json` at the repo root (see
//! EXPERIMENTS.md for the format).

use std::fmt::Write as _;
use std::time::Instant;

use kaffeos_bench::{cell, quick_mode, rule};
use kaffeos_workloads::runner::{platforms, Platform, PlatformKind};
use kaffeos_workloads::spec;

struct BenchRow {
    name: &'static str,
    n: i64,
    ops: u64,
    wall_elide: f64,
    wall_noelide: f64,
    virtual_seconds: f64,
    checksum: i64,
    elided_sites: usize,
    total_sites: usize,
}

impl BenchRow {
    fn delta_pct(&self) -> f64 {
        (self.wall_noelide - self.wall_elide) / self.wall_noelide.max(1e-9) * 100.0
    }
    fn fraction(&self) -> f64 {
        self.elided_sites as f64 / (self.total_sites as f64).max(1.0)
    }
}

fn kaffeos_platform() -> Platform {
    platforms()
        .into_iter()
        .find(|p| matches!(p.kind, PlatformKind::KaffeOs(kaffeos::BarrierKind::HeapPointer)))
        .expect("heap-pointer platform exists")
}

fn arg_after(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// One full run of `bench` with elision on or off; returns the virtual
/// triple and the wall time.
fn run_once(
    platform: &Platform,
    bench: &spec::SpecBenchmark,
    n: i64,
    elide: bool,
) -> (u64, f64, i64, f64) {
    let mut os = kaffeos::KaffeOs::new(kaffeos::KaffeOsConfig {
        elide,
        ..platform.config()
    });
    os.register_image(bench.name, bench.source)
        .unwrap_or_else(|e| panic!("{} does not compile: {e}", bench.name));
    // Spawn outside the timed region: spawn loads the benchmark's classes,
    // and in elide mode that triggers the whole-program analysis — a
    // one-off load-time cost that would otherwise drown the per-store
    // saving on short runs. The timer covers execution only.
    let pid = os
        .spawn(bench.name, &n.to_string(), None)
        .expect("benchmark spawns");
    let started = Instant::now();
    let report = os.run(None);
    let wall = started.elapsed().as_secs_f64();
    let checksum = match os.status(pid) {
        Some(kaffeos::ExitStatus::Exited(v)) => v,
        other => panic!("{} ended with {other:?}", bench.name),
    };
    (os.ops_executed(), report.virtual_seconds, checksum, wall)
}

fn main() {
    let quick = quick_mode();
    let reps: u32 = arg_after("--reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_barrier.json".to_string());

    let platform = kaffeos_platform();
    println!(
        "barrier_elision on {:?} ({}, best of {reps} per config)",
        platform.name,
        if quick { "quick" } else { "full" }
    );
    rule(86);
    println!(
        "{:<12} {:>4} {:>12} {:>11} {:>10} {:>10} {:>8} {:>10}",
        "benchmark", "n", "ops", "sites", "elide s", "barrier s", "delta%", "virt s"
    );
    rule(86);

    let mut rows = Vec::new();
    for bench in spec::all_benchmarks() {
        let n = if quick { bench.test_n } else { bench.default_n };

        // The static half: spawn once (spawning is what loads the guest
        // classes into the table) and count the elidable reference-store
        // sites the analyzer found. Includes the kernel base classes, so
        // the interesting signal is the variation across benchmarks.
        let (elided_sites, total_sites) = {
            let mut os = kaffeos::KaffeOs::new(platform.config());
            os.register_image(bench.name, bench.source)
                .unwrap_or_else(|e| panic!("{} does not compile: {e}", bench.name));
            os.spawn(bench.name, &n.to_string(), None)
                .expect("benchmark spawns");
            os.analysis().elision_counts()
        };

        let mut row: Option<BenchRow> = None;
        for rep in 0..reps * 2 {
            let elide = rep % 2 == 0;
            let (ops, virt, checksum, wall) = run_once(&platform, &bench, n, elide);
            match &mut row {
                None => {
                    row = Some(BenchRow {
                        name: bench.name,
                        n,
                        ops,
                        wall_elide: if elide { wall } else { f64::INFINITY },
                        wall_noelide: if elide { f64::INFINITY } else { wall },
                        virtual_seconds: virt,
                        checksum,
                        elided_sites,
                        total_sites,
                    });
                }
                Some(r) => {
                    // The contract this bench exists to check: virtual
                    // numbers are identical across reps and configurations.
                    assert_eq!(r.ops, ops, "{}: ops moved (elide={elide})", bench.name);
                    assert_eq!(
                        r.virtual_seconds, virt,
                        "{}: virtual time moved (elide={elide})",
                        bench.name
                    );
                    assert_eq!(
                        r.checksum, checksum,
                        "{}: checksum moved (elide={elide})",
                        bench.name
                    );
                    if elide {
                        r.wall_elide = r.wall_elide.min(wall);
                    } else {
                        r.wall_noelide = r.wall_noelide.min(wall);
                    }
                }
            }
        }
        let row = row.expect("reps >= 1");
        println!(
            "{:<12} {:>4} {:>12} {:>5}/{:<5} {} {} {} {}",
            row.name,
            row.n,
            row.ops,
            row.elided_sites,
            row.total_sites,
            cell(row.wall_elide, 10, 3),
            cell(row.wall_noelide, 10, 3),
            cell(row.delta_pct(), 8, 1),
            cell(row.virtual_seconds, 10, 3),
        );
        rows.push(row);
    }
    rule(86);

    let total_elide: f64 = rows.iter().map(|r| r.wall_elide).sum();
    let total_noelide: f64 = rows.iter().map(|r| r.wall_noelide).sum();
    let total_elided: usize = rows.iter().map(|r| r.elided_sites).sum();
    let total_sites: usize = rows.iter().map(|r| r.total_sites).sum();
    let total_delta = (total_noelide - total_elide) / total_noelide.max(1e-9) * 100.0;
    println!(
        "{:<12} {:>4} {:>12} {:>5}/{:<5} {} {} {}",
        "TOTAL",
        "",
        rows.iter().map(|r| r.ops).sum::<u64>(),
        total_elided,
        total_sites,
        cell(total_elide, 10, 3),
        cell(total_noelide, 10, 3),
        cell(total_delta, 8, 1),
    );
    println!(
        "elided {total_elided}/{total_sites} reference-store sites; virtual numbers identical \
         across all {} runs",
        rows.len() as u32 * reps * 2
    );

    // --- machine-readable report -----------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"barrier_elision\",");
    let _ = writeln!(json, "  \"platform\": \"{}\",", platform.name);
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"reps\": {reps},");
    json.push_str("  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"n\": {}, \"ops\": {}, \"elided_sites\": {}, \
             \"total_sites\": {}, \"elided_fraction\": {}, \"wall_elide_seconds\": {}, \
             \"wall_barrier_seconds\": {}, \"wall_delta_pct\": {}, \
             \"virtual_seconds\": {:.6}, \"checksum\": {}}}{}",
            r.name,
            r.n,
            r.ops,
            r.elided_sites,
            r.total_sites,
            json_f(r.fraction()),
            json_f(r.wall_elide),
            json_f(r.wall_noelide),
            json_f(r.delta_pct()),
            r.virtual_seconds,
            r.checksum,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"total\": {{\"elided_sites\": {}, \"total_sites\": {}, \
         \"wall_elide_seconds\": {}, \"wall_barrier_seconds\": {}, \"wall_delta_pct\": {}}},",
        total_elided,
        total_sites,
        json_f(total_elide),
        json_f(total_noelide),
        json_f(total_delta)
    );
    json.push_str("  \"virtual_numbers_identical\": true\n");
    json.push_str("}\n");
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("report -> {out_path}");
}
