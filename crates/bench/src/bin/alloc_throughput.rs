//! Host allocation-path throughput on an alloc-heavy workload mix.
//!
//! Drives the heap layer directly (no interpreter) with deterministic
//! jess/javac-style allocation profiles — many short-lived small objects,
//! tree-shaped churn with arrays and strings, a tenured graph with young
//! churn on top, and a multi-heap merge storm — and reports **host**
//! allocations/sec. Like `interp_throughput`, the wall numbers are the only
//! ones allowed to change between commits: every phase ends with a full
//! collection and folds its live state (bytes, object count, every live
//! field value) into a checksum that must match rep-for-rep, and — when a
//! `--baseline` report is given — byte-for-byte against the prior
//! implementation's checksums, proving the allocator rework moved no
//! virtually observable number.
//!
//! ```text
//! cargo run --release -p kaffeos-bench --bin alloc_throughput
//!     [--quick]            # smoke iteration counts
//!     [--reps <k>]         # wall-clock reps per phase (default 3)
//!     [--out <path>]       # default: BENCH_alloc.json
//!     [--baseline <path>]  # embed a prior run's totals for the speedup
//! ```
//!
//! Writes a machine-readable `BENCH_alloc.json` (see EXPERIMENTS.md).

use std::fmt::Write as _;
use std::time::Instant;

use kaffeos_bench::{cell, quick_mode, rule};
use kaffeos_heap::{
    BarrierKind, ClassId, HeapId, HeapSpace, ObjRef, SpaceConfig, ProcTag, Value,
};
use kaffeos_memlimit::Kind;

const CLS_FACT: ClassId = ClassId(101);
const CLS_NODE: ClassId = ClassId(102);
const CLS_ARR: ClassId = ClassId(103);
const CLS_STR: ClassId = ClassId(104);

/// Deterministic SplitMix64 generator (same recurrence as the fuzz suites).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// FNV-1a fold used for the end-of-phase live-state checksum.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    fn fold(&mut self, v: u64) {
        let mut x = self.0 ^ v;
        x = x.wrapping_mul(0x100000001b3);
        self.0 = x;
    }
}

struct Phase {
    name: &'static str,
    ops: u64,
    wall_seconds: f64,
    checksum: u64,
    bytes_final: u64,
    objects_final: u64,
}

impl Phase {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.wall_seconds.max(1e-9)
    }
    fn ns_per_op(&self) -> f64 {
        self.wall_seconds * 1e9 / (self.ops as f64).max(1.0)
    }
}

struct Harness {
    space: HeapSpace,
    heap: HeapId,
    /// Rolling window of live roots the phase keeps reachable.
    window: Vec<ObjRef>,
    ops: u64,
}

impl Harness {
    fn new() -> Self {
        let mut space = HeapSpace::new(SpaceConfig {
            barrier: BarrierKind::NoHeapPointer,
            user_budget: 256 * 1024 * 1024,
        });
        let root = space.root_memlimit();
        let ml = space
            .limits_mut()
            .create_child(root, Kind::Soft, 128 * 1024 * 1024, "bench-proc")
            .expect("bench memlimit");
        let heap = space.create_user_heap(ProcTag(1), ml, "bench");
        Harness {
            space,
            heap,
            window: Vec::new(),
            ops: 0,
        }
    }

    /// Periodic collection inside a phase. The post-nursery implementation
    /// runs a **minor** collection here (nursery pages + remembered set
    /// only); every phase still finishes with a full `gc()`, so the
    /// end-of-phase live state is identical either way (minor+major marks
    /// exactly what a single major marks — test-enforced).
    fn collect(&mut self) {
        let roots = self.window.clone();
        self.space
            .gc_minor(self.heap, &roots)
            .expect("minor collection");
    }

    fn full_gc(&mut self) {
        let roots = self.window.clone();
        self.space.gc(self.heap, &roots).expect("full collection");
    }

    /// Folds the final live state: heap counters plus every reachable value
    /// in window order. Implementation-independent: depends only on what is
    /// live and what it contains.
    fn checksum(&mut self) -> u64 {
        self.full_gc();
        let mut h = Fnv::new();
        h.fold(self.space.heap_bytes(self.heap).expect("live heap"));
        let snap = self.space.snapshot(self.heap).expect("snapshot");
        h.fold(snap.objects);
        h.fold(snap.entry_items as u64);
        h.fold(snap.exit_items as u64);
        for &r in &self.window {
            let n = self.space.slot_count(r).expect("live root");
            h.fold(self.space.class_of(r).expect("live root").0 as u64);
            for i in 0..n {
                match self.space.load(r, i).expect("live slot") {
                    Value::Null => h.fold(1),
                    Value::Int(v) => h.fold(2 ^ (v as u64).rotate_left(8)),
                    Value::Float(v) => h.fold(3 ^ v.to_bits()),
                    Value::Ref(r2) => {
                        // Fold the target's class, not its slot index: slot
                        // numbering is the allocator's business, the object
                        // graph is not.
                        h.fold(4 ^ (self.space.class_of(r2).expect("live ref").0 as u64) << 3)
                    }
                }
            }
        }
        h.0
    }
}

/// jess-style: a storm of small fact objects, ~87% dying before the next
/// collection; survivors are pinned through a working-memory array whose
/// slots are overwritten as new facts displace old ones, so the live set
/// stays bounded at the array's size. Collection every `gc_every` allocs.
fn phase_jess_facts(n: u64, gc_every: u64) -> (Harness, u64) {
    let mut h = Harness::new();
    let mut rng = Rng(0xFAC7);
    let wm_len = 65536usize;
    let wm = h
        .space
        .alloc_array(h.heap, CLS_ARR, 4, wm_len, Value::Null)
        .expect("working-memory array");
    h.window.push(wm);
    // Resident fact base: the long-lived working memory a rule engine keeps
    // between activations. A full collection re-marks and re-sweeps all of
    // it on every cycle; a minor collection never touches it once tenured.
    for i in 0..wm_len {
        let obj = h
            .space
            .alloc_fields(h.heap, CLS_FACT, 4)
            .expect("base fact alloc");
        h.ops += 1;
        h.space
            .store_prim(obj, 0, Value::Int(i as i64))
            .expect("base fact init");
        h.ops += 1;
        h.space
            .store_ref(wm, i, Value::Ref(obj), false)
            .expect("base fact store");
        h.ops += 1;
    }
    // Two collections so the fact base ages past the promotion threshold.
    h.collect();
    h.collect();
    for i in 0..n {
        let obj = h
            .space
            .alloc_fields(h.heap, CLS_FACT, 4)
            .expect("fact alloc");
        h.ops += 1;
        for f in 0..3 {
            h.space
                .store_prim(obj, f, Value::Int((i as i64) * 7 + f as i64))
                .expect("fact init");
            h.ops += 1;
        }
        // 1-in-8 facts displace a working-memory slot (the rest die young).
        if rng.below(8) == 0 {
            let at = (rng.below(wm_len as u64)) as usize;
            h.space
                .store_ref(wm, at, Value::Ref(obj), false)
                .expect("fact retained");
            h.ops += 1;
        }
        if i > 0 && i % gc_every == 0 {
            h.collect();
        }
    }
    let ops = h.ops;
    (h, ops)
}

/// javac-style: tree-shaped AST churn with node objects, int arrays and
/// interned-ish strings; whole trees die when evicted from the window.
fn phase_javac_trees(n: u64, gc_every: u64) -> (Harness, u64) {
    let mut h = Harness::new();
    let mut rng = Rng(0x1ACAC);
    let window_cap = 256usize;
    // Resident symbol table: classes/members loaded for the compilation
    // stay live for the whole run, like javac's symbol environment.
    let sym_len = 32768usize;
    let symtab = h
        .space
        .alloc_array(h.heap, CLS_ARR, 4, sym_len, Value::Null)
        .expect("symbol table");
    h.window.push(symtab);
    for i in 0..sym_len {
        let sym = h
            .space
            .alloc_fields(h.heap, CLS_NODE, 2)
            .expect("symbol alloc");
        h.ops += 1;
        h.space
            .store_prim(sym, 0, Value::Int(i as i64))
            .expect("symbol init");
        h.ops += 1;
        h.space
            .store_ref(symtab, i, Value::Ref(sym), false)
            .expect("symbol store");
        h.ops += 1;
    }
    h.collect();
    h.collect();
    for i in 0..n {
        let node = h
            .space
            .alloc_fields(h.heap, CLS_NODE, 8)
            .expect("node alloc");
        h.ops += 1;
        // Two children, stored through the barrier.
        for c in 0..2 {
            let kid = h
                .space
                .alloc_fields(h.heap, CLS_NODE, 2)
                .expect("kid alloc");
            h.ops += 1;
            h.space
                .store_ref(node, c, Value::Ref(kid), false)
                .expect("kid link");
            h.ops += 1;
        }
        match rng.below(10) {
            0..=2 => {
                let arr = h
                    .space
                    .alloc_array(h.heap, CLS_ARR, 4, 16, Value::Int(0))
                    .expect("arr alloc");
                h.ops += 1;
                h.space
                    .store_ref(node, 2, Value::Ref(arr), false)
                    .expect("arr link");
                h.ops += 1;
            }
            3 => {
                let s = h
                    .space
                    .alloc_str(h.heap, CLS_STR, "ident_42")
                    .expect("str alloc");
                h.ops += 1;
                h.space
                    .store_ref(node, 3, Value::Ref(s), false)
                    .expect("str link");
                h.ops += 1;
            }
            _ => {}
        }
        // 1-in-32 trees get attached to the symbol table (an old->young
        // store: remembered-set traffic, and the displaced entry becomes
        // mature garbage for the next full collection).
        if rng.below(32) == 0 {
            let at = (rng.below(sym_len as u64)) as usize;
            h.space
                .store_ref(symtab, at, Value::Ref(node), false)
                .expect("symtab store");
            h.ops += 1;
        }
        if h.window.len() < window_cap {
            h.window.push(node);
        } else {
            // window[0] anchors the symbol table; evict only transient
            // slots.
            let at = 1 + (rng.below((window_cap - 1) as u64)) as usize;
            h.window[at] = node;
        }
        if i > 0 && i % gc_every == 0 {
            h.collect();
        }
    }
    let ops = h.ops;
    (h, ops)
}

/// Tenured graph + young churn: a long-lived object graph is built first
/// (it tenures), then a storm of immediately-dead young objects runs on
/// top, with occasional old->young stores (remembered-set traffic).
fn phase_survivors(n: u64, gc_every: u64) -> (Harness, u64) {
    let mut h = Harness::new();
    let mut rng = Rng(0x5EED);
    let old_count = 32768usize;
    for i in 0..old_count {
        let obj = h
            .space
            .alloc_fields(h.heap, CLS_NODE, 4)
            .expect("old alloc");
        h.ops += 1;
        if i > 0 {
            let prev = h.window[i - 1];
            h.space
                .store_ref(obj, 0, Value::Ref(prev), false)
                .expect("old chain");
            h.ops += 1;
        }
        h.window.push(obj);
    }
    // Let the old graph age past the promotion threshold before the churn
    // starts.
    h.collect();
    h.collect();
    for i in 0..n {
        let young = h
            .space
            .alloc_fields(h.heap, CLS_FACT, 2)
            .expect("young alloc");
        h.ops += 1;
        h.space
            .store_prim(young, 0, Value::Int(i as i64))
            .expect("young init");
        h.ops += 1;
        // 1-in-64: an old object points at a young one (old->young edge).
        if rng.below(64) == 0 {
            let at = (rng.below(old_count as u64)) as usize;
            h.space
                .store_ref(h.window[at], 1, Value::Ref(young), false)
                .expect("old->young store");
            h.ops += 1;
        }
        if i > 0 && i % gc_every == 0 {
            h.collect();
        }
    }
    let ops = h.ops;
    (h, ops)
}

/// Merge storm: short-lived process heaps are populated and merged into the
/// kernel heap (page retag path), with kernel collections between rounds.
fn phase_merge_storm(rounds: u64, per_round: u64) -> (Harness, u64) {
    let mut h = Harness::new();
    for round in 0..rounds {
        let root = h.space.root_memlimit();
        let ml = h
            .space
            .limits_mut()
            .create_child(root, Kind::Soft, 64 * 1024 * 1024, "merge-proc")
            .expect("merge memlimit");
        let heap = h
            .space
            .create_user_heap(ProcTag(100 + round as u32), ml, "merge");
        let mut prev: Option<ObjRef> = None;
        for _ in 0..per_round {
            let obj = h
                .space
                .alloc_fields(heap, CLS_NODE, 3)
                .expect("merge alloc");
            h.ops += 1;
            if let Some(p) = prev {
                h.space
                    .store_ref(obj, 0, Value::Ref(p), false)
                    .expect("merge chain");
                h.ops += 1;
            }
            prev = Some(obj);
        }
        h.space.merge_into_kernel(heap).expect("merge");
        h.space
            .limits_mut()
            .drain_and_remove(ml)
            .expect("merge limit teardown");
        if round % 4 == 3 {
            let kernel = h.space.kernel_heap();
            h.space.gc(kernel, &[]).expect("kernel gc");
        }
    }
    let kernel = h.space.kernel_heap();
    h.space.gc(kernel, &[]).expect("kernel gc");
    let ops = h.ops;
    (h, ops)
}

fn arg_after(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Pulls `"ops_per_sec": <number>` out of the `"total"` object and the
/// per-phase checksums out of a prior report. Hand-rolled on purpose: no
/// JSON dependency in this workspace.
fn baseline_total(body: &str) -> Option<f64> {
    let total = body.find("\"total\"")?;
    let tail = &body[total..];
    let key = tail.find("\"ops_per_sec\":")?;
    let num = tail[key + "\"ops_per_sec\":".len()..].trim_start();
    let end = num
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(num.len());
    num[..end].parse().ok()
}

fn baseline_checksum(body: &str, phase: &str) -> Option<u64> {
    let at = body.find(&format!("\"name\": \"{phase}\""))?;
    let tail = &body[at..];
    let key = tail.find("\"checksum\": ")?;
    let num = tail[key + "\"checksum\": ".len()..].trim_start();
    let end = num
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(num.len());
    num[..end].parse().ok()
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let quick = quick_mode();
    let reps: u32 = arg_after("--reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_alloc.json".to_string());
    let baseline_body = arg_after("--baseline").and_then(|p| std::fs::read_to_string(&p).ok());
    let baseline = baseline_body.as_deref().and_then(baseline_total);

    let scale: u64 = if quick { 16 } else { 1 };
    println!(
        "alloc_throughput ({}, best of {reps})",
        if quick { "quick" } else { "full" }
    );
    rule(78);
    println!(
        "{:<14} {:>12} {:>9} {:>12} {:>10} {:>20}",
        "phase", "ops", "wall s", "Mops/s", "ns/op", "checksum"
    );
    rule(78);

    type PhaseFn = fn(u64) -> (Harness, u64);
    let run_jess: PhaseFn = |s| phase_jess_facts(1_600_000 / s, 32_768);
    let run_javac: PhaseFn = |s| phase_javac_trees(400_000 / s, 16_384);
    let run_surv: PhaseFn = |s| phase_survivors(1_200_000 / s, 16_384);
    let run_merge: PhaseFn = |s| phase_merge_storm(64 / s.min(8), 8_192);
    let phases: [(&'static str, PhaseFn); 4] = [
        ("jess_facts", run_jess),
        ("javac_trees", run_javac),
        ("survivors", run_surv),
        ("merge_storm", run_merge),
    ];

    let mut rows: Vec<Phase> = Vec::new();
    for (name, run) in phases {
        let mut row: Option<Phase> = None;
        for _ in 0..reps {
            let started = Instant::now();
            let (mut h, ops) = run(scale);
            let wall = started.elapsed().as_secs_f64();
            // The checksum pass runs a final full collection outside the
            // timed region: the phases time the allocation path, not the
            // verification walk.
            let checksum = h.checksum();
            let bytes_final = h.space.heap_bytes(h.heap).unwrap_or_else(|_| {
                h.space
                    .heap_bytes(h.space.kernel_heap())
                    .expect("kernel heap alive")
            });
            let objects_final = h
                .space
                .snapshot(h.heap)
                .or_else(|_| h.space.snapshot(h.space.kernel_heap()))
                .expect("snapshot")
                .objects;
            match &mut row {
                None => {
                    row = Some(Phase {
                        name,
                        ops,
                        wall_seconds: wall,
                        checksum,
                        bytes_final,
                        objects_final,
                    });
                }
                Some(r) => {
                    assert_eq!(r.ops, ops, "{name}: op count drifted across reps");
                    assert_eq!(r.checksum, checksum, "{name}: live state drifted across reps");
                    r.wall_seconds = r.wall_seconds.min(wall);
                }
            }
        }
        let row = row.expect("reps >= 1");
        if let Some(body) = baseline_body.as_deref() {
            if let Some(base_sum) = baseline_checksum(body, name) {
                assert_eq!(
                    row.checksum, base_sum,
                    "{name}: live state diverged from the baseline implementation"
                );
            }
        }
        println!(
            "{:<14} {:>12} {} {} {} {:>20x}",
            row.name,
            row.ops,
            cell(row.wall_seconds, 9, 3),
            cell(row.ops_per_sec() / 1e6, 12, 2),
            cell(row.ns_per_op(), 10, 1),
            row.checksum,
        );
        rows.push(row);
    }
    rule(78);

    let total_ops: u64 = rows.iter().map(|r| r.ops).sum();
    let total_wall: f64 = rows.iter().map(|r| r.wall_seconds).sum();
    let total_ops_per_sec = total_ops as f64 / total_wall.max(1e-9);
    let total_ns_per_op = total_wall * 1e9 / (total_ops as f64).max(1.0);
    println!(
        "{:<14} {:>12} {} {} {}",
        "TOTAL",
        total_ops,
        cell(total_wall, 9, 3),
        cell(total_ops_per_sec / 1e6, 12, 2),
        cell(total_ns_per_op, 10, 1),
    );
    if let Some(base) = baseline {
        println!(
            "baseline: {} Mops/s -> speedup {}x",
            cell(base / 1e6, 0, 2),
            cell(total_ops_per_sec / base.max(1e-9), 0, 2)
        );
    }

    // --- machine-readable report -----------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"alloc_throughput\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"reps\": {reps},");
    json.push_str("  \"phases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"ops\": {}, \"wall_seconds\": {}, \
             \"ops_per_sec\": {}, \"ns_per_op\": {}, \"checksum\": {}, \
             \"bytes_final\": {}, \"objects_final\": {}}}{}",
            r.name,
            r.ops,
            json_f(r.wall_seconds),
            json_f(r.ops_per_sec()),
            json_f(r.ns_per_op()),
            r.checksum,
            r.bytes_final,
            r.objects_final,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"total\": {{\"ops\": {}, \"wall_seconds\": {}, \"ops_per_sec\": {}, \
         \"ns_per_op\": {}}},",
        total_ops,
        json_f(total_wall),
        json_f(total_ops_per_sec),
        json_f(total_ns_per_op)
    );
    match baseline {
        Some(base) => {
            let _ = writeln!(json, "  \"baseline\": {{\"ops_per_sec\": {}}},", json_f(base));
            let _ = writeln!(
                json,
                "  \"speedup_vs_baseline\": {}",
                json_f(total_ops_per_sec / base.max(1e-9))
            );
        }
        None => {
            json.push_str("  \"baseline\": null,\n");
            json.push_str("  \"speedup_vs_baseline\": null\n");
        }
    }
    json.push_str("}\n");
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("report -> {out_path}");
}
