//! Figure 3: SPEC JVM98(-analogue) execution time on the seven platforms.
//!
//! The paper plots seconds (three runs, 95% confidence intervals) for each
//! benchmark on IBM's JDK, Kaffe00, Kaffe99, and four KaffeOS barrier
//! configurations. We print the deterministic virtual seconds (the modelled
//! 500 MHz clock — identical across runs by construction) and the measured
//! wall-clock mean ± half-width of a 95% CI over three runs.
//!
//! Usage: `cargo run --release -p kaffeos-bench --bin fig3 [--quick]`

use kaffeos_bench::{quick_mode, rule};
use kaffeos_workloads::{all_benchmarks, platforms, run_spec};

fn main() {
    let quick = quick_mode();
    let plats = platforms();

    println!("Figure 3: benchmark execution time (virtual seconds @500MHz)");
    println!(
        "{:<12}{}",
        "benchmark",
        plats
            .iter()
            .map(|p| format!("{:>14}", shorten(p.name)))
            .collect::<String>()
    );
    rule(12 + 14 * plats.len());

    let mut wall_rows = Vec::new();
    for bench in all_benchmarks() {
        let n = if quick { bench.test_n } else { bench.default_n };
        let mut row = format!("{:<12}", bench.name);
        let mut wall_row = format!("{:<12}", bench.name);
        let mut checksum = None;
        for platform in &plats {
            // Three runs, like the paper; virtual time is identical across
            // runs, wall time gets a mean ± CI.
            let runs: Vec<_> = (0..3).map(|_| run_spec(&bench, platform, n)).collect();
            let v = runs[0].virtual_seconds;
            assert!(
                runs.iter().all(|r| r.virtual_seconds == v),
                "virtual time must be deterministic"
            );
            match checksum {
                None => checksum = Some(runs[0].checksum),
                Some(c) => assert_eq!(c, runs[0].checksum, "checksum mismatch"),
            }
            let walls: Vec<f64> = runs.iter().map(|r| r.wall_seconds).collect();
            let mean = walls.iter().sum::<f64>() / walls.len() as f64;
            let var =
                walls.iter().map(|w| (w - mean).powi(2)).sum::<f64>() / (walls.len() - 1) as f64;
            // 95% CI half-width, t(2 df) = 4.303.
            let ci = 4.303 * (var / walls.len() as f64).sqrt();
            row.push_str(&format!("{v:>14.3}"));
            wall_row.push_str(&format!("{:>8.3}±{:<5.3}", mean, ci));
        }
        println!("{row}");
        wall_rows.push(wall_row);
    }

    println!();
    println!("wall-clock seconds on this host (mean ± 95% CI over 3 runs):");
    println!(
        "{:<12}{}",
        "benchmark",
        plats
            .iter()
            .map(|p| format!("{:>14}", shorten(p.name)))
            .collect::<String>()
    );
    rule(12 + 14 * plats.len());
    for row in wall_rows {
        println!("{row}");
    }
    println!();
    println!(
        "note: engine CPI factors are calibrated to the paper's measured \
         ratios (IBM 2-5x Kaffe00; Kaffe00 ~2x Kaffe99); barrier work, GC \
         work and counts are measured, not modelled. See DESIGN.md."
    );
}

fn shorten(name: &str) -> String {
    name.replace("KaffeOS, ", "KOS/")
        .replace("No Write Barrier", "NoWB")
        .replace("Heap Pointer", "HeapPtr")
        .replace("No HeapPtr", "NoHeapPtr")
        .replace("Fake HeapPtr", "FakeHP")
}
