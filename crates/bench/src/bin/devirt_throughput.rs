//! Devirtualization/lock-elision benchmark: what do the whole-program
//! hierarchy and escape passes buy?
//!
//! Runs a call- and monitor-dense guest on the default KaffeOS platform
//! twice — with the static analysis on and off — and reports the
//! monomorphic-site fraction, the dynamic devirtualized-call and
//! elided-monitor counters, and host wall-clock throughput for both
//! configurations. Same protocol as `barrier_elision`: each configuration
//! runs `reps` times interleaved, wall time takes the **minimum** (host
//! noise is strictly additive), and every virtual number (op count,
//! virtual seconds, checksum) is asserted identical across reps *and
//! across the two configurations* — devirtualization and monitor elision
//! are host-only by contract, so a single moved virtual number is a bug,
//! and this bench doubles as the check.
//!
//! ```text
//! cargo run --release -p kaffeos-bench --bin devirt_throughput
//!     [--quick]        # smoke iteration counts
//!     [--reps <k>]     # wall-clock reps per configuration (default 3)
//!     [--out <path>]   # default: BENCH_devirt.json
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use kaffeos_bench::{cell, quick_mode, rule};
use kaffeos_workloads::runner::{platforms, Platform, PlatformKind};

/// A hot loop over a monomorphic virtual call and a frame-local sync
/// block: exactly the two shapes the hierarchy and escape passes sharpen.
/// `Shape.area` is the only override of its vslot, so every `sh.area()`
/// devirtualizes; `lock` never leaves the frame, so both monitor ops
/// elide.
const DEVIRT_SOURCE: &str = r#"
    class Shape {
        int s;
        int area() { return this.s * this.s; }
    }
    class Main {
        static int main(int n) {
            int acc = 0;
            int i = 0;
            while (i < n) {
                Shape sh = new Shape();
                sh.s = i % 97;
                acc = acc + sh.area();
                Object lock = new Object();
                sync (lock) { acc = acc + i; }
                i = i + 1;
            }
            return acc % 1000000007;
        }
    }
"#;

fn kaffeos_platform() -> Platform {
    platforms()
        .into_iter()
        .find(|p| matches!(p.kind, PlatformKind::KaffeOs(kaffeos::BarrierKind::HeapPointer)))
        .expect("heap-pointer platform exists")
}

fn arg_after(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// One full run with the analysis on or off; returns the virtual triple,
/// the wall time, and the dynamic `(devirt_calls, monitors_elided)`
/// counters the kernel drained for the process.
fn run_once(platform: &Platform, n: i64, analysis_on: bool) -> (u64, f64, i64, f64, (u64, u64)) {
    let mut os = kaffeos::KaffeOs::new(kaffeos::KaffeOsConfig {
        elide: analysis_on,
        ..platform.config()
    });
    os.register_image("devirt", DEVIRT_SOURCE)
        .unwrap_or_else(|e| panic!("devirt guest does not compile: {e}"));
    // Spawn outside the timed region: spawning loads the guest classes,
    // which triggers the whole-program analysis in the on-configuration —
    // a one-off load-time cost. The timer covers execution only.
    let pid = os.spawn("devirt", &n.to_string(), None).expect("guest spawns");
    let started = Instant::now();
    let report = os.run(None);
    let wall = started.elapsed().as_secs_f64();
    let checksum = match os.status(pid) {
        Some(kaffeos::ExitStatus::Exited(v)) => v,
        other => panic!("devirt guest ended with {other:?}"),
    };
    let counters = os.analysis_counters(pid).expect("pid is known");
    (os.ops_executed(), report.virtual_seconds, checksum, wall, counters)
}

fn main() {
    let quick = quick_mode();
    let reps: u32 = arg_after("--reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_devirt.json".to_string());
    let n: i64 = if quick { 20_000 } else { 200_000 };

    let platform = kaffeos_platform();
    println!(
        "devirt_throughput on {:?} ({}, best of {reps} per config, n={n})",
        platform.name,
        if quick { "quick" } else { "full" }
    );

    // The static half: spawn once (spawning loads the guest classes into
    // the table) and read the analyzer's call-site and monitor verdicts.
    // Counts cover the whole table — kernel base classes included — so the
    // monomorphic ratio is the real whole-program number, not a toy one.
    let (mono_sites, poly_sites, mon_elidable, mon_total) = {
        let mut os = kaffeos::KaffeOs::new(platform.config());
        os.register_image("devirt", DEVIRT_SOURCE)
            .unwrap_or_else(|e| panic!("devirt guest does not compile: {e}"));
        os.spawn("devirt", &n.to_string(), None).expect("guest spawns");
        let analysis = os.analysis();
        let (mono, poly) = analysis.devirt_counts();
        let (me, mt) = analysis.monitor_counts();
        println!("{}", analysis.verdict_summary());
        (mono, poly, me, mt)
    };
    let virtual_sites = mono_sites + poly_sites;
    assert!(mono_sites > 0, "no monomorphic virtual sites found");
    assert!(mon_elidable > 0, "no elidable monitor ops found");

    rule(74);
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>9} {:>9} {:>8}",
        "config", "ops", "wall s", "Mops/s", "devirt", "elided", "virt s"
    );
    rule(74);

    let mut base: Option<(u64, f64, i64)> = None;
    let mut wall_on = f64::INFINITY;
    let mut wall_off = f64::INFINITY;
    let mut dyn_counters = (0u64, 0u64);
    for rep in 0..reps * 2 {
        let analysis_on = rep % 2 == 0;
        let (ops, virt, checksum, wall, counters) = run_once(&platform, n, analysis_on);
        match &mut base {
            None => base = Some((ops, virt, checksum)),
            Some((b_ops, b_virt, b_sum)) => {
                // The contract this bench exists to check: virtual numbers
                // are identical across reps and configurations.
                assert_eq!(*b_ops, ops, "ops moved (analysis={analysis_on})");
                assert_eq!(*b_virt, virt, "virtual time moved (analysis={analysis_on})");
                assert_eq!(*b_sum, checksum, "checksum moved (analysis={analysis_on})");
            }
        }
        if analysis_on {
            wall_on = wall_on.min(wall);
            assert!(counters.0 > 0, "analysis on but no devirtualized calls");
            assert!(counters.1 > 0, "analysis on but no monitors elided");
            dyn_counters = counters;
        } else {
            wall_off = wall_off.min(wall);
            assert_eq!(counters, (0, 0), "analysis off but counters moved");
        }
    }
    let (ops, virt, checksum) = base.expect("reps >= 1");
    let mops_on = ops as f64 / wall_on.max(1e-9) / 1e6;
    let mops_off = ops as f64 / wall_off.max(1e-9) / 1e6;
    for (label, wall, mops, counters) in [
        ("on", wall_on, mops_on, dyn_counters),
        ("off", wall_off, mops_off, (0, 0)),
    ] {
        println!(
            "{:<10} {:>12} {} {} {:>9} {:>9} {}",
            label,
            ops,
            cell(wall, 10, 3),
            cell(mops, 10, 2),
            counters.0,
            counters.1,
            cell(virt, 8, 3),
        );
    }
    rule(74);
    let ratio = mono_sites as f64 / (virtual_sites as f64).max(1.0);
    println!(
        "{mono_sites}/{virtual_sites} virtual sites monomorphic ({:.0}%); \
         {mon_elidable}/{mon_total} monitor ops elidable; {} devirtualized calls and \
         {} elided monitor ops at runtime; virtual numbers identical across all {} runs",
        ratio * 100.0,
        dyn_counters.0,
        dyn_counters.1,
        reps * 2
    );

    // --- machine-readable report -----------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"devirt_throughput\",");
    let _ = writeln!(json, "  \"platform\": \"{}\",", platform.name);
    let _ = writeln!(json, "  \"mode\": \"{}\",", if quick { "quick" } else { "full" });
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(
        json,
        "  \"benchmarks\": [{{\"name\": \"devirt\", \"n\": {n}, \"ops\": {ops}, \
         \"virtual_seconds\": {virt:.6}, \"checksum\": {checksum}}}],"
    );
    let _ = writeln!(
        json,
        "  \"total\": {{\"virtual_sites\": {virtual_sites}, \
         \"monomorphic_sites\": {mono_sites}, \"monomorphic_ratio\": {}, \
         \"monitor_ops\": {mon_total}, \"monitor_ops_elidable\": {mon_elidable}, \
         \"devirt_calls\": {}, \"monitors_elided\": {}, \
         \"wall_on_seconds\": {}, \"wall_off_seconds\": {}, \
         \"mops_analysis_on\": {}, \"mops_analysis_off\": {}}},",
        json_f(ratio),
        dyn_counters.0,
        dyn_counters.1,
        json_f(wall_on),
        json_f(wall_off),
        json_f(mops_on),
        json_f(mops_off),
    );
    json.push_str("  \"virtual_identical\": true\n");
    json.push_str("}\n");
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("report -> {out_path}");
}
