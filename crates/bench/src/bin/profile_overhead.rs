//! Profiled vs unprofiled overhead: the virtual-time sampler costs some
//! wall-clock time, but may not move a single *virtual* number — same
//! clock, same checksum, bit-identical virtual seconds. This harness
//! measures the wall-time price and asserts the virtual contract.
//!
//! Usage: `cargo run --release -p kaffeos-bench --bin profile_overhead [--quick]`

use std::time::Instant;

use kaffeos::{ExitStatus, KaffeOs, KaffeOsConfig};
use kaffeos_bench::{quick_mode, rule};
use kaffeos_workloads::{platforms, spec};

fn run(bench: &spec::SpecBenchmark, n: i64, profile: bool) -> (f64, u64, u64, i64, usize) {
    let reference = platforms()[5]; // KaffeOS, No Heap Pointer
    let mut os = KaffeOs::new(KaffeOsConfig {
        profile,
        ..reference.config()
    });
    os.register_image(bench.name, bench.source).unwrap();
    let pid = os.spawn(bench.name, &n.to_string(), None).unwrap();
    let start = Instant::now();
    let report = os.run(None);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let checksum = match os.status(pid) {
        Some(ExitStatus::Exited(v)) => v,
        other => panic!("{} ended with {other:?}", bench.name),
    };
    let samples = os.profile_folded().lines().count();
    (
        wall_ms,
        report.virtual_seconds.to_bits(),
        os.clock(),
        checksum,
        samples,
    )
}

fn main() {
    let quick = quick_mode();
    println!("Profiler overhead: wall-clock cost of virtual-time sampling");
    println!(
        "{:<12}{:>12}{:>12}{:>10}{:>10}   (virtual numbers asserted identical)",
        "benchmark", "off ms", "on ms", "overhead", "stacks"
    );
    rule(58);
    for name in ["compress", "db"] {
        let bench = spec::by_name(name).expect("known benchmark");
        let n = if quick { bench.test_n } else { bench.default_n };
        let (off_ms, vs_off, clock_off, sum_off, stacks_off) = run(&bench, n, false);
        let (on_ms, vs_on, clock_on, sum_on, stacks_on) = run(&bench, n, true);
        assert_eq!(vs_off, vs_on, "{name}: virtual seconds moved");
        assert_eq!(clock_off, clock_on, "{name}: virtual clock moved");
        assert_eq!(sum_off, sum_on, "{name}: checksum moved");
        assert_eq!(stacks_off, 0, "{name}: disabled profiler sampled");
        assert!(stacks_on > 0, "{name}: enabled profiler sampled nothing");
        let overhead = 100.0 * (on_ms - off_ms) / off_ms;
        println!(
            "{:<12}{:>11.1} {:>11.1} {:>8.1}%{:>10}",
            name, off_ms, on_ms, overhead, stacks_on
        );
    }
    println!();
    println!(
        "the virtual clock, checksums and Figure 3 seconds are identical \
         with the profiler on and off; only wall-clock time is spent."
    );
}
