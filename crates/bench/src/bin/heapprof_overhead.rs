//! Heap-observability overhead: the allocation-site profiler, survival
//! tracker and GC/page timeline cost wall-clock time, but must not move a
//! single *virtual* number — same clock, same checksum, bit-identical
//! virtual seconds. This harness measures the wall-time price, asserts the
//! virtual contract, and writes a machine-readable `BENCH_heapprof.json`.
//!
//! Usage: `cargo run --release -p kaffeos-bench --bin heapprof_overhead \
//!         [--quick] [--out <path>]`

use std::fmt::Write as _;
use std::time::Instant;

use kaffeos::{ExitStatus, KaffeOs, KaffeOsConfig};
use kaffeos_bench::{quick_mode, rule};
use kaffeos_workloads::{platforms, spec};

struct RunOut {
    wall_ms: f64,
    virtual_bits: u64,
    clock: u64,
    checksum: i64,
    folded_lines: usize,
    timeline_events: usize,
}

fn run(bench: &spec::SpecBenchmark, n: i64, heapprof: bool) -> RunOut {
    let reference = platforms()[5]; // KaffeOS, No Heap Pointer
    let mut os = KaffeOs::new(KaffeOsConfig {
        heapprof,
        ..reference.config()
    });
    os.register_image(bench.name, bench.source).unwrap();
    let pid = os.spawn(bench.name, &n.to_string(), None).unwrap();
    let start = Instant::now();
    let report = os.run(None);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let checksum = match os.status(pid) {
        Some(ExitStatus::Exited(v)) => v,
        other => panic!("{} ended with {other:?}", bench.name),
    };
    RunOut {
        wall_ms,
        virtual_bits: report.virtual_seconds.to_bits(),
        clock: os.clock(),
        checksum,
        folded_lines: os.heapprof_folded_bytes().lines().count(),
        timeline_events: os.space().heapprof().timeline_len(),
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let quick = quick_mode();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_heapprof.json".to_string());

    println!("Heap observability overhead: wall-clock cost of the heapprof plane");
    println!(
        "{:<12}{:>12}{:>12}{:>10}{:>9}{:>10}   (virtual numbers asserted identical)",
        "benchmark", "off ms", "on ms", "overhead", "sites", "events"
    );
    rule(72);

    let mut rows = Vec::new();
    for name in ["compress", "db"] {
        let bench = spec::by_name(name).expect("known benchmark");
        let n = if quick { bench.test_n } else { bench.default_n };
        let off = run(&bench, n, false);
        let on = run(&bench, n, true);
        // The observability contract: the plane is host-plane only. Every
        // virtual quantity must be bit-identical with it on and off.
        assert_eq!(off.virtual_bits, on.virtual_bits, "{name}: virtual seconds moved");
        assert_eq!(off.clock, on.clock, "{name}: virtual clock moved");
        assert_eq!(off.checksum, on.checksum, "{name}: checksum moved");
        assert_eq!(off.folded_lines, 0, "{name}: disabled plane recorded sites");
        assert_eq!(off.timeline_events, 0, "{name}: disabled plane recorded events");
        assert!(on.folded_lines > 0, "{name}: enabled plane recorded nothing");
        assert!(on.timeline_events > 0, "{name}: enabled plane has no timeline");
        let overhead = 100.0 * (on.wall_ms - off.wall_ms) / off.wall_ms;
        println!(
            "{:<12}{:>11.1} {:>11.1} {:>8.1}%{:>9}{:>10}",
            name, off.wall_ms, on.wall_ms, overhead, on.folded_lines, on.timeline_events
        );
        rows.push((name, n, off, on, overhead));
    }
    rule(72);
    println!(
        "the virtual clock, checksums and Figure 3 seconds are identical with \
         the heap observability plane on and off; only wall-clock time is spent."
    );

    // --- machine-readable report -----------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"heapprof_overhead\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    json.push_str("  \"benchmarks\": [\n");
    for (i, (name, n, off, on, overhead)) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"n\": {}, \"off_wall_ms\": {}, \"on_wall_ms\": {}, \
             \"overhead_pct\": {}, \"sites\": {}, \"timeline_events\": {}, \
             \"virtual_identical\": true, \"checksum\": {}}}{}",
            name,
            n,
            json_f(off.wall_ms),
            json_f(on.wall_ms),
            json_f(*overhead),
            on.folded_lines,
            on.timeline_events,
            on.checksum,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let mean = rows.iter().map(|r| r.4).sum::<f64>() / rows.len().max(1) as f64;
    let _ = writeln!(
        json,
        "  \"overhead\": {{\"mean_pct\": {}, \"virtual_identical\": true}}",
        json_f(mean)
    );
    json.push_str("}\n");
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("report -> {out_path}");
}
