//! Figure 4: servlet scaling under denial of service.
//!
//! Six series over the number of servlets: IBM/1, IBM/n, KaffeOS, each
//! with and without a MemHog. The y value is the (virtual) time for the
//! non-MemHog servlets to correctly respond to 1000 client requests —
//! note the log scale in the paper.
//!
//! Usage: `cargo run --release -p kaffeos-bench --bin fig4 [--quick]`

use kaffeos_bench::{quick_mode, rule};
use kaffeos_workloads::{run_servlet_experiment, Deployment, ServletParams};

fn main() {
    let quick = quick_mode();
    let sweep: Vec<usize> = if quick {
        vec![2, 4, 8]
    } else {
        vec![2, 5, 10, 20, 30, 40, 60, 80]
    };
    let requests = if quick { 120 } else { 1000 };

    let series: [(&str, Deployment, bool); 6] = [
        ("IBM/1", Deployment::VmPerServlet, false),
        ("IBM/n", Deployment::MonolithicShared, false),
        ("KaffeOS", Deployment::KaffeOsProcs, false),
        ("IBM/1,MemHog", Deployment::VmPerServlet, true),
        ("IBM/n,MemHog", Deployment::MonolithicShared, true),
        ("KaffeOS,MemHog", Deployment::KaffeOsProcs, true),
    ];

    println!("Figure 4: time for good servlets to answer {requests} requests");
    println!("(virtual seconds; the paper plots this on a log scale)");
    print!("{:<16}", "series");
    for &n in &sweep {
        print!("{n:>10}");
    }
    println!();
    rule(16 + 10 * sweep.len());

    for (name, deployment, with_memhog) in series {
        print!("{name:<16}");
        for &servlets in &sweep {
            let mut params = ServletParams::figure4(deployment, servlets, with_memhog);
            params.total_requests = requests;
            let outcome = run_servlet_experiment(params);
            assert_eq!(
                outcome.requests_served, requests,
                "{name} at {servlets} servlets only served {}",
                outcome.requests_served
            );
            print!("{:>10.2}", outcome.virtual_seconds);
        }
        println!();
    }

    println!();
    println!("shapes to check against the paper:");
    println!("  - KaffeOS: consistent with or without MemHog (slight growth)");
    println!("  - IBM/n: best when clean; ~100x worse under MemHog, improving");
    println!("    as the good:bad servlet ratio grows");
    println!("  - IBM/1: flat until ~25 VMs, then thrashes (256MB / ~10MB per JVM)");
}
