//! Host interpreter throughput on the standard workload mix.
//!
//! Runs the seven SPEC-analogue benchmarks on the default KaffeOS platform
//! (heap-pointer barrier) and reports **host** ops/sec and ns/op — the one
//! set of numbers in this repo that is allowed to change between commits.
//! Every *virtual* number printed alongside (virtual seconds, checksums)
//! must stay bit-identical; the golden-trace suite enforces that.
//!
//! ```text
//! cargo run --release -p kaffeos-bench --bin interp_throughput
//!     [--quick]            # smoke iteration counts
//!     [--reps <k>]         # wall-clock reps per benchmark (default 3)
//!     [--out <path>]       # default: BENCH_interp.json
//!     [--baseline <path>]  # embed a prior run's totals for the speedup
//! ```
//!
//! Each benchmark runs `reps` times and reports the **minimum** wall time:
//! on a shared host the minimum is the best estimate of the binary's true
//! cost (noise from other tenants only ever adds time). The virtual
//! numbers are asserted identical across reps — determinism checked for
//! free on every bench run.
//!
//! Writes a machine-readable `BENCH_interp.json` at the repo root so later
//! PRs have a perf trajectory to beat (see EXPERIMENTS.md for the format).

use std::fmt::Write as _;
use std::time::Instant;

use kaffeos_bench::{cell, quick_mode, rule};
use kaffeos_workloads::runner::{platforms, Platform, PlatformKind};
use kaffeos_workloads::spec;

struct BenchRow {
    name: &'static str,
    n: i64,
    ops: u64,
    wall_seconds: f64,
    virtual_seconds: f64,
    checksum: i64,
}

impl BenchRow {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.wall_seconds.max(1e-9)
    }
    fn ns_per_op(&self) -> f64 {
        self.wall_seconds * 1e9 / (self.ops as f64).max(1.0)
    }
}

fn kaffeos_platform() -> Platform {
    platforms()
        .into_iter()
        .find(|p| matches!(p.kind, PlatformKind::KaffeOs(kaffeos::BarrierKind::HeapPointer)))
        .expect("heap-pointer platform exists")
}

fn arg_after(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Pulls `"ops_per_sec": <number>` out of the `"total"` object of a prior
/// report. Hand-rolled on purpose: no JSON dependency in this workspace.
fn baseline_ops_per_sec(body: &str) -> Option<f64> {
    let total = body.find("\"total\"")?;
    let tail = &body[total..];
    let key = tail.find("\"ops_per_sec\":")?;
    let num = tail[key + "\"ops_per_sec\":".len()..].trim_start();
    let end = num
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(num.len());
    num[..end].parse().ok()
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let quick = quick_mode();
    let reps: u32 = arg_after("--reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_interp.json".to_string());
    let baseline = arg_after("--baseline")
        .and_then(|p| std::fs::read_to_string(&p).ok())
        .and_then(|body| baseline_ops_per_sec(&body));

    let platform = kaffeos_platform();
    println!(
        "interp_throughput on {:?} ({}, best of {reps})",
        platform.name,
        if quick { "quick" } else { "full" }
    );
    rule(78);
    println!(
        "{:<12} {:>4} {:>12} {:>9} {:>12} {:>10} {:>10}",
        "benchmark", "n", "ops", "wall s", "Mops/s", "ns/op", "virt s"
    );
    rule(78);

    let mut rows = Vec::new();
    for bench in spec::all_benchmarks() {
        let n = if quick { bench.test_n } else { bench.default_n };
        // Best-of-reps: virtual results must be identical every time (the
        // simulator is deterministic); wall time takes the minimum, since
        // host noise is strictly additive.
        let mut row: Option<BenchRow> = None;
        for _ in 0..reps {
            let mut os = kaffeos::KaffeOs::new(platform.config());
            os.register_image(bench.name, bench.source)
                .unwrap_or_else(|e| panic!("{} does not compile: {e}", bench.name));
            let started = Instant::now();
            let pid = os
                .spawn(bench.name, &n.to_string(), None)
                .expect("benchmark spawns");
            let report = os.run(None);
            let wall = started.elapsed().as_secs_f64();
            let checksum = match os.status(pid) {
                Some(kaffeos::ExitStatus::Exited(v)) => v,
                other => panic!("{} ended with {other:?}", bench.name),
            };
            match &mut row {
                None => {
                    row = Some(BenchRow {
                        name: bench.name,
                        n,
                        ops: os.ops_executed(),
                        wall_seconds: wall,
                        virtual_seconds: report.virtual_seconds,
                        checksum,
                    });
                }
                Some(r) => {
                    assert_eq!(r.ops, os.ops_executed(), "{}: ops drifted", bench.name);
                    assert_eq!(
                        r.virtual_seconds, report.virtual_seconds,
                        "{}: virtual time drifted",
                        bench.name
                    );
                    assert_eq!(r.checksum, checksum, "{}: checksum drifted", bench.name);
                    r.wall_seconds = r.wall_seconds.min(wall);
                }
            }
        }
        let row = row.expect("reps >= 1");
        println!(
            "{:<12} {:>4} {:>12} {} {} {} {}",
            row.name,
            row.n,
            row.ops,
            cell(row.wall_seconds, 9, 3),
            cell(row.ops_per_sec() / 1e6, 12, 2),
            cell(row.ns_per_op(), 10, 1),
            cell(row.virtual_seconds, 10, 3),
        );
        rows.push(row);
    }
    rule(78);

    let total_ops: u64 = rows.iter().map(|r| r.ops).sum();
    let total_wall: f64 = rows.iter().map(|r| r.wall_seconds).sum();
    let total_ops_per_sec = total_ops as f64 / total_wall.max(1e-9);
    let total_ns_per_op = total_wall * 1e9 / (total_ops as f64).max(1.0);
    println!(
        "{:<12} {:>4} {:>12} {} {} {}",
        "TOTAL",
        "",
        total_ops,
        cell(total_wall, 9, 3),
        cell(total_ops_per_sec / 1e6, 12, 2),
        cell(total_ns_per_op, 10, 1),
    );
    if let Some(base) = baseline {
        println!(
            "baseline: {} Mops/s -> speedup {}x",
            cell(base / 1e6, 0, 2),
            cell(total_ops_per_sec / base.max(1e-9), 0, 2)
        );
    }

    // --- machine-readable report -----------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"interp_throughput\",");
    let _ = writeln!(json, "  \"platform\": \"{}\",", platform.name);
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"reps\": {reps},");
    json.push_str("  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"n\": {}, \"ops\": {}, \"wall_seconds\": {}, \
             \"ops_per_sec\": {}, \"ns_per_op\": {}, \"virtual_seconds\": {:.6}, \
             \"checksum\": {}}}{}",
            r.name,
            r.n,
            r.ops,
            json_f(r.wall_seconds),
            json_f(r.ops_per_sec()),
            json_f(r.ns_per_op()),
            r.virtual_seconds,
            r.checksum,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"total\": {{\"ops\": {}, \"wall_seconds\": {}, \"ops_per_sec\": {}, \
         \"ns_per_op\": {}}},",
        total_ops,
        json_f(total_wall),
        json_f(total_ops_per_sec),
        json_f(total_ns_per_op)
    );
    match baseline {
        Some(base) => {
            let _ = writeln!(
                json,
                "  \"baseline\": {{\"ops_per_sec\": {}}},",
                json_f(base)
            );
            let _ = writeln!(
                json,
                "  \"speedup_vs_baseline\": {}",
                json_f(total_ops_per_sec / base.max(1e-9))
            );
        }
        None => {
            json.push_str("  \"baseline\": null,\n");
            json.push_str("  \"speedup_vs_baseline\": null\n");
        }
    }
    json.push_str("}\n");
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("report -> {out_path}");
}
