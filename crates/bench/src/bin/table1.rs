//! Table 1: write barriers executed per benchmark.
//!
//! The paper counts barriers under the default (No Heap Pointer, 41-cycle)
//! implementation, computes their direct CPU cost, and reports it as a
//! fraction of the No-Write-Barrier execution time — concluding that the
//! direct cost is under 3% and the rest of the ~11% barrier penalty is
//! secondary (cache) effects.
//!
//! Usage: `cargo run --release -p kaffeos-bench --bin table1 [--quick]`

use kaffeos_bench::{quick_mode, rule};
use kaffeos_heap::costs;
use kaffeos_workloads::{all_benchmarks, platforms, run_spec};

fn main() {
    let quick = quick_mode();
    let plats = platforms();
    let no_barrier = plats[3]; // KaffeOS, No Write Barrier
    let no_heap_ptr = plats[5]; // KaffeOS, No Heap Pointer

    println!("Table 1: write barriers executed per benchmark");
    println!(
        "{:<12}{:>12}{:>12}{:>10}   (time = count x {} cycles @500MHz;",
        "benchmark",
        "barriers",
        "time",
        "percent",
        costs::BARRIER_NO_HEAP_POINTER
    );
    println!(
        "{:<12}{:>12}{:>12}{:>10}    percent of No-Write-Barrier time)",
        "", "", "", ""
    );
    rule(46);

    for bench in all_benchmarks() {
        let n = if quick { bench.test_n } else { bench.default_n };
        let with = run_spec(&bench, &no_heap_ptr, n);
        let without = run_spec(&bench, &no_barrier, n);
        assert_eq!(with.checksum, without.checksum, "{} diverged", bench.name);
        let barrier_seconds =
            costs::cycles_to_seconds(with.barriers_executed * costs::BARRIER_NO_HEAP_POINTER);
        let percent = 100.0 * barrier_seconds / without.virtual_seconds;
        println!(
            "{:<12}{:>11.3}M{:>11.3}s{:>9.2}%",
            bench.name,
            with.barriers_executed as f64 / 1e6,
            barrier_seconds,
            percent
        );
    }
    println!();
    println!(
        "paper's observation to check: db executes the most barriers \
         (33.0M, 2.26%), compress almost none (0.017M, 0.00%); direct \
         barrier cost stays in single-digit percent everywhere."
    );
}
