//! JIT-tier throughput and the ShareJIT shared-cache ablation.
//!
//! Part one runs the seven SPEC-analogue benchmarks twice per rep —
//! template tier enabled and disabled — on the default KaffeOS platform
//! (heap-pointer barrier) and reports **host** ops/sec for both tiers plus
//! the speedup over the recorded PR 4 interpreter baseline
//! (`BENCH_interp.json`). The on/off runs are interleaved so host noise
//! hits both tiers alike. Every *virtual* number (ops, virtual seconds,
//! checksums) is asserted identical across reps **and** across the two
//! tiers: the tier must be invisible to the cycle model.
//!
//! Part two is the shared-cache ablation the ShareJIT argument rests on:
//! one process cold vs. warm (compile-time amortization), then N processes
//! of the same image in one kernel, machine-checking that every hot method
//! is compiled **exactly once** and the other N−1 processes reuse the
//! shared body.
//!
//! ```text
//! cargo run --release -p kaffeos-bench --bin jit_throughput
//!     [--quick]            # smoke iteration counts
//!     [--reps <k>]         # wall-clock reps per benchmark (default 3)
//!     [--out <path>]       # default: BENCH_jit.json
//!     [--baseline <path>]  # default: BENCH_interp.json
//! ```
//!
//! Writes a machine-readable `BENCH_jit.json` at the repo root (see
//! EXPERIMENTS.md for the format).

use std::fmt::Write as _;
use std::time::Instant;

use kaffeos_bench::{cell, quick_mode, rule};
use kaffeos_workloads::runner::{platforms, Platform, PlatformKind};
use kaffeos_workloads::spec;

struct BenchRow {
    name: &'static str,
    n: i64,
    ops: u64,
    wall_on: f64,
    wall_off: f64,
    virtual_seconds: f64,
    checksum: i64,
    compiles: u64,
    reuse: u64,
}

impl BenchRow {
    fn ops_per_sec_on(&self) -> f64 {
        self.ops as f64 / self.wall_on.max(1e-9)
    }
    fn ops_per_sec_off(&self) -> f64 {
        self.ops as f64 / self.wall_off.max(1e-9)
    }
}

/// One deterministic run of `bench` with the tier switched by `jit`.
/// Returns (wall, ops, virtual_seconds, checksum, compiles, reuse).
fn run_once(
    platform: &Platform,
    bench: &spec::SpecBenchmark,
    n: i64,
    jit: bool,
) -> (f64, u64, f64, i64, u64, u64) {
    let mut config = platform.config();
    config.jit.enabled = jit;
    let mut os = kaffeos::KaffeOs::new(config);
    os.register_image(bench.name, bench.source)
        .unwrap_or_else(|e| panic!("{} does not compile: {e}", bench.name));
    let started = Instant::now();
    let pid = os
        .spawn(bench.name, &n.to_string(), None)
        .expect("benchmark spawns");
    let report = os.run(None);
    let wall = started.elapsed().as_secs_f64();
    let checksum = match os.status(pid) {
        Some(kaffeos::ExitStatus::Exited(v)) => v,
        other => panic!("{} ended with {other:?}", bench.name),
    };
    let stats = os.jit_stats(pid).unwrap_or_default();
    (
        wall,
        os.ops_executed(),
        report.virtual_seconds,
        checksum,
        stats.compiled,
        stats.reuse,
    )
}

fn kaffeos_platform() -> Platform {
    platforms()
        .into_iter()
        .find(|p| matches!(p.kind, PlatformKind::KaffeOs(kaffeos::BarrierKind::HeapPointer)))
        .expect("heap-pointer platform exists")
}

fn arg_after(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Pulls `"ops_per_sec": <number>` out of the `"total"` object of a prior
/// report. Hand-rolled on purpose: no JSON dependency in this workspace.
fn baseline_ops_per_sec(body: &str) -> Option<f64> {
    let total = body.find("\"total\"")?;
    let tail = &body[total..];
    let key = tail.find("\"ops_per_sec\":")?;
    let num = tail[key + "\"ops_per_sec\":".len()..].trim_start();
    let end = num
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(num.len());
    num[..end].parse().ok()
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// The shared-cache ablation on one benchmark: cold compile, warm repeat,
/// then `n_procs` processes sharing one cache.
struct Ablation {
    bench: &'static str,
    n_procs: usize,
    hot_methods: u64,
    cold_wall: f64,
    cold_compile_nanos: u64,
    warm_wall: f64,
    warm_added_compiles: u64,
    shared_wall: f64,
    shared_compiles: u64,
    reuse_total: u64,
    expected_reuse: u64,
    per_process: Vec<(u64, u64)>,
    exactly_once: bool,
}

fn ablation(platform: &Platform, quick: bool) -> Ablation {
    let bench = spec::all_benchmarks()
        .into_iter()
        .find(|b| b.name == "jess")
        .expect("jess exists");
    let n = if quick { bench.test_n } else { bench.default_n };
    let n_procs = 8usize;

    // Cold: one process, empty cache — pays every compilation.
    let mut os = kaffeos::KaffeOs::new(platform.config());
    os.register_image(bench.name, bench.source).unwrap();
    let started = Instant::now();
    os.spawn(bench.name, &n.to_string(), None).unwrap();
    os.run(None);
    let cold_wall = started.elapsed().as_secs_f64();
    let cold = os.jit_cache_stats();
    let hot_methods = cold.compiles;

    // Warm: same kernel, same image again — the cache already holds every
    // body (entries are kept at refcount zero), so zero new compiles.
    let started = Instant::now();
    os.spawn(bench.name, &n.to_string(), None).unwrap();
    os.run(None);
    let warm_wall = started.elapsed().as_secs_f64();
    let warm_added_compiles = os.jit_cache_stats().compiles - hot_methods;

    // Shared: N processes of the same image in one fresh kernel. The
    // ShareJIT claim: every hot method is compiled exactly once, by
    // whichever process got there first; the rest attach the shared body.
    let mut os = kaffeos::KaffeOs::new(platform.config());
    os.register_image(bench.name, bench.source).unwrap();
    let started = Instant::now();
    let pids: Vec<_> = (0..n_procs)
        .map(|_| os.spawn(bench.name, &n.to_string(), None).unwrap())
        .collect();
    os.run(None);
    let shared_wall = started.elapsed().as_secs_f64();
    let shared = os.jit_cache_stats();
    let per_process: Vec<(u64, u64)> = pids
        .iter()
        .map(|&pid| {
            let s = os.jit_stats(pid).unwrap_or_default();
            (s.compiled, s.reuse)
        })
        .collect();
    let compiled_sum: u64 = per_process.iter().map(|p| p.0).sum();
    let reuse_total: u64 = per_process.iter().map(|p| p.1).sum();
    let expected_reuse = (n_procs as u64 - 1) * hot_methods;
    let exactly_once = shared.compiles == hot_methods
        && compiled_sum == hot_methods
        && reuse_total == expected_reuse;

    Ablation {
        bench: bench.name,
        n_procs,
        hot_methods,
        cold_wall,
        cold_compile_nanos: cold.compile_nanos,
        warm_wall,
        warm_added_compiles,
        shared_wall,
        shared_compiles: shared.compiles,
        reuse_total,
        expected_reuse,
        per_process,
        exactly_once,
    }
}

fn main() {
    let quick = quick_mode();
    let reps: u32 = arg_after("--reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_jit.json".to_string());
    let baseline_path = arg_after("--baseline").unwrap_or_else(|| "BENCH_interp.json".to_string());
    let baseline = std::fs::read_to_string(&baseline_path)
        .ok()
        .and_then(|body| baseline_ops_per_sec(&body));

    let platform = kaffeos_platform();
    let threshold = kaffeos_vm::JitConfig::default().threshold;
    println!(
        "jit_throughput on {:?} ({}, best of {reps}, threshold {threshold})",
        platform.name,
        if quick { "quick" } else { "full" }
    );
    rule(78);
    println!(
        "{:<12} {:>4} {:>12} {:>10} {:>10} {:>9} {:>8} {:>7}",
        "benchmark", "n", "ops", "jit Mops", "int Mops", "speedup", "compile", "virt s"
    );
    rule(78);

    let mut rows = Vec::new();
    for bench in spec::all_benchmarks() {
        let n = if quick { bench.test_n } else { bench.default_n };
        // Interleave on/off reps and keep the minimum wall of each: host
        // noise is strictly additive and hits both tiers alike this way.
        // Virtual results must match across every run, on or off.
        let mut row: Option<BenchRow> = None;
        for _ in 0..reps {
            let (w_on, ops, virt, sum, compiles, reuse) = run_once(&platform, &bench, n, true);
            let (w_off, ops2, virt2, sum2, _, _) = run_once(&platform, &bench, n, false);
            assert_eq!(ops, ops2, "{}: ops differ across tiers", bench.name);
            assert_eq!(virt, virt2, "{}: virtual time differs across tiers", bench.name);
            assert_eq!(sum, sum2, "{}: checksum differs across tiers", bench.name);
            match &mut row {
                None => {
                    row = Some(BenchRow {
                        name: bench.name,
                        n,
                        ops,
                        wall_on: w_on,
                        wall_off: w_off,
                        virtual_seconds: virt,
                        checksum: sum,
                        compiles,
                        reuse,
                    });
                }
                Some(r) => {
                    assert_eq!(r.ops, ops, "{}: ops drifted", bench.name);
                    assert_eq!(r.virtual_seconds, virt, "{}: virtual time drifted", bench.name);
                    assert_eq!(r.checksum, sum, "{}: checksum drifted", bench.name);
                    r.wall_on = r.wall_on.min(w_on);
                    r.wall_off = r.wall_off.min(w_off);
                }
            }
        }
        let row = row.expect("reps >= 1");
        println!(
            "{:<12} {:>4} {:>12} {} {} {} {:>8} {}",
            row.name,
            row.n,
            row.ops,
            cell(row.ops_per_sec_on() / 1e6, 10, 2),
            cell(row.ops_per_sec_off() / 1e6, 10, 2),
            cell(row.ops_per_sec_on() / row.ops_per_sec_off().max(1e-9), 9, 2),
            row.compiles,
            cell(row.virtual_seconds, 7, 3),
        );
        rows.push(row);
    }
    rule(78);

    let total_ops: u64 = rows.iter().map(|r| r.ops).sum();
    let total_on: f64 = rows.iter().map(|r| r.wall_on).sum();
    let total_off: f64 = rows.iter().map(|r| r.wall_off).sum();
    let on_ops_per_sec = total_ops as f64 / total_on.max(1e-9);
    let off_ops_per_sec = total_ops as f64 / total_off.max(1e-9);
    println!(
        "{:<12} {:>4} {:>12} {} {} {}",
        "TOTAL",
        "",
        total_ops,
        cell(on_ops_per_sec / 1e6, 10, 2),
        cell(off_ops_per_sec / 1e6, 10, 2),
        cell(on_ops_per_sec / off_ops_per_sec.max(1e-9), 9, 2),
    );
    if let Some(base) = baseline {
        println!(
            "recorded interpreter baseline: {} Mops/s -> speedup {}x",
            cell(base / 1e6, 0, 2),
            cell(on_ops_per_sec / base.max(1e-9), 0, 2)
        );
    }

    let ab = ablation(&platform, quick);
    println!(
        "ablation [{}]: {} hot methods; cold {}s, warm {}s (+{} compiles), \
         {} procs shared {}s: {} compiles, reuse {}/{} -> exactly_once={}",
        ab.bench,
        ab.hot_methods,
        cell(ab.cold_wall, 0, 3),
        cell(ab.warm_wall, 0, 3),
        ab.warm_added_compiles,
        ab.n_procs,
        cell(ab.shared_wall, 0, 3),
        ab.shared_compiles,
        ab.reuse_total,
        ab.expected_reuse,
        ab.exactly_once,
    );
    assert!(
        ab.exactly_once,
        "shared-cache ablation: expected every hot method compiled exactly once \
         ({} compiles for {} methods, reuse {}/{})",
        ab.shared_compiles, ab.hot_methods, ab.reuse_total, ab.expected_reuse
    );

    // --- machine-readable report -----------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"jit_throughput\",");
    let _ = writeln!(json, "  \"platform\": \"{}\",", platform.name);
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"jit_threshold\": {threshold},");
    // Asserted above: ops, virtual seconds and checksums matched across
    // every rep and across the on/off tiers, or we would have panicked.
    let _ = writeln!(json, "  \"virtual_identical\": true,");
    json.push_str("  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"n\": {}, \"ops\": {}, \"wall_seconds\": {}, \
             \"ops_per_sec\": {}, \"interp_wall_seconds\": {}, \"interp_ops_per_sec\": {}, \
             \"compiles\": {}, \"reuse\": {}, \"virtual_seconds\": {:.6}, \"checksum\": {}}}{}",
            r.name,
            r.n,
            r.ops,
            json_f(r.wall_on),
            json_f(r.ops_per_sec_on()),
            json_f(r.wall_off),
            json_f(r.ops_per_sec_off()),
            r.compiles,
            r.reuse,
            r.virtual_seconds,
            r.checksum,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"total\": {{\"ops\": {}, \"wall_seconds\": {}, \"ops_per_sec\": {}, \
         \"interp_wall_seconds\": {}, \"interp_ops_per_sec\": {}, \"speedup_vs_interp\": {}}},",
        total_ops,
        json_f(total_on),
        json_f(on_ops_per_sec),
        json_f(total_off),
        json_f(off_ops_per_sec),
        json_f(on_ops_per_sec / off_ops_per_sec.max(1e-9)),
    );
    let _ = writeln!(
        json,
        "  \"ablation\": {{\"bench\": \"{}\", \"n_processes\": {}, \"hot_methods\": {}, \
         \"cold\": {{\"wall_seconds\": {}, \"compiles\": {}, \"compile_nanos\": {}}}, \
         \"warm_repeat\": {{\"wall_seconds\": {}, \"added_compiles\": {}}}, \
         \"shared\": {{\"wall_seconds\": {}, \"compiles\": {}, \"reuse_total\": {}, \
         \"expected_reuse\": {}, \"per_process\": [{}], \"exactly_once\": {}}}}},",
        ab.bench,
        ab.n_procs,
        ab.hot_methods,
        json_f(ab.cold_wall),
        ab.hot_methods,
        ab.cold_compile_nanos,
        json_f(ab.warm_wall),
        ab.warm_added_compiles,
        json_f(ab.shared_wall),
        ab.shared_compiles,
        ab.reuse_total,
        ab.expected_reuse,
        ab.per_process
            .iter()
            .map(|(c, u)| format!("{{\"compiled\": {c}, \"reuse\": {u}}}"))
            .collect::<Vec<_>>()
            .join(", "),
        ab.exactly_once,
    );
    match baseline {
        Some(base) => {
            let _ = writeln!(
                json,
                "  \"baseline\": {{\"path\": \"{baseline_path}\", \"ops_per_sec\": {}}},",
                json_f(base)
            );
            let _ = writeln!(
                json,
                "  \"speedup_vs_baseline\": {}",
                json_f(on_ops_per_sec / base.max(1e-9))
            );
        }
        None => {
            json.push_str("  \"baseline\": null,\n");
            json.push_str("  \"speedup_vs_baseline\": null\n");
        }
    }
    json.push_str("}\n");
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("report -> {out_path}");
}
