//! §3.2: how many library classes can be shared between processes.
//!
//! The paper examined ~600 core-library classes and could safely share
//! about 430 (72%); the rest had to be reloaded because their statics are
//! part of their interface. Our guest library is far smaller, but applies
//! the same policy; this binary reports the split.
//!
//! Usage: `cargo run --release -p kaffeos-bench --bin class_sharing`

use kaffeos::{KaffeOs, KaffeOsConfig};

fn main() {
    let os = KaffeOs::new(KaffeOsConfig::default());
    let (shared, reloaded) = os.class_sharing_counts();
    let total = shared + reloaded;
    println!("class sharing policy (the paper's section 3.2):");
    println!("  shared classes:   {shared:>4}  (one copy, process-aware statics)");
    println!("  reloaded classes: {reloaded:>4}  (per-process copies: exported statics)");
    println!(
        "  shareable:        {:>4.0}%  (paper: 430/600 = 72% of the JDK 1.1 core)",
        100.0 * shared as f64 / total as f64
    );
    println!();
    println!("reloaded because their statics are interface-visible:");
    for name in kaffeos::stdlib::RELOADED_CLASSES {
        println!("  - {name}");
    }
}
