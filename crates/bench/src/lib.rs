//! Shared helpers for the figure/table harness binaries.
//!
//! Binaries (`cargo run --release -p kaffeos-bench --bin <name>`):
//!
//! * `fig3` — SPEC-analogue benchmarks on the seven platforms (Figure 3)
//! * `table1` — write barriers executed per benchmark (Table 1)
//! * `fig4` — servlet scaling under denial of service (Figure 4)
//! * `class_sharing` — shared vs reloaded library classes (§3.2)
//!
//! All numbers that matter are *virtual* (deterministic cycle model at the
//! paper's 500 MHz); wall-clock numbers are printed alongside for
//! reference. Pass `--quick` to any binary for a fast smoke run.

/// Formats a float with the given width/precision for plain-text tables.
pub fn cell(v: f64, width: usize, precision: usize) -> String {
    format!("{v:>width$.precision$}")
}

/// True if `--quick` was passed.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Prints a horizontal rule of the given width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}
