//! Tokeniser for Cup.

use crate::CompileError;

/// Token kinds. Punctuation is one variant each for cheap matching.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // literals & names
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (escapes resolved).
    Str(String),
    /// Identifier (a name that is not a keyword).
    Ident(String),
    // keywords
    /// `class`
    Class,
    /// `extends`
    Extends,
    /// `static`
    Static,
    /// `void`
    Void,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `new`
    New,
    /// `null`
    Null,
    /// `true`
    True,
    /// `false`
    False,
    /// `this`
    This,
    /// `throw`
    Throw,
    /// `try`
    Try,
    /// `catch`
    Catch,
    /// `sync`
    Sync,
    /// `as` (cast)
    As,
    /// `is` (instanceof)
    Is,
    // punctuation
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `!`
    Not,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// End of input.
    Eof,
}

/// A token with its source line (for diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

fn keyword(word: &str) -> Option<TokenKind> {
    Some(match word {
        "class" => TokenKind::Class,
        "extends" => TokenKind::Extends,
        "static" => TokenKind::Static,
        "void" => TokenKind::Void,
        "if" => TokenKind::If,
        "else" => TokenKind::Else,
        "while" => TokenKind::While,
        "for" => TokenKind::For,
        "return" => TokenKind::Return,
        "break" => TokenKind::Break,
        "continue" => TokenKind::Continue,
        "new" => TokenKind::New,
        "null" => TokenKind::Null,
        "true" => TokenKind::True,
        "false" => TokenKind::False,
        "this" => TokenKind::This,
        "throw" => TokenKind::Throw,
        "try" => TokenKind::Try,
        "catch" => TokenKind::Catch,
        "sync" => TokenKind::Sync,
        "as" => TokenKind::As,
        "is" => TokenKind::Is,
        _ => return None,
    })
}

/// Tokenises a source string. `//` line comments and `/* */` block
/// comments are skipped.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    macro_rules! push {
        ($kind:expr) => {
            tokens.push(Token { kind: $kind, line })
        };
    }

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                i += 2;
                while i + 1 < n && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= n {
                    return Err(CompileError {
                        line,
                        msg: "unterminated block comment".to_string(),
                    });
                }
                i += 2;
            }
            '0'..='9' => {
                let start = i;
                while i < n && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i + 1 < n && bytes[i] == '.' && bytes[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < n && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text: String = bytes[start..i].iter().collect();
                    let v = text.parse::<f64>().map_err(|_| CompileError {
                        line,
                        msg: format!("bad float literal {text}"),
                    })?;
                    push!(TokenKind::Float(v));
                } else {
                    let text: String = bytes[start..i].iter().collect();
                    let v = text.parse::<i64>().map_err(|_| CompileError {
                        line,
                        msg: format!("bad int literal {text}"),
                    })?;
                    push!(TokenKind::Int(v));
                }
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= n {
                        return Err(CompileError {
                            line,
                            msg: "unterminated string literal".to_string(),
                        });
                    }
                    match bytes[i] {
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\\' => {
                            i += 1;
                            let esc = bytes.get(i).copied().ok_or(CompileError {
                                line,
                                msg: "dangling escape".to_string(),
                            })?;
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                'r' => '\r',
                                '\\' => '\\',
                                '"' => '"',
                                '0' => '\0',
                                other => {
                                    return Err(CompileError {
                                        line,
                                        msg: format!("unknown escape \\{other}"),
                                    })
                                }
                            });
                            i += 1;
                        }
                        '\n' => {
                            return Err(CompileError {
                                line,
                                msg: "newline in string literal".to_string(),
                            })
                        }
                        other => {
                            s.push(other);
                            i += 1;
                        }
                    }
                }
                push!(TokenKind::Str(s));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                match keyword(&word) {
                    Some(kind) => push!(kind),
                    None => push!(TokenKind::Ident(word)),
                }
            }
            _ => {
                let (kind, advance) = match (c, bytes.get(i + 1).copied()) {
                    ('&', Some('&')) => (TokenKind::AndAnd, 2),
                    ('|', Some('|')) => (TokenKind::OrOr, 2),
                    ('=', Some('=')) => (TokenKind::EqEq, 2),
                    ('!', Some('=')) => (TokenKind::NotEq, 2),
                    ('<', Some('=')) => (TokenKind::Le, 2),
                    ('>', Some('=')) => (TokenKind::Ge, 2),
                    ('<', Some('<')) => (TokenKind::Shl, 2),
                    ('>', Some('>')) => (TokenKind::Shr, 2),
                    ('(', _) => (TokenKind::LParen, 1),
                    (')', _) => (TokenKind::RParen, 1),
                    ('{', _) => (TokenKind::LBrace, 1),
                    ('}', _) => (TokenKind::RBrace, 1),
                    ('[', _) => (TokenKind::LBracket, 1),
                    (']', _) => (TokenKind::RBracket, 1),
                    (';', _) => (TokenKind::Semi, 1),
                    (',', _) => (TokenKind::Comma, 1),
                    ('.', _) => (TokenKind::Dot, 1),
                    ('=', _) => (TokenKind::Assign, 1),
                    ('+', _) => (TokenKind::Plus, 1),
                    ('-', _) => (TokenKind::Minus, 1),
                    ('*', _) => (TokenKind::Star, 1),
                    ('/', _) => (TokenKind::Slash, 1),
                    ('%', _) => (TokenKind::Percent, 1),
                    ('<', _) => (TokenKind::Lt, 1),
                    ('>', _) => (TokenKind::Gt, 1),
                    ('!', _) => (TokenKind::Not, 1),
                    ('&', _) => (TokenKind::Amp, 1),
                    ('|', _) => (TokenKind::Pipe, 1),
                    ('^', _) => (TokenKind::Caret, 1),
                    (other, _) => {
                        return Err(CompileError {
                            line,
                            msg: format!("unexpected character {other:?}"),
                        })
                    }
                };
                push!(kind);
                i += advance;
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_mixed_tokens() {
        let toks = lex("class A { int x = 42; float f = 2.5; } // end").unwrap();
        let kinds: Vec<&TokenKind> = toks.iter().map(|t| &t.kind).collect();
        assert!(matches!(kinds[0], TokenKind::Class));
        assert!(matches!(kinds[1], TokenKind::Ident(s) if s == "A"));
        assert!(kinds.contains(&&TokenKind::Int(42)));
        assert!(kinds.contains(&&TokenKind::Float(2.5)));
        assert_eq!(kinds.last(), Some(&&TokenKind::Eof));
    }

    #[test]
    fn lexes_strings_with_escapes() {
        let toks = lex(r#""a\nb\"c""#).unwrap();
        assert_eq!(toks[0].kind, TokenKind::Str("a\nb\"c".to_string()));
    }

    #[test]
    fn tracks_lines() {
        let toks = lex("a\nb\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn two_char_operators() {
        let toks = lex("<= >= == != && || << >>").unwrap();
        let kinds: Vec<&TokenKind> = toks.iter().map(|t| &t.kind).collect();
        assert_eq!(
            kinds[..8],
            [
                &TokenKind::Le,
                &TokenKind::Ge,
                &TokenKind::EqEq,
                &TokenKind::NotEq,
                &TokenKind::AndAnd,
                &TokenKind::OrOr,
                &TokenKind::Shl,
                &TokenKind::Shr
            ]
        );
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn block_comments_skip_lines() {
        let toks = lex("/* a\nb\nc */ x").unwrap();
        assert!(matches!(&toks[0].kind, TokenKind::Ident(s) if s == "x"));
        assert_eq!(toks[0].line, 3);
    }
}
