//! Type checking and code generation for Cup.
//!
//! One pass per method over the AST, with a pre-pass that collects all
//! program class signatures. External classes (the guest standard library,
//! already loaded into a `ClassTable` namespace) are resolved through the
//! table, so Cup programs can extend and call library classes. The VM
//! verifier independently re-checks the emitted bytecode.

use std::collections::HashMap;

use kaffeos_vm::{ClassDef, ClassTable, Code, Const, Handler, Op, TypeDesc};

use crate::ast::*;
use crate::CompileError;

/// Receiver class names that compile to kernel intrinsics instead of
/// method calls: `Sys.print(s)` → intrinsic `"sys.print"`.
const INTRINSIC_NAMESPACES: &[&str] = &["Sys", "Proc", "Shm", "Net", "Mem", "Time"];

/// Compiles a parsed program into loadable class definitions.
pub fn compile_program(
    program: &[ClassDecl],
    table: &ClassTable,
    ns: u32,
) -> Result<Vec<ClassDef>, CompileError> {
    let env = Env::collect(program, table, ns)?;
    program.iter().map(|c| env.compile_class(c)).collect()
}

/// Expression type: a syntactic type or the bottom `null`.
#[derive(Debug, Clone, PartialEq)]
enum ETy {
    T(Ty),
    Null,
}

impl ETy {
    fn is_reference(&self) -> bool {
        matches!(
            self,
            ETy::Null | ETy::T(Ty::Str) | ETy::T(Ty::Class(_)) | ETy::T(Ty::Array(_))
        )
    }

    fn is_int_like(&self) -> bool {
        matches!(self, ETy::T(Ty::Int) | ETy::T(Ty::Bool))
    }
}

#[derive(Debug, Clone)]
struct MethodSig {
    params: Vec<Ty>,
    ret: Option<Ty>,
    is_static: bool,
}

#[derive(Debug, Clone)]
struct ClassInfo {
    extends: Option<String>,
    /// field name → (type, is_static)
    fields: HashMap<String, (Ty, bool)>,
    methods: HashMap<String, MethodSig>,
}

/// Compilation environment: program classes plus the external table.
struct Env<'a> {
    program: HashMap<String, ClassInfo>,
    table: &'a ClassTable,
    ns: u32,
}

fn desc_to_ty(d: &TypeDesc) -> Ty {
    match d {
        TypeDesc::Int => Ty::Int,
        TypeDesc::Float => Ty::Float,
        TypeDesc::Str => Ty::Str,
        TypeDesc::Class(n) => Ty::Class(n.clone()),
        TypeDesc::Array(e) => Ty::Array(Box::new(desc_to_ty(e))),
    }
}

fn ty_to_desc(t: &Ty) -> TypeDesc {
    match t {
        Ty::Int | Ty::Bool => TypeDesc::Int,
        Ty::Float => TypeDesc::Float,
        Ty::Str => TypeDesc::Str,
        Ty::Class(n) => TypeDesc::Class(n.clone()),
        Ty::Array(e) => TypeDesc::Array(Box::new(ty_to_desc(e))),
    }
}

impl<'a> Env<'a> {
    fn collect(
        program: &[ClassDecl],
        table: &'a ClassTable,
        ns: u32,
    ) -> Result<Self, CompileError> {
        let mut classes = HashMap::new();
        for c in program {
            if classes.contains_key(&c.name) {
                return Err(CompileError {
                    line: c.line,
                    msg: format!("duplicate class {}", c.name),
                });
            }
            let mut fields = HashMap::new();
            for f in &c.fields {
                if fields
                    .insert(f.name.clone(), (f.ty.clone(), f.is_static))
                    .is_some()
                {
                    return Err(CompileError {
                        line: f.line,
                        msg: format!("duplicate field {}.{}", c.name, f.name),
                    });
                }
            }
            let mut methods = HashMap::new();
            for m in &c.methods {
                if methods
                    .insert(
                        m.name.clone(),
                        MethodSig {
                            params: m.params.iter().map(|(_, t)| t.clone()).collect(),
                            ret: m.ret.clone(),
                            is_static: m.is_static,
                        },
                    )
                    .is_some()
                {
                    return Err(CompileError {
                        line: m.line,
                        msg: format!("duplicate method {}.{}", c.name, m.name),
                    });
                }
            }
            classes.insert(
                c.name.clone(),
                ClassInfo {
                    extends: Some(c.extends.clone().unwrap_or_else(|| "Object".to_string())),
                    fields,
                    methods,
                },
            );
        }
        let env = Env {
            program: classes,
            table,
            ns,
        };
        // Validate superclasses exist.
        for c in program {
            let parent = c.extends.clone().unwrap_or_else(|| "Object".to_string());
            if !env.class_exists(&parent) {
                return Err(CompileError {
                    line: c.line,
                    msg: format!("unknown superclass {parent}"),
                });
            }
        }
        Ok(env)
    }

    fn class_exists(&self, name: &str) -> bool {
        self.program.contains_key(name) || self.table.lookup(self.ns, name).is_some()
    }

    fn superclass(&self, name: &str) -> Option<String> {
        if let Some(info) = self.program.get(name) {
            return info.extends.clone();
        }
        let idx = self.table.lookup(self.ns, name)?;
        let sup = self.table.class(idx).super_idx?;
        Some(self.table.class(sup).name.clone())
    }

    /// Field lookup, walking up the hierarchy. Returns (type, is_static).
    fn field_of(&self, class: &str, field: &str) -> Option<(Ty, bool)> {
        let mut cursor = Some(class.to_string());
        while let Some(cur) = cursor {
            if let Some(info) = self.program.get(&cur) {
                if let Some((t, is_static)) = info.fields.get(field) {
                    return Some((t.clone(), *is_static));
                }
            } else if let Some(idx) = self.table.lookup(self.ns, &cur) {
                let lc = self.table.class(idx);
                if let Some(f) = lc.instance_field(field) {
                    return Some((desc_to_ty(&f.ty), false));
                }
                if let Some(f) = lc.static_field(field) {
                    return Some((desc_to_ty(&f.ty), true));
                }
            }
            cursor = self.superclass(&cur);
        }
        None
    }

    /// Method lookup, walking up the hierarchy.
    fn method_of(&self, class: &str, method: &str) -> Option<MethodSig> {
        let mut cursor = Some(class.to_string());
        while let Some(cur) = cursor {
            if let Some(info) = self.program.get(&cur) {
                if let Some(sig) = info.methods.get(method) {
                    return Some(sig.clone());
                }
            } else if let Some(idx) = self.table.lookup(self.ns, &cur) {
                if let Some(midx) = self.table.find_method(idx, method) {
                    let m = self.table.method(midx);
                    return Some(MethodSig {
                        params: m.params.iter().map(desc_to_ty).collect(),
                        ret: m.ret.as_ref().map(desc_to_ty),
                        is_static: m.is_static,
                    });
                }
            }
            cursor = self.superclass(&cur);
        }
        None
    }

    /// `a` names a class equal to or below `b`.
    fn is_subclass_name(&self, a: &str, b: &str) -> bool {
        let mut cursor = Some(a.to_string());
        while let Some(cur) = cursor {
            if cur == b {
                return true;
            }
            cursor = self.superclass(&cur);
        }
        false
    }


    /// May a value of type `from` be used where `to` is expected?
    fn assignable(&self, from: &ETy, to: &Ty) -> bool {
        match (from, to) {
            (ETy::Null, t) => ETy::T(t.clone()).is_reference(),
            (ETy::T(Ty::Int), Ty::Int | Ty::Bool) => true,
            (ETy::T(Ty::Bool), Ty::Int | Ty::Bool) => true,
            (ETy::T(Ty::Float), Ty::Float) => true,
            (ETy::T(Ty::Str), Ty::Str) => true,
            (ETy::T(Ty::Class(a)), Ty::Class(b)) => self.is_subclass_name(a, b),
            (ETy::T(Ty::Array(a)), Ty::Array(b)) => a == b,
            // Arrays and strings upcast to the root class (as in Java);
            // there is no downcast back, so Object-typed slots holding
            // arrays are opaque.
            (ETy::T(Ty::Array(_)) | ETy::T(Ty::Str), Ty::Class(b)) => b == "Object",
            _ => false,
        }
    }

    fn compile_class(&self, decl: &ClassDecl) -> Result<ClassDef, CompileError> {
        let mut gen = ClassGen {
            env: self,
            decl,
            pool: Vec::new(),
        };
        gen.run()
    }
}

/// Per-class code generator.
struct ClassGen<'a, 'b> {
    env: &'b Env<'a>,
    decl: &'b ClassDecl,
    pool: Vec<Const>,
}

impl<'a, 'b> ClassGen<'a, 'b> {
    fn pool(&mut self, c: Const) -> u16 {
        if let Some(i) = self.pool.iter().position(|e| *e == c) {
            return i as u16;
        }
        self.pool.push(c);
        (self.pool.len() - 1) as u16
    }

    fn run(&mut self) -> Result<ClassDef, CompileError> {
        let mut methods = Vec::new();
        for m in &self.decl.methods {
            methods.push(self.compile_method(m)?);
        }
        Ok(ClassDef {
            name: self.decl.name.clone(),
            super_name: Some(
                self.decl
                    .extends
                    .clone()
                    .unwrap_or_else(|| "Object".to_string()),
            ),
            fields: self
                .decl
                .fields
                .iter()
                .map(|f| kaffeos_vm::FieldDef {
                    name: f.name.clone(),
                    ty: ty_to_desc(&f.ty),
                    is_static: f.is_static,
                })
                .collect(),
            methods,
            pool: self.pool.clone(),
        })
    }

    fn compile_method(&mut self, m: &MethodDecl) -> Result<kaffeos_vm::MethodDef, CompileError> {
        let mut f = FnGen {
            ops: Vec::new(),
            handlers: Vec::new(),
            scopes: vec![HashMap::new()],
            next_local: 0,
            max_locals: 0,
            loops: Vec::new(),
            pending_continues: Vec::new(),
            ret: m.ret.clone(),
            is_static: m.is_static,
            line_marks: Vec::new(),
        };
        if !m.is_static {
            f.declare("this", Ty::Class(self.decl.name.clone()), m.line)?;
        }
        for (name, ty) in &m.params {
            f.declare(name, ty.clone(), m.line)?;
        }
        for stmt in &m.body {
            self.stmt(&mut f, stmt)?;
        }
        // Implicit return only for void methods; a value-returning method
        // must end every path in return/throw — the verifier enforces it,
        // but give a friendlier error if the last statement clearly falls
        // through on a value-returning method with an empty body.
        if m.ret.is_some() && m.body.is_empty() {
            return Err(CompileError {
                line: m.line,
                msg: format!("method {} must return a value", m.name),
            });
        }
        if m.ret.is_none() {
            f.ops.push(Op::Return);
        }
        let lines = f.line_table(m.line);
        Ok(kaffeos_vm::MethodDef {
            name: m.name.clone(),
            params: m.params.iter().map(|(_, t)| ty_to_desc(t)).collect(),
            ret: m.ret.as_ref().map(ty_to_desc),
            is_static: m.is_static,
            code: Code {
                max_locals: f.max_locals,
                ops: f.ops,
                handlers: f.handlers,
                lines,
            },
        })
    }

    // ---- statements --------------------------------------------------------

    fn stmt(&mut self, f: &mut FnGen, s: &Stmt) -> Result<(), CompileError> {
        if let Some(line) = stmt_line(s) {
            f.mark_line(line);
        }
        match s {
            Stmt::VarDecl {
                ty,
                name,
                init,
                line,
            } => {
                self.check_type(ty, *line)?;
                let slot = f.declare(name, ty.clone(), *line)?;
                if let Some(init) = init {
                    let got = self.expr(f, init)?;
                    self.coerce(f, &got, ty, *line)?;
                    f.ops.push(Op::Store(slot));
                } else {
                    // Initialise so the verifier's read-before-write check
                    // passes for the common declare-then-assign pattern.
                    match ty {
                        Ty::Int | Ty::Bool => f.ops.push(Op::ConstInt(0)),
                        Ty::Float => f.ops.push(Op::ConstFloat(0.0)),
                        _ => f.ops.push(Op::ConstNull),
                    }
                    f.ops.push(Op::Store(slot));
                }
                Ok(())
            }
            Stmt::Assign {
                target,
                value,
                line,
            } => self.assign(f, target, value, *line),
            Stmt::Expr(e) => {
                let t = self.expr_stmt(f, e)?;
                if t.is_some() {
                    f.ops.push(Op::Pop);
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                line,
            } => {
                let t = self.expr(f, cond)?;
                self.expect_bool(&t, *line)?;
                let jfalse = f.emit_patch(PatchKind::IfFalse);
                for s in then_body {
                    self.stmt(f, s)?;
                }
                if else_body.is_empty() {
                    f.patch(jfalse);
                } else {
                    let jend = f.emit_patch(PatchKind::Always);
                    f.patch(jfalse);
                    for s in else_body {
                        self.stmt(f, s)?;
                    }
                    f.patch(jend);
                }
                Ok(())
            }
            Stmt::While { cond, body, line } => {
                let head = f.here();
                let t = self.expr(f, cond)?;
                self.expect_bool(&t, *line)?;
                let jexit = f.emit_patch(PatchKind::IfFalse);
                f.loops.push(LoopCtx {
                    continue_target: head,
                    breaks: Vec::new(),
                });
                for s in body {
                    self.stmt(f, s)?;
                }
                f.ops.push(Op::Jump(head));
                let ctx = f.loops.pop().expect("loop context");
                f.patch(jexit);
                for b in ctx.breaks {
                    f.patch(b);
                }
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
                line,
            } => {
                f.push_scope();
                if let Some(init) = init.as_ref() {
                    self.stmt(f, init)?;
                }
                let head = f.here();
                let jexit = match cond {
                    Some(cond) => {
                        let t = self.expr(f, cond)?;
                        self.expect_bool(&t, *line)?;
                        Some(f.emit_patch(PatchKind::IfFalse))
                    }
                    None => None,
                };
                f.loops.push(LoopCtx {
                    // `continue` must run the update; patched below.
                    continue_target: u32::MAX,
                    breaks: Vec::new(),
                });
                let body_continue_patches_start = f.pending_continues.len();
                for s in body {
                    self.stmt(f, s)?;
                }
                let update_at = f.here();
                // Retarget continues recorded inside the body.
                for i in body_continue_patches_start..f.pending_continues.len() {
                    let at = f.pending_continues[i];
                    f.patch_to(at, update_at);
                }
                f.pending_continues.truncate(body_continue_patches_start);
                if let Some(update) = update.as_ref() {
                    self.stmt(f, update)?;
                }
                f.ops.push(Op::Jump(head));
                let ctx = f.loops.pop().expect("loop context");
                if let Some(jexit) = jexit {
                    f.patch(jexit);
                }
                for b in ctx.breaks {
                    f.patch(b);
                }
                f.pop_scope();
                Ok(())
            }
            Stmt::Return { value, line } => {
                match (&f.ret.clone(), value) {
                    (None, None) => f.ops.push(Op::Return),
                    (Some(want), Some(e)) => {
                        let got = self.expr(f, e)?;
                        self.coerce(f, &got, want, *line)?;
                        f.ops.push(Op::ReturnVal);
                    }
                    (None, Some(_)) => {
                        return Err(CompileError {
                            line: *line,
                            msg: "void method cannot return a value".to_string(),
                        })
                    }
                    (Some(_), None) => {
                        return Err(CompileError {
                            line: *line,
                            msg: "missing return value".to_string(),
                        })
                    }
                }
                Ok(())
            }
            Stmt::Break { line } => {
                if f.loops.is_empty() {
                    return Err(CompileError {
                        line: *line,
                        msg: "break outside a loop".to_string(),
                    });
                }
                let at = f.emit_patch(PatchKind::Always);
                f.loops.last_mut().expect("loop").breaks.push(at);
                Ok(())
            }
            Stmt::Continue { line } => {
                let Some(ctx) = f.loops.last() else {
                    return Err(CompileError {
                        line: *line,
                        msg: "continue outside a loop".to_string(),
                    });
                };
                if ctx.continue_target == u32::MAX {
                    // For-loop: target patched after the body.
                    let at = f.emit_patch(PatchKind::Always);
                    f.pending_continues.push(at);
                } else {
                    let target = ctx.continue_target;
                    f.ops.push(Op::Jump(target));
                }
                Ok(())
            }
            Stmt::Throw { value, line } => {
                let t = self.expr(f, value)?;
                if !matches!(t, ETy::T(Ty::Class(_)) | ETy::Null) {
                    return Err(CompileError {
                        line: *line,
                        msg: "can only throw objects".to_string(),
                    });
                }
                f.ops.push(Op::Throw);
                Ok(())
            }
            Stmt::Try {
                body,
                catches,
                line,
            } => {
                let start = f.here();
                f.push_scope();
                for s in body {
                    self.stmt(f, s)?;
                }
                f.pop_scope();
                let end = f.here();
                if start == end {
                    return Err(CompileError {
                        line: *line,
                        msg: "empty try body".to_string(),
                    });
                }
                let jend = f.emit_patch(PatchKind::Always);
                let mut jumps = vec![jend];
                for c in catches {
                    if !self.env.class_exists(&c.class) {
                        return Err(CompileError {
                            line: c.line,
                            msg: format!("unknown exception class {}", c.class),
                        });
                    }
                    let cls = self.pool(Const::Class(c.class.clone()));
                    let target = f.here();
                    f.handlers.push(Handler {
                        start,
                        end,
                        target,
                        class: cls,
                    });
                    f.push_scope();
                    let slot = f.declare(&c.var, Ty::Class(c.class.clone()), c.line)?;
                    f.ops.push(Op::Store(slot));
                    for s in &c.body {
                        self.stmt(f, s)?;
                    }
                    f.pop_scope();
                    jumps.push(f.emit_patch(PatchKind::Always));
                }
                // The last catch's end-jump is redundant but harmless.
                for j in jumps {
                    f.patch(j);
                }
                Ok(())
            }
            Stmt::Sync { lock, body, line } => {
                let t = self.expr(f, lock)?;
                if !t.is_reference() || t == ETy::Null {
                    return Err(CompileError {
                        line: *line,
                        msg: "sync needs an object expression".to_string(),
                    });
                }
                // Keep the lock in a hidden local so exit paths can find it.
                f.push_scope();
                let slot = f.declare_hidden(self.lock_ty(&t), *line)?;
                f.ops.push(Op::Store(slot));
                f.ops.push(Op::Load(slot));
                f.ops.push(Op::MonitorEnter);
                let start = f.here();
                for s in body {
                    self.stmt(f, s)?;
                }
                let end = f.here();
                f.ops.push(Op::Load(slot));
                f.ops.push(Op::MonitorExit);
                let jend = f.emit_patch(PatchKind::Always);
                // Exception path: release the monitor, rethrow.
                if start != end && self.env.class_exists("Exception") {
                    let cls = self.pool(Const::Class("Exception".to_string()));
                    let target = f.here();
                    f.handlers.push(Handler {
                        start,
                        end,
                        target,
                        class: cls,
                    });
                    let exc_slot = f.declare_hidden(Ty::Class("Exception".to_string()), *line)?;
                    f.ops.push(Op::Store(exc_slot));
                    f.ops.push(Op::Load(slot));
                    f.ops.push(Op::MonitorExit);
                    f.ops.push(Op::Load(exc_slot));
                    f.ops.push(Op::Throw);
                }
                f.patch(jend);
                f.pop_scope();
                Ok(())
            }
            Stmt::Block(body) => {
                f.push_scope();
                for s in body {
                    self.stmt(f, s)?;
                }
                f.pop_scope();
                Ok(())
            }
        }
    }

    fn lock_ty(&self, t: &ETy) -> Ty {
        match t {
            ETy::T(t) => t.clone(),
            ETy::Null => Ty::Class("Object".to_string()),
        }
    }

    fn check_type(&self, ty: &Ty, line: u32) -> Result<(), CompileError> {
        match ty {
            Ty::Class(name) if !self.env.class_exists(name) => Err(CompileError {
                line,
                msg: format!("unknown class {name}"),
            }),
            Ty::Array(e) => self.check_type(e, line),
            _ => Ok(()),
        }
    }

    fn assign(
        &mut self,
        f: &mut FnGen,
        target: &Expr,
        value: &Expr,
        line: u32,
    ) -> Result<(), CompileError> {
        match target {
            Expr::Var(name, _) => {
                if let Some((slot, ty)) = f.lookup(name) {
                    let got = self.expr(f, value)?;
                    self.coerce(f, &got, &ty, line)?;
                    f.ops.push(Op::Store(slot));
                    return Ok(());
                }
                // Unqualified static or instance field of the current class.
                self.assign_field_of_self(f, name, value, line)
            }
            Expr::Field { recv, name, line } => {
                // Static field: `ClassName.field = v`.
                if let Expr::Var(class_name, _) = recv.as_ref() {
                    if f.lookup(class_name).is_none() && self.env.class_exists(class_name) {
                        let Some((ty, is_static)) = self.env.field_of(class_name, name) else {
                            return Err(CompileError {
                                line: *line,
                                msg: format!("unknown field {class_name}.{name}"),
                            });
                        };
                        if !is_static {
                            return Err(CompileError {
                                line: *line,
                                msg: format!("{class_name}.{name} is not static"),
                            });
                        }
                        let got = self.expr(f, value)?;
                        self.coerce(f, &got, &ty, *line)?;
                        let idx = self.pool(Const::Field {
                            class: class_name.clone(),
                            name: name.clone(),
                        });
                        f.ops.push(Op::PutStatic(idx));
                        return Ok(());
                    }
                }
                let recv_ty = self.expr(f, recv)?;
                let ETy::T(Ty::Class(class_name)) = recv_ty else {
                    return Err(CompileError {
                        line: *line,
                        msg: format!("field store on non-object {recv_ty:?}"),
                    });
                };
                let Some((ty, is_static)) = self.env.field_of(&class_name, name) else {
                    return Err(CompileError {
                        line: *line,
                        msg: format!("unknown field {class_name}.{name}"),
                    });
                };
                if is_static {
                    return Err(CompileError {
                        line: *line,
                        msg: format!("{class_name}.{name} is static; use the class name"),
                    });
                }
                let got = self.expr(f, value)?;
                self.coerce(f, &got, &ty, *line)?;
                let idx = self.pool(Const::Field {
                    class: class_name,
                    name: name.clone(),
                });
                f.ops.push(Op::PutField(idx));
                Ok(())
            }
            Expr::Index { arr, idx, line } => {
                let arr_ty = self.expr(f, arr)?;
                let ETy::T(Ty::Array(elem)) = arr_ty else {
                    return Err(CompileError {
                        line: *line,
                        msg: format!("indexing a non-array {arr_ty:?}"),
                    });
                };
                let idx_ty = self.expr(f, idx)?;
                if !idx_ty.is_int_like() {
                    return Err(CompileError {
                        line: *line,
                        msg: "array index must be int".to_string(),
                    });
                }
                let got = self.expr(f, value)?;
                self.coerce(f, &got, &elem, *line)?;
                f.ops.push(Op::AStore);
                Ok(())
            }
            other => Err(CompileError {
                line,
                msg: format!("invalid assignment target {other:?}"),
            }),
        }
    }

    /// `name = value` where `name` is a field of the enclosing class.
    fn assign_field_of_self(
        &mut self,
        f: &mut FnGen,
        name: &str,
        value: &Expr,
        line: u32,
    ) -> Result<(), CompileError> {
        let class_name = self.decl.name.clone();
        let Some((ty, is_static)) = self.env.field_of(&class_name, name) else {
            return Err(CompileError {
                line,
                msg: format!("unknown variable or field {name}"),
            });
        };
        let idx = self.pool(Const::Field {
            class: class_name,
            name: name.to_string(),
        });
        if is_static {
            let got = self.expr(f, value)?;
            self.coerce(f, &got, &ty, line)?;
            f.ops.push(Op::PutStatic(idx));
        } else {
            if f.is_static {
                return Err(CompileError {
                    line,
                    msg: format!("instance field {name} in a static method"),
                });
            }
            f.ops.push(Op::Load(0));
            let got = self.expr(f, value)?;
            self.coerce(f, &got, &ty, line)?;
            f.ops.push(Op::PutField(idx));
        }
        Ok(())
    }

    // ---- expressions -----------------------------------------------------

    /// Compiles an expression statement; returns `Some` if it left a value
    /// on the stack that must be popped.
    fn expr_stmt(&mut self, f: &mut FnGen, e: &Expr) -> Result<Option<ETy>, CompileError> {
        match e {
            Expr::Call { .. } | Expr::SelfCall { .. } | Expr::New { .. } => {
                match self.call_like(f, e)? {
                    Some(t) => Ok(Some(t)),
                    None => Ok(None),
                }
            }
            other => Ok(Some(self.expr(f, other)?)),
        }
    }

    /// Compiles an expression, leaving exactly one value on the stack.
    fn expr(&mut self, f: &mut FnGen, e: &Expr) -> Result<ETy, CompileError> {
        match e {
            Expr::IntLit(v, _) => {
                f.ops.push(Op::ConstInt(*v));
                Ok(ETy::T(Ty::Int))
            }
            Expr::FloatLit(v, _) => {
                f.ops.push(Op::ConstFloat(*v));
                Ok(ETy::T(Ty::Float))
            }
            Expr::StrLit(s, _) => {
                let idx = self.pool(Const::Str(s.clone()));
                f.ops.push(Op::ConstStr(idx));
                Ok(ETy::T(Ty::Str))
            }
            Expr::BoolLit(v, _) => {
                f.ops.push(Op::ConstInt(*v as i64));
                Ok(ETy::T(Ty::Bool))
            }
            Expr::Null(_) => {
                f.ops.push(Op::ConstNull);
                Ok(ETy::Null)
            }
            Expr::This(line) => {
                if f.is_static {
                    return Err(CompileError {
                        line: *line,
                        msg: "`this` in a static method".to_string(),
                    });
                }
                f.ops.push(Op::Load(0));
                Ok(ETy::T(Ty::Class(self.decl.name.clone())))
            }
            Expr::Var(name, line) => {
                if let Some((slot, ty)) = f.lookup(name) {
                    f.ops.push(Op::Load(slot));
                    return Ok(ETy::T(ty));
                }
                // Unqualified field of the enclosing class.
                let class_name = self.decl.name.clone();
                let Some((ty, is_static)) = self.env.field_of(&class_name, name) else {
                    return Err(CompileError {
                        line: *line,
                        msg: format!("unknown variable {name}"),
                    });
                };
                let idx = self.pool(Const::Field {
                    class: class_name,
                    name: name.clone(),
                });
                if is_static {
                    f.ops.push(Op::GetStatic(idx));
                } else {
                    if f.is_static {
                        return Err(CompileError {
                            line: *line,
                            msg: format!("instance field {name} in a static method"),
                        });
                    }
                    f.ops.push(Op::Load(0));
                    f.ops.push(Op::GetField(idx));
                }
                Ok(ETy::T(ty))
            }
            Expr::Binary { op, lhs, rhs, line } => self.binary(f, *op, lhs, rhs, *line),
            Expr::Unary { op, operand, line } => {
                let t = self.expr(f, operand)?;
                match op {
                    UnOp::Neg => match t {
                        ETy::T(Ty::Int) => {
                            f.ops.push(Op::Neg);
                            Ok(ETy::T(Ty::Int))
                        }
                        ETy::T(Ty::Float) => {
                            f.ops.push(Op::FNeg);
                            Ok(ETy::T(Ty::Float))
                        }
                        other => Err(CompileError {
                            line: *line,
                            msg: format!("cannot negate {other:?}"),
                        }),
                    },
                    UnOp::Not => {
                        self.expect_bool(&t, *line)?;
                        f.ops.push(Op::ConstInt(0));
                        f.ops.push(Op::CmpEq);
                        Ok(ETy::T(Ty::Bool))
                    }
                }
            }
            Expr::Field { recv, name, line } => {
                // Static field access `ClassName.field`.
                if let Expr::Var(class_name, _) = recv.as_ref() {
                    if f.lookup(class_name).is_none() && self.env.class_exists(class_name) {
                        let Some((ty, is_static)) = self.env.field_of(class_name, name) else {
                            return Err(CompileError {
                                line: *line,
                                msg: format!("unknown field {class_name}.{name}"),
                            });
                        };
                        if !is_static {
                            return Err(CompileError {
                                line: *line,
                                msg: format!("{class_name}.{name} is not static"),
                            });
                        }
                        let idx = self.pool(Const::Field {
                            class: class_name.clone(),
                            name: name.clone(),
                        });
                        f.ops.push(Op::GetStatic(idx));
                        return Ok(ETy::T(ty));
                    }
                }
                let recv_ty = self.expr(f, recv)?;
                let ETy::T(Ty::Class(class_name)) = recv_ty else {
                    return Err(CompileError {
                        line: *line,
                        msg: format!("field access on non-object {recv_ty:?}"),
                    });
                };
                let Some((ty, is_static)) = self.env.field_of(&class_name, name) else {
                    return Err(CompileError {
                        line: *line,
                        msg: format!("unknown field {class_name}.{name}"),
                    });
                };
                if is_static {
                    return Err(CompileError {
                        line: *line,
                        msg: format!("{class_name}.{name} is static; use the class name"),
                    });
                }
                let idx = self.pool(Const::Field {
                    class: class_name,
                    name: name.clone(),
                });
                f.ops.push(Op::GetField(idx));
                Ok(ETy::T(ty))
            }
            Expr::Index { arr, idx, line } => {
                let arr_ty = self.expr(f, arr)?;
                let ETy::T(Ty::Array(elem)) = arr_ty else {
                    return Err(CompileError {
                        line: *line,
                        msg: format!("indexing a non-array {arr_ty:?}"),
                    });
                };
                let idx_ty = self.expr(f, idx)?;
                if !idx_ty.is_int_like() {
                    return Err(CompileError {
                        line: *line,
                        msg: "array index must be int".to_string(),
                    });
                }
                f.ops.push(Op::ALoad);
                Ok(ETy::T(*elem))
            }
            Expr::Cast { value, class, line } => {
                if !self.env.class_exists(class) {
                    return Err(CompileError {
                        line: *line,
                        msg: format!("unknown class {class}"),
                    });
                }
                let t = self.expr(f, value)?;
                if !t.is_reference() {
                    return Err(CompileError {
                        line: *line,
                        msg: "cast of a non-reference".to_string(),
                    });
                }
                let idx = self.pool(Const::Class(class.clone()));
                f.ops.push(Op::CheckCast(idx));
                Ok(ETy::T(Ty::Class(class.clone())))
            }
            Expr::InstanceOf { value, class, line } => {
                if !self.env.class_exists(class) {
                    return Err(CompileError {
                        line: *line,
                        msg: format!("unknown class {class}"),
                    });
                }
                let t = self.expr(f, value)?;
                if !t.is_reference() {
                    return Err(CompileError {
                        line: *line,
                        msg: "`is` on a non-reference".to_string(),
                    });
                }
                let idx = self.pool(Const::Class(class.clone()));
                f.ops.push(Op::InstanceOf(idx));
                Ok(ETy::T(Ty::Bool))
            }
            Expr::Call { .. } | Expr::SelfCall { .. } | Expr::New { .. } => {
                match self.call_like(f, e)? {
                    Some(t) => Ok(t),
                    None => Err(CompileError {
                        line: e.line(),
                        msg: "void call used as a value".to_string(),
                    }),
                }
            }
            Expr::NewArray { elem, len, line } => {
                self.check_type(elem, *line)?;
                let len_ty = self.expr(f, len)?;
                if !len_ty.is_int_like() {
                    return Err(CompileError {
                        line: *line,
                        msg: "array length must be int".to_string(),
                    });
                }
                let idx = match elem {
                    Ty::Class(name) => self.pool(Const::Class(name.clone())),
                    other => self.pool(Const::Str(array_elem_desc(other))),
                };
                f.ops.push(Op::NewArray(idx));
                Ok(ETy::T(Ty::Array(Box::new(elem.clone()))))
            }
        }
    }

    /// Calls and `new`: shared by value and statement positions. Returns
    /// the result type, or `None` for void calls.
    fn call_like(&mut self, f: &mut FnGen, e: &Expr) -> Result<Option<ETy>, CompileError> {
        match e {
            Expr::New { class, args, line } => {
                if !self.env.class_exists(class) {
                    return Err(CompileError {
                        line: *line,
                        msg: format!("unknown class {class}"),
                    });
                }
                let cls_idx = self.pool(Const::Class(class.clone()));
                f.ops.push(Op::New(cls_idx));
                let ctor = self.env.method_of(class, "init");
                match ctor {
                    Some(sig) => {
                        if sig.params.len() != args.len() {
                            return Err(CompileError {
                                line: *line,
                                msg: format!(
                                    "{class} constructor takes {} arguments, got {}",
                                    sig.params.len(),
                                    args.len()
                                ),
                            });
                        }
                        f.ops.push(Op::Dup);
                        for (arg, want) in args.iter().zip(&sig.params) {
                            let got = self.expr(f, arg)?;
                            self.coerce(f, &got, want, *line)?;
                        }
                        let init_idx = self.pool(Const::Method {
                            class: class.clone(),
                            name: "init".to_string(),
                        });
                        f.ops.push(Op::CallSpecial(init_idx));
                    }
                    None if args.is_empty() => {}
                    None => {
                        return Err(CompileError {
                            line: *line,
                            msg: format!("{class} has no constructor"),
                        })
                    }
                }
                Ok(Some(ETy::T(Ty::Class(class.clone()))))
            }
            Expr::SelfCall { method, args, line } => {
                let class_name = self.decl.name.clone();
                let Some(sig) = self.env.method_of(&class_name, method) else {
                    return Err(CompileError {
                        line: *line,
                        msg: format!("unknown method {method}"),
                    });
                };
                if !sig.is_static {
                    if f.is_static {
                        return Err(CompileError {
                            line: *line,
                            msg: format!("instance method {method} called from static code"),
                        });
                    }
                    f.ops.push(Op::Load(0));
                }
                self.emit_args(f, args, &sig.params, *line)?;
                let idx = self.pool(Const::Method {
                    class: class_name,
                    name: method.clone(),
                });
                if sig.is_static {
                    f.ops.push(Op::CallStatic(idx));
                } else {
                    f.ops.push(Op::CallVirtual(idx));
                }
                Ok(sig.ret.map(ETy::T))
            }
            Expr::Call {
                recv,
                method,
                args,
                line,
            } => {
                // Intrinsic namespace?
                if let Expr::Var(ns_name, _) = recv.as_ref() {
                    if f.lookup(ns_name).is_none()
                        && INTRINSIC_NAMESPACES.contains(&ns_name.as_str())
                    {
                        return self.intrinsic_call(f, ns_name, method, args, *line);
                    }
                    // Static method call `ClassName.m(...)`.
                    if f.lookup(ns_name).is_none() && self.env.class_exists(ns_name) {
                        let Some(sig) = self.env.method_of(ns_name, method) else {
                            return Err(CompileError {
                                line: *line,
                                msg: format!("unknown method {ns_name}.{method}"),
                            });
                        };
                        if !sig.is_static {
                            return Err(CompileError {
                                line: *line,
                                msg: format!("{ns_name}.{method} is not static"),
                            });
                        }
                        self.emit_args(f, args, &sig.params, *line)?;
                        let idx = self.pool(Const::Method {
                            class: ns_name.clone(),
                            name: method.clone(),
                        });
                        f.ops.push(Op::CallStatic(idx));
                        return Ok(sig.ret.map(ETy::T));
                    }
                }
                let recv_ty = self.expr(f, recv)?;
                match &recv_ty {
                    // String builtins.
                    ETy::T(Ty::Str) => self.string_builtin(f, method, args, *line),
                    // Float builtin: truncating conversion.
                    ETy::T(Ty::Float) if method == "toInt" && args.is_empty() => {
                        f.ops.push(Op::F2I);
                        Ok(Some(ETy::T(Ty::Int)))
                    }
                    // Array builtin: len().
                    ETy::T(Ty::Array(_)) => {
                        if method == "len" && args.is_empty() {
                            f.ops.push(Op::ArrayLen);
                            Ok(Some(ETy::T(Ty::Int)))
                        } else {
                            Err(CompileError {
                                line: *line,
                                msg: format!("unknown array method {method}"),
                            })
                        }
                    }
                    ETy::T(Ty::Class(class_name)) => {
                        let Some(sig) = self.env.method_of(class_name, method) else {
                            return Err(CompileError {
                                line: *line,
                                msg: format!("unknown method {class_name}.{method}"),
                            });
                        };
                        if sig.is_static {
                            return Err(CompileError {
                                line: *line,
                                msg: format!("{class_name}.{method} is static"),
                            });
                        }
                        self.emit_args(f, args, &sig.params, *line)?;
                        let idx = self.pool(Const::Method {
                            class: class_name.clone(),
                            name: method.clone(),
                        });
                        f.ops.push(Op::CallVirtual(idx));
                        Ok(sig.ret.map(ETy::T))
                    }
                    other => Err(CompileError {
                        line: *line,
                        msg: format!("method call on {other:?}"),
                    }),
                }
            }
            _ => unreachable!("call_like on non-call expression"),
        }
    }

    fn intrinsic_call(
        &mut self,
        f: &mut FnGen,
        ns_name: &str,
        method: &str,
        args: &[Expr],
        line: u32,
    ) -> Result<Option<ETy>, CompileError> {
        let intr_name = format!("{}.{}", ns_name.to_lowercase(), method);
        let Some(id) = self.env.table.intrinsics().by_name(&intr_name) else {
            return Err(CompileError {
                line,
                msg: format!("unknown intrinsic {intr_name}"),
            });
        };
        let def = self
            .env
            .table
            .intrinsics()
            .def(id)
            .expect("id from registry")
            .clone();
        let params: Vec<Ty> = def.params.iter().map(desc_to_ty).collect();
        self.emit_args(f, args, &params, line)?;
        let idx = self.pool(Const::Intrinsic(intr_name));
        f.ops.push(Op::Syscall(idx));
        Ok(def.ret.as_ref().map(|t| ETy::T(desc_to_ty(t))))
    }

    fn string_builtin(
        &mut self,
        f: &mut FnGen,
        method: &str,
        args: &[Expr],
        line: u32,
    ) -> Result<Option<ETy>, CompileError> {
        let check_args = |want: usize| {
            if args.len() == want {
                Ok(())
            } else {
                Err(CompileError {
                    line,
                    msg: format!("String.{method} takes {want} arguments, got {}", args.len()),
                })
            }
        };
        match method {
            "len" => {
                check_args(0)?;
                f.ops.push(Op::StrLen);
                Ok(Some(ETy::T(Ty::Int)))
            }
            "charAt" => {
                check_args(1)?;
                let t = self.expr(f, &args[0])?;
                self.coerce(f, &t, &Ty::Int, line)?;
                f.ops.push(Op::StrCharAt);
                Ok(Some(ETy::T(Ty::Int)))
            }
            "substr" => {
                check_args(2)?;
                let a = self.expr(f, &args[0])?;
                self.coerce(f, &a, &Ty::Int, line)?;
                let b = self.expr(f, &args[1])?;
                self.coerce(f, &b, &Ty::Int, line)?;
                f.ops.push(Op::Substr);
                Ok(Some(ETy::T(Ty::Str)))
            }
            "eq" => {
                check_args(1)?;
                let t = self.expr(f, &args[0])?;
                self.coerce(f, &t, &Ty::Str, line)?;
                f.ops.push(Op::StrEq);
                Ok(Some(ETy::T(Ty::Bool)))
            }
            "toInt" => {
                check_args(0)?;
                f.ops.push(Op::ParseInt);
                Ok(Some(ETy::T(Ty::Int)))
            }
            "intern" => {
                check_args(0)?;
                f.ops.push(Op::Intern);
                Ok(Some(ETy::T(Ty::Str)))
            }
            other => Err(CompileError {
                line,
                msg: format!("unknown String method {other}"),
            }),
        }
    }

    fn emit_args(
        &mut self,
        f: &mut FnGen,
        args: &[Expr],
        params: &[Ty],
        line: u32,
    ) -> Result<(), CompileError> {
        if args.len() != params.len() {
            return Err(CompileError {
                line,
                msg: format!("expected {} arguments, got {}", params.len(), args.len()),
            });
        }
        for (arg, want) in args.iter().zip(params) {
            let got = self.expr(f, arg)?;
            self.coerce(f, &got, want, line)?;
        }
        Ok(())
    }

    fn binary(
        &mut self,
        f: &mut FnGen,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        line: u32,
    ) -> Result<ETy, CompileError> {
        // Short-circuit logical operators.
        if op == BinOp::And || op == BinOp::Or {
            let lt = self.expr(f, lhs)?;
            self.expect_bool(&lt, line)?;
            let jshort = f.emit_patch(if op == BinOp::And {
                PatchKind::IfFalse
            } else {
                PatchKind::IfTrue
            });
            let rt = self.expr(f, rhs)?;
            self.expect_bool(&rt, line)?;
            let jend = f.emit_patch(PatchKind::Always);
            f.patch(jshort);
            f.ops
                .push(Op::ConstInt(if op == BinOp::And { 0 } else { 1 }));
            f.patch(jend);
            return Ok(ETy::T(Ty::Bool));
        }

        let lt = self.expr(f, lhs)?;
        // String concatenation: if the left side is a string, `+` renders
        // the right side (and vice versa below).
        if op == BinOp::Add && lt == ETy::T(Ty::Str) {
            let _rt = self.expr(f, rhs)?;
            f.ops.push(Op::StrConcat);
            return Ok(ETy::T(Ty::Str));
        }
        let rt = self.expr(f, rhs)?;
        if op == BinOp::Add && rt == ETy::T(Ty::Str) {
            f.ops.push(Op::StrConcat);
            return Ok(ETy::T(Ty::Str));
        }

        // Reference equality — including String == String (§3.3: pointer
        // comparison does not hold for strings interned by different
        // processes; `.eq` is the value comparison).
        if (op == BinOp::Eq || op == BinOp::Ne) && lt.is_reference() && rt.is_reference() {
            f.ops.push(if op == BinOp::Eq {
                Op::RefEq
            } else {
                Op::RefNe
            });
            return Ok(ETy::T(Ty::Bool));
        }

        let both_int = lt.is_int_like() && rt.is_int_like();
        let float_involved = lt == ETy::T(Ty::Float) || rt == ETy::T(Ty::Float);
        if !both_int && !float_involved {
            return Err(CompileError {
                line,
                msg: format!("operator {op:?} on {lt:?} and {rt:?}"),
            });
        }
        if float_involved {
            // Promote whichever side is int.
            if rt.is_int_like() {
                f.ops.push(Op::I2F);
            } else if lt.is_int_like() {
                f.ops.push(Op::Swap);
                f.ops.push(Op::I2F);
                f.ops.push(Op::Swap);
            }
            let result = match op {
                BinOp::Add => (Op::FAdd, Ty::Float),
                BinOp::Sub => (Op::FSub, Ty::Float),
                BinOp::Mul => (Op::FMul, Ty::Float),
                BinOp::Div => (Op::FDiv, Ty::Float),
                BinOp::Lt => (Op::FCmpLt, Ty::Bool),
                BinOp::Le => (Op::FCmpLe, Ty::Bool),
                BinOp::Gt => (Op::FCmpGt, Ty::Bool),
                BinOp::Ge => (Op::FCmpGe, Ty::Bool),
                BinOp::Eq => (Op::FCmpEq, Ty::Bool),
                BinOp::Ne => {
                    f.ops.push(Op::FCmpEq);
                    f.ops.push(Op::ConstInt(0));
                    f.ops.push(Op::CmpEq);
                    return Ok(ETy::T(Ty::Bool));
                }
                other => {
                    return Err(CompileError {
                        line,
                        msg: format!("operator {other:?} not defined on float"),
                    })
                }
            };
            f.ops.push(result.0);
            return Ok(ETy::T(result.1));
        }
        let result = match op {
            BinOp::Add => (Op::Add, Ty::Int),
            BinOp::Sub => (Op::Sub, Ty::Int),
            BinOp::Mul => (Op::Mul, Ty::Int),
            BinOp::Div => (Op::Div, Ty::Int),
            BinOp::Rem => (Op::Rem, Ty::Int),
            BinOp::Shl => (Op::Shl, Ty::Int),
            BinOp::Shr => (Op::Shr, Ty::Int),
            BinOp::BitAnd => (Op::And, Ty::Int),
            BinOp::BitOr => (Op::Or, Ty::Int),
            BinOp::BitXor => (Op::Xor, Ty::Int),
            BinOp::Lt => (Op::CmpLt, Ty::Bool),
            BinOp::Le => (Op::CmpLe, Ty::Bool),
            BinOp::Gt => (Op::CmpGt, Ty::Bool),
            BinOp::Ge => (Op::CmpGe, Ty::Bool),
            BinOp::Eq => (Op::CmpEq, Ty::Bool),
            BinOp::Ne => (Op::CmpNe, Ty::Bool),
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        };
        f.ops.push(result.0);
        Ok(ETy::T(result.1))
    }

    fn expect_bool(&self, t: &ETy, line: u32) -> Result<(), CompileError> {
        if t.is_int_like() {
            Ok(())
        } else {
            Err(CompileError {
                line,
                msg: format!("expected a bool/int condition, found {t:?}"),
            })
        }
    }

    /// Checks assignability; no code is emitted (ints and bools share a
    /// runtime representation, everything else must match exactly).
    fn coerce(&self, f: &mut FnGen, got: &ETy, want: &Ty, line: u32) -> Result<(), CompileError> {
        // Implicit int→float promotion on assignment.
        if got.is_int_like() && *want == Ty::Float {
            f.ops.push(Op::I2F);
            return Ok(());
        }
        if self.env.assignable(got, want) {
            Ok(())
        } else {
            Err(CompileError {
                line,
                msg: format!("cannot use {got:?} where {want:?} is expected"),
            })
        }
    }
}

/// Source line of a statement, if it has one (`Block` does not).
fn stmt_line(s: &Stmt) -> Option<u32> {
    Some(match s {
        Stmt::VarDecl { line, .. }
        | Stmt::Assign { line, .. }
        | Stmt::If { line, .. }
        | Stmt::While { line, .. }
        | Stmt::For { line, .. }
        | Stmt::Return { line, .. }
        | Stmt::Break { line }
        | Stmt::Continue { line }
        | Stmt::Throw { line, .. }
        | Stmt::Try { line, .. }
        | Stmt::Sync { line, .. } => *line,
        Stmt::Expr(e) => e.line(),
        Stmt::Block(_) => return None,
    })
}

/// Array element descriptor for `NewArray` pool entries (non-class
/// elements; see the VM verifier's `decode_elem_desc`).
fn array_elem_desc(t: &Ty) -> String {
    match t {
        Ty::Int | Ty::Bool => "int".to_string(),
        Ty::Float => "float".to_string(),
        Ty::Str => "str".to_string(),
        Ty::Class(n) => format!("C:{n}"),
        Ty::Array(e) => format!("[{}", array_elem_desc(e)),
    }
}

#[derive(Debug, Clone, Copy)]
enum PatchKind {
    Always,
    IfFalse,
    IfTrue,
}

struct LoopCtx {
    continue_target: u32,
    breaks: Vec<usize>,
}

/// Per-method emission state.
struct FnGen {
    ops: Vec<Op>,
    handlers: Vec<Handler>,
    scopes: Vec<HashMap<String, (u16, Ty)>>,
    next_local: u16,
    max_locals: u16,
    loops: Vec<LoopCtx>,
    /// `continue` sites inside `for` bodies awaiting the update position.
    pending_continues: Vec<usize>,
    ret: Option<Ty>,
    is_static: bool,
    /// Debug line marks: `(op index, source line)` recorded at statement
    /// entry, expanded into a per-op line table by `line_table`.
    line_marks: Vec<(u32, u32)>,
}

impl FnGen {
    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    /// Records that instructions emitted from here on come from `line`.
    fn mark_line(&mut self, line: u32) {
        let at = self.ops.len() as u32;
        if let Some(last) = self.line_marks.last_mut() {
            if last.0 == at {
                last.1 = line;
                return;
            }
        }
        self.line_marks.push((at, line));
    }

    /// Expands the recorded marks into a per-op table (forward-filled;
    /// ops before the first mark get `default_line`, the method header).
    fn line_table(&self, default_line: u32) -> Vec<u32> {
        let mut lines = vec![0u32; self.ops.len()];
        let mut cur = default_line;
        let mut next = 0usize;
        for (pc, slot) in lines.iter_mut().enumerate() {
            while next < self.line_marks.len() && self.line_marks[next].0 as usize <= pc {
                cur = self.line_marks[next].1;
                next += 1;
            }
            *slot = cur;
        }
        lines
    }

    /// Emits a jump with an unresolved target; returns the op index.
    fn emit_patch(&mut self, kind: PatchKind) -> usize {
        let at = self.ops.len();
        self.ops.push(match kind {
            PatchKind::Always => Op::Jump(u32::MAX),
            PatchKind::IfFalse => Op::JumpIfFalse(u32::MAX),
            PatchKind::IfTrue => Op::JumpIfTrue(u32::MAX),
        });
        at
    }

    /// Resolves a pending jump to the current position.
    fn patch(&mut self, at: usize) {
        let target = self.here();
        self.patch_to(at, target);
    }

    fn patch_to(&mut self, at: usize, target: u32) {
        self.ops[at] = match self.ops[at] {
            Op::Jump(_) => Op::Jump(target),
            Op::JumpIfFalse(_) => Op::JumpIfFalse(target),
            Op::JumpIfTrue(_) => Op::JumpIfTrue(target),
            other => {
                debug_assert!(false, "patching non-jump {other:?}");
                other
            }
        };
    }

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        // Slots are not recycled: simpler, and max_locals stays correct.
        self.scopes.pop();
    }

    fn declare(&mut self, name: &str, ty: Ty, line: u32) -> Result<u16, CompileError> {
        let scope = self.scopes.last_mut().expect("scope");
        if scope.contains_key(name) {
            return Err(CompileError {
                line,
                msg: format!("duplicate variable {name}"),
            });
        }
        let slot = self.next_local;
        self.next_local += 1;
        self.max_locals = self.max_locals.max(self.next_local);
        self.scopes
            .last_mut()
            .expect("scope")
            .insert(name.to_string(), (slot, ty));
        Ok(slot)
    }

    fn declare_hidden(&mut self, ty: Ty, line: u32) -> Result<u16, CompileError> {
        let name = format!("$tmp{}", self.next_local);
        self.declare(&name, ty, line)
    }

    fn lookup(&self, name: &str) -> Option<(u16, Ty)> {
        for scope in self.scopes.iter().rev() {
            if let Some((slot, ty)) = scope.get(name) {
                return Some((*slot, ty.clone()));
            }
        }
        None
    }
}
