//! End-to-end compiler tests: Cup source → bytecode → verifier → VM.

use kaffeos_heap::FxHashMap;

use kaffeos_heap::{HeapSpace, SpaceConfig, Value};
use kaffeos_memlimit::Kind;
use kaffeos_vm::{
    step, ClassBuilder, ClassTable, Engine, ExecCtx, IntrinsicRegistry, RunExit, Thread, TypeDesc,
    VmException,
};

use crate::compile;

/// An exception class with a `msg` field and an `init(String)` constructor.
fn exception_class(name: &str, extends: Option<&str>) -> kaffeos_vm::ClassDef {
    use kaffeos_vm::{Const, MethodBuilder, Op};
    let mut b = ClassBuilder::new(name);
    if let Some(parent) = extends {
        b = b.extends(parent);
    }
    let mut b = b.field("msg", TypeDesc::Str);
    let fmsg = b.pool(Const::Field {
        class: name.to_string(),
        name: "msg".to_string(),
    });
    b.method(
        MethodBuilder::instance("init")
            .param(TypeDesc::Str)
            .ops([Op::Load(0), Op::Load(1), Op::PutField(fmsg), Op::Return])
            .build(),
    )
    .build()
}

fn base_classes() -> Vec<kaffeos_vm::ClassDef> {
    let mut out = vec![
        ClassBuilder::root("Object").build(),
        ClassBuilder::new("String").build(),
        exception_class("Exception", None),
    ];
    for name in [
        "NullPointerException",
        "IndexOutOfBoundsException",
        "ArithmeticException",
        "ClassCastException",
        "SegmentationViolation",
        "OutOfMemoryError",
        "StackOverflowError",
        "IllegalStateException",
    ] {
        // Subclasses inherit `msg` and `init` from Exception.
        out.push(ClassBuilder::new(name).extends("Exception").build());
    }
    out
}

struct Host {
    space: HeapSpace,
    table: ClassTable,
    ns: u32,
    heap: kaffeos_heap::HeapId,
    string_class: kaffeos_vm::ClassIdx,
    statics: FxHashMap<kaffeos_vm::ClassIdx, kaffeos_heap::ObjRef>,
    intern: FxHashMap<String, kaffeos_heap::ObjRef>,
    monitors: FxHashMap<kaffeos_heap::ObjRef, (u32, u32)>,
    printed: Vec<String>,
}

impl Host {
    fn new() -> Self {
        let mut registry = IntrinsicRegistry::new();
        registry.register("sys.print", vec![TypeDesc::Str], None);
        registry.register("sys.cycles", vec![], Some(TypeDesc::Int));
        let mut space = HeapSpace::new(SpaceConfig::default());
        let root = space.root_memlimit();
        let ml = space
            .limits_mut()
            .create_child(root, Kind::Soft, 64 << 20, "p")
            .unwrap();
        let heap = space.create_user_heap(kaffeos_heap::ProcTag(1), ml, "h");
        let mut table = ClassTable::new(registry);
        let ns = table.create_namespace("test", None);
        for def in base_classes() {
            table.load_class(ns, def.into_arc()).unwrap();
        }
        let string_class = table.lookup(ns, "String").unwrap();
        Host {
            space,
            table,
            ns,
            heap,
            string_class,
            statics: FxHashMap::default(),
            intern: FxHashMap::default(),
            monitors: FxHashMap::default(),
            printed: Vec::new(),
        }
    }

    fn compile_and_load(&mut self, src: &str) {
        let defs = compile(src, &self.table, self.ns).expect("compile");
        for def in defs {
            self.table
                .load_class(self.ns, def.into_arc())
                .expect("load");
        }
    }

    /// Runs `Main.main(args)` to completion, servicing `sys.print`.
    fn run(&mut self, args: Vec<Value>) -> RunExit {
        let cidx = self.table.lookup(self.ns, "Main").unwrap();
        let midx = self.table.find_method(cidx, "main").unwrap();
        let mut thread = Thread::new(1, &self.table, midx, args);
        loop {
            let exit = {
                let mut ctx = ExecCtx {
                    space: &mut self.space,
                    table: &self.table,
                    ns: self.ns,
                    heap: self.heap,
                    trusted: false,
                    engine: Engine::KAFFEOS,
                    statics: &mut self.statics,
                    intern: &mut self.intern,
                    string_class: self.string_class,
                    monitors: &mut self.monitors,
                    extra_roots: &[],
                    extra_scan_slots: 0,
                    gc_every_safepoint: false,
                    jit: None,
                };
                step(&mut thread, &mut ctx, u64::MAX)
            };
            match exit {
                RunExit::Syscall { id: 0, args } => {
                    // sys.print
                    if let Some(Value::Ref(s)) = args.first() {
                        self.printed
                            .push(self.space.str_value(*s).unwrap().to_string());
                    }
                    thread.resume_with(None);
                }
                RunExit::Syscall { id: 1, .. } => {
                    // sys.cycles
                    let c = thread.cycles as i64;
                    thread.resume_with(Some(Value::Int(c)));
                }
                other => return other,
            }
        }
    }

    fn run_int(&mut self, args: Vec<Value>) -> i64 {
        match self.run(args) {
            RunExit::Finished(Some(Value::Int(v))) => v,
            other => panic!("expected int, got {other:?}"),
        }
    }

    fn unhandled_class(&mut self, args: Vec<Value>) -> String {
        match self.run(args) {
            RunExit::Unhandled(VmException::Guest(obj)) => {
                let cidx = self
                    .table
                    .from_heap_class(self.space.class_of(obj).unwrap());
                self.table.class(cidx).name.clone()
            }
            other => panic!("expected unhandled exception, got {other:?}"),
        }
    }
}

fn run_main_int(src: &str, args: Vec<Value>) -> i64 {
    let mut host = Host::new();
    host.compile_and_load(src);
    host.run_int(args)
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(
        run_main_int(
            "class Main { static int main() { return 2 + 3 * 4 - 6 / 2; } }",
            vec![]
        ),
        11
    );
    assert_eq!(
        run_main_int(
            "class Main { static int main() { return (2 + 3) * (4 - 6) / 2; } }",
            vec![]
        ),
        -5
    );
    assert_eq!(
        run_main_int(
            "class Main { static int main() { return 7 % 3 + (1 << 4) + (256 >> 2) + (12 & 10) + (12 | 3) + (5 ^ 1); } }",
            vec![]
        ),
        7 % 3 + (1 << 4) + (256 >> 2) + (12 & 10) + (12 | 3) + (5 ^ 1)
    );
}

#[test]
fn while_and_for_loops() {
    let src = r#"
        class Main {
            static int main(int n) {
                int acc = 0;
                for (int i = 0; i < n; i = i + 1) {
                    if (i % 2 == 0) { continue; }
                    if (i > 20) { break; }
                    acc = acc + i;
                }
                int j = 0;
                while (j < 3) { acc = acc * 2; j = j + 1; }
                return acc;
            }
        }
    "#;
    // odd i in 0..n capped at 20: for n=10 → 1+3+5+7+9 = 25, ×8 = 200
    assert_eq!(run_main_int(src, vec![Value::Int(10)]), 200);
    // for n=100: odds ≤ 20 → 1+3+..+19 = 100; wait break at i>20, so odds
    // up to 19 plus i=21 triggers break before adding: 100 × 8 = 800.
    assert_eq!(run_main_int(src, vec![Value::Int(100)]), 800);
}

#[test]
fn classes_fields_and_methods() {
    let src = r#"
        class Counter {
            int count;
            init(int start) { this.count = start; }
            void bump() { this.count = this.count + 1; }
            int get() { return count; }
        }
        class Main {
            static int main() {
                Counter c = new Counter(40);
                c.bump();
                c.bump();
                return c.get();
            }
        }
    "#;
    assert_eq!(run_main_int(src, vec![]), 42);
}

#[test]
fn inheritance_and_virtual_dispatch() {
    let src = r#"
        class Shape {
            int area() { return 0; }
            int describe() { return this.area() * 10; }
        }
        class Square extends Shape {
            int side;
            init(int s) { this.side = s; }
            int area() { return side * side; }
        }
        class Main {
            static int main() {
                Shape s = new Square(3);
                return s.describe();
            }
        }
    "#;
    assert_eq!(run_main_int(src, vec![]), 90);
}

#[test]
fn static_fields_and_methods() {
    let src = r#"
        class Registry {
            static int total;
            static void add(int n) { Registry.total = Registry.total + n; }
        }
        class Main {
            static int main() {
                Registry.add(30);
                Registry.add(12);
                return Registry.total;
            }
        }
    "#;
    assert_eq!(run_main_int(src, vec![]), 42);
}

#[test]
fn arrays_and_nested_arrays() {
    let src = r#"
        class Main {
            static int main(int n) {
                int[] a = new int[n];
                for (int i = 0; i < n; i = i + 1) { a[i] = i * i; }
                int[][] m = new int[][3];
                m[0] = a;
                int acc = 0;
                for (int i = 0; i < m[0].len(); i = i + 1) { acc = acc + m[0][i]; }
                return acc;
            }
        }
    "#;
    assert_eq!(run_main_int(src, vec![Value::Int(5)]), 1 + 4 + 9 + 16);
}

#[test]
fn strings_concat_and_builtins() {
    let src = r#"
        class Main {
            static int main() {
                String s = "val=" + 42;
                if (s.eq("val=42")) {
                    String sub = s.substr(4, s.len());
                    return sub.toInt() + s.charAt(0);
                }
                return -1;
            }
        }
    "#;
    assert_eq!(run_main_int(src, vec![]), 42 + 'v' as i64);
}

#[test]
fn string_identity_semantics() {
    // `==` is reference equality; literals are interned per process, so the
    // literal equals itself but not a computed string (§3.3).
    let src = r#"
        class Main {
            static int main() {
                String a = "x";
                String b = "x";
                String c = "" + "x";
                int r = 0;
                if (a == b) { r = r + 1; }
                if (a == c) { r = r + 10; }
                if (a.eq(c)) { r = r + 100; }
                return r;
            }
        }
    "#;
    // a==b (interned), a!=c (fresh), a.eq(c) true → 101. Note "" + "x"
    // builds a fresh (non-interned) string via concatenation.
    assert_eq!(run_main_int(src, vec![]), 101);
}

#[test]
fn exceptions_try_catch_throw() {
    let src = r#"
        class Main {
            static int main(int n) {
                try {
                    if (n == 0) { throw new Exception("zero"); }
                    return 100 / n;
                } catch (Exception e) {
                    return -1;
                }
            }
        }
    "#;
    assert_eq!(run_main_int(src, vec![Value::Int(4)]), 25);
    assert_eq!(run_main_int(src, vec![Value::Int(0)]), -1);
}

#[test]
fn builtin_exceptions_caught_by_class() {
    let src = r#"
        class Main {
            static int main(int n) {
                try {
                    int[] a = new int[3];
                    return a[n];
                } catch (IndexOutOfBoundsException e) {
                    return -2;
                } catch (Exception e) {
                    return -1;
                }
            }
        }
    "#;
    assert_eq!(run_main_int(src, vec![Value::Int(1)]), 0);
    assert_eq!(run_main_int(src, vec![Value::Int(9)]), -2);
}

#[test]
fn uncaught_exception_unwinds() {
    let src = r#"
        class Main {
            static int main() { return 1 / 0; }
        }
    "#;
    let mut host = Host::new();
    host.compile_and_load(src);
    assert_eq!(host.unhandled_class(vec![]), "ArithmeticException");
}

#[test]
fn cast_and_instanceof() {
    let src = r#"
        class Animal { int noise() { return 1; } }
        class Dog extends Animal {
            int noise() { return 2; }
            int fetch() { return 7; }
        }
        class Main {
            static int main() {
                Animal a = new Dog();
                int r = 0;
                if (a is Dog) { r = r + (a as Dog).fetch(); }
                if (a is Animal) { r = r + a.noise(); }
                return r;
            }
        }
    "#;
    assert_eq!(run_main_int(src, vec![]), 9);
}

#[test]
fn logical_short_circuit() {
    let src = r#"
        class Main {
            static int calls;
            static bool bump() { Main.calls = Main.calls + 1; return true; }
            static int main() {
                bool a = false && Main.bump();
                bool b = true || Main.bump();
                if (a || !b) { return -1; }
                return Main.calls;
            }
        }
    "#;
    assert_eq!(run_main_int(src, vec![]), 0, "rhs never evaluated");
}

#[test]
fn float_arithmetic_and_promotion() {
    let src = r#"
        class Main {
            static int main() {
                float x = 1.5;
                float y = x * 4 + 1;   // int operands promote
                if (y > 6.9 && y < 7.1) { return 1; }
                return 0;
            }
        }
    "#;
    assert_eq!(run_main_int(src, vec![]), 1);
}

#[test]
fn recursion_fib() {
    let src = r#"
        class Main {
            static int fib(int n) {
                if (n < 2) { return n; }
                return Main.fib(n - 1) + Main.fib(n - 2);
            }
            static int main(int n) { return fib(n); }
        }
    "#;
    assert_eq!(run_main_int(src, vec![Value::Int(15)]), 610);
}

#[test]
fn sync_blocks_compile_and_release() {
    let src = r#"
        class Main {
            static int main() {
                Object lock = new Object();
                int acc = 0;
                sync (lock) { acc = acc + 21; }
                sync (lock) { acc = acc + 21; }
                return acc;
            }
        }
    "#;
    let mut host = Host::new();
    host.compile_and_load(src);
    assert_eq!(host.run_int(vec![]), 42);
    assert!(host.monitors.is_empty(), "monitors released");
}

#[test]
fn sync_releases_monitor_on_exception() {
    let src = r#"
        class Main {
            static int main() {
                Object lock = new Object();
                try {
                    sync (lock) { throw new Exception("boom"); }
                } catch (Exception e) {
                    return 5;
                }
                return 0;
            }
        }
    "#;
    let mut host = Host::new();
    host.compile_and_load(src);
    assert_eq!(host.run_int(vec![]), 5);
    assert!(host.monitors.is_empty(), "monitor released on unwind");
}

#[test]
fn intrinsics_lower_to_syscalls() {
    let src = r#"
        class Main {
            static int main() {
                Sys.print("hello " + 1);
                Sys.print("world");
                return 0;
            }
        }
    "#;
    let mut host = Host::new();
    host.compile_and_load(src);
    assert_eq!(host.run_int(vec![]), 0);
    assert_eq!(
        host.printed,
        vec!["hello 1".to_string(), "world".to_string()]
    );
}

#[test]
fn extends_library_exception() {
    let src = r#"
        class AppError extends Exception {
            int code;
            init(int c) { this.code = c; }
        }
        class Main {
            static int main() {
                try { throw new AppError(42); }
                catch (AppError e) { return e.code; }
            }
        }
    "#;
    assert_eq!(run_main_int(src, vec![]), 42);
}

mod compile_errors {
    use super::*;

    fn expect_error(src: &str, needle: &str) {
        let host = Host::new();
        let err = compile(src, &host.table, host.ns).unwrap_err();
        assert!(
            err.msg.contains(needle),
            "expected error containing {needle:?}, got {:?}",
            err.msg
        );
    }

    #[test]
    fn unknown_variable() {
        expect_error(
            "class Main { static int main() { return nope; } }",
            "unknown variable",
        );
    }

    #[test]
    fn unknown_class() {
        expect_error(
            "class Main { static void main() { Ghost g = null; } }",
            "unknown class",
        );
    }

    #[test]
    fn type_mismatch_assignment() {
        expect_error(
            "class Main { static void main() { int x = \"s\"; } }",
            "cannot use",
        );
    }

    #[test]
    fn wrong_argument_count() {
        expect_error(
            "class Main { static int f(int a) { return a; } static void main() { Main.f(); } }",
            "expected 1 arguments",
        );
    }

    #[test]
    fn break_outside_loop() {
        expect_error(
            "class Main { static void main() { break; } }",
            "break outside",
        );
    }

    #[test]
    fn this_in_static() {
        expect_error(
            "class Main { int x; static int main() { return this.x; } }",
            "`this` in a static method",
        );
    }

    #[test]
    fn void_as_value() {
        expect_error(
            "class Main { static void f() { } static int main() { return Main.f(); } }",
            "void call used as a value",
        );
    }

    #[test]
    fn duplicate_variable() {
        expect_error(
            "class Main { static void main() { int a = 1; int a = 2; } }",
            "duplicate variable",
        );
    }

    #[test]
    fn unknown_intrinsic() {
        expect_error(
            "class Main { static void main() { Sys.reboot(); } }",
            "unknown intrinsic",
        );
    }
}

/// Every compiled program must pass the VM verifier — spot-check that the
/// compiler's output for tricky control flow (loops with breaks inside
/// try/catch inside sync) verifies and runs.
#[test]
fn kitchen_sink_verifies_and_runs() {
    let src = r#"
        class Node {
            int value;
            Node next;
            init(int v) { this.value = v; }
        }
        class Main {
            static int main(int n) {
                Object lock = new Object();
                Node head = null;
                for (int i = 0; i < n; i = i + 1) {
                    Node fresh = new Node(i);
                    fresh.next = head;
                    head = fresh;
                }
                int acc = 0;
                sync (lock) {
                    Node cur = head;
                    while (cur != null) {
                        try {
                            if (cur.value % 3 == 0) { throw new Exception("skip"); }
                            acc = acc + cur.value;
                        } catch (Exception e) {
                            acc = acc + 1000;
                        }
                        cur = cur.next;
                    }
                }
                return acc;
            }
        }
    "#;
    // values 0..10: multiples of 3 (0,3,6,9) add 1000 each; others sum.
    let expect = 1000 * 4 + (1 + 2 + 4 + 5 + 7 + 8);
    assert_eq!(run_main_int(src, vec![Value::Int(10)]), expect);
}

mod language_coverage {
    use super::*;

    #[test]
    fn operator_precedence_matrix() {
        let cases: &[(&str, i64)] = &[
            ("1 + 2 * 3 - 4 / 2", 5),
            ("(1 + 2) * (3 - 4) / 1", -3),
            ("10 % 4 + 1", 3),
            ("1 << 3 >> 1", 4),
            ("7 & 3 | 8 ^ 1", 3 | 9),
            ("-3 * -4", 12),
            ("10 - -5", 15),
        ];
        for (expr, expected) in cases {
            let src = format!("class Main {{ static int main() {{ return {expr}; }} }}");
            assert_eq!(run_main_int(&src, vec![]), *expected, "{expr}");
        }
    }

    #[test]
    fn boolean_operator_matrix() {
        let cases: &[(&str, i64)] = &[
            ("true && true", 1),
            ("true && false", 0),
            ("false || true", 1),
            ("false || false", 0),
            ("!(1 > 2)", 1),
            ("1 < 2 && 2 < 3 && 3 < 4", 1),
            ("1 == 1 && 1 != 2", 1),
            ("2 >= 2 && 2 <= 2", 1),
        ];
        for (expr, expected) in cases {
            let src = format!(
                "class Main {{ static int main() {{ if ({expr}) {{ return 1; }} return 0; }} }}"
            );
            assert_eq!(run_main_int(&src, vec![]), *expected, "{expr}");
        }
    }

    #[test]
    fn else_if_chains() {
        let src = r#"
            class Main {
                static int grade(int score) {
                    if (score >= 90) { return 4; }
                    else if (score >= 80) { return 3; }
                    else if (score >= 70) { return 2; }
                    else { return 0; }
                }
                static int main() {
                    return Main.grade(95) * 1000 + Main.grade(85) * 100
                         + Main.grade(75) * 10 + Main.grade(10);
                }
            }
        "#;
        assert_eq!(run_main_int(src, vec![]), 4320);
    }

    #[test]
    fn nested_loops_with_break_and_continue() {
        let src = r#"
            class Main {
                static int main() {
                    int acc = 0;
                    for (int i = 0; i < 10; i = i + 1) {
                        if (i % 2 == 1) { continue; }
                        int j = 0;
                        while (true) {
                            j = j + 1;
                            if (j > i) { break; }
                            acc = acc + 1;
                        }
                        if (i > 6) { break; }
                    }
                    return acc;
                }
            }
        "#;
        // even i: inner adds i. i=0:0, 2:2, 4:4, 6:6, 8:8 then break after 8?
        // break happens when i > 6, i.e. after i=8's inner loop.
        assert_eq!(run_main_int(src, vec![]), 2 + 4 + 6 + 8);
    }

    #[test]
    fn comments_are_skipped() {
        let src = r#"
            // leading comment
            class Main {
                /* block
                   comment */
                static int main() {
                    int x = 5; // trailing
                    /* mid */ return x;
                }
            }
        "#;
        assert_eq!(run_main_int(src, vec![]), 5);
    }

    #[test]
    fn negative_modulo_matches_rust_and_java() {
        let src = "class Main { static int main() { return (0 - 7) % 3; } }";
        assert_eq!(run_main_int(src, vec![]), -1);
    }

    #[test]
    fn instance_method_recursion() {
        let src = r#"
            class Walker {
                int depth(int n) {
                    if (n == 0) { return 0; }
                    return 1 + this.depth(n - 1);
                }
            }
            class Main {
                static int main() { return new Walker().depth(17); }
            }
        "#;
        assert_eq!(run_main_int(src, vec![]), 17);
    }

    #[test]
    fn runtime_cast_failure_raises() {
        let src = r#"
            class A { }
            class B extends A { int only() { return 1; } }
            class Main {
                static int main() {
                    A a = new A();
                    try {
                        B b = a as B;
                        return b.only();
                    } catch (ClassCastException e) {
                        return 42;
                    }
                }
            }
        "#;
        assert_eq!(run_main_int(src, vec![]), 42);
    }

    #[test]
    fn string_builtin_surface() {
        let src = r#"
            class Main {
                static int main() {
                    String s = "KaffeOS";
                    int acc = 0;
                    if (s.len() == 7) { acc = acc + 1; }
                    if (s.charAt(0) == 75) { acc = acc + 10; }        // 'K'
                    if (s.substr(5, 7).eq("OS")) { acc = acc + 100; }
                    if (("4" + "2").toInt() == 42) { acc = acc + 1000; }
                    String t = ("Kaffe" + "OS").intern();
                    if (t == "KaffeOS") { acc = acc + 10000; }
                    return acc;
                }
            }
        "#;
        assert_eq!(run_main_int(src, vec![]), 11111);
    }

    #[test]
    fn float_literals_and_mixed_expressions() {
        let src = r#"
            class Main {
                static int main() {
                    float a = 0.5;
                    float b = a * 8 + 1.25;   // 5.25
                    float c = b / 0.25;       // 21.0
                    if (c > 20.9 && c < 21.1) { return c.toInt(); }
                    return -1;
                }
            }
        "#;
        assert_eq!(run_main_int(src, vec![]), 21);
    }

    #[test]
    fn bool_fields_params_and_returns() {
        let src = r#"
            class Flag {
                bool on;
                bool toggle() { this.on = !this.on; return on; }
            }
            class Main {
                static bool both(bool a, bool b) { return a && b; }
                static int main() {
                    Flag f = new Flag();
                    bool first = f.toggle();   // true
                    bool second = f.toggle();  // false
                    if (Main.both(first, !second)) { return 1; }
                    return 0;
                }
            }
        "#;
        assert_eq!(run_main_int(src, vec![]), 1);
    }

    #[test]
    fn static_and_instance_field_shorthand() {
        // Unqualified names resolve to fields of the enclosing class.
        let src = r#"
            class Main {
                static int total;
                int local;
                int bump() {
                    local = local + 1;    // instance shorthand
                    total = total + 10;   // static shorthand
                    return local;
                }
                static int main() {
                    Main m = new Main();
                    m.bump();
                    m.bump();
                    return total + m.local;
                }
            }
        "#;
        assert_eq!(run_main_int(src, vec![]), 22);
    }

    #[test]
    fn deep_inheritance_chain_dispatch() {
        let src = r#"
            class L0 { int id() { return 0; } }
            class L1 extends L0 { int id() { return 1; } }
            class L2 extends L1 { }
            class L3 extends L2 { int id() { return 3; } }
            class Main {
                static int main() {
                    L0 a = new L3();
                    L0 b = new L2();
                    return a.id() * 10 + b.id();
                }
            }
        "#;
        assert_eq!(run_main_int(src, vec![]), 31);
    }

    #[test]
    fn finally_like_cleanup_via_catch_rethrow() {
        let src = r#"
            class Main {
                static int cleanups;
                static int risky(int n) {
                    try {
                        if (n == 0) { throw new Exception("zero"); }
                        Main.cleanups = Main.cleanups + 1;
                        return 100 / n;
                    } catch (Exception e) {
                        Main.cleanups = Main.cleanups + 1;
                        throw e;
                    }
                }
                static int main() {
                    int acc = 0;
                    try { acc = acc + Main.risky(4); } catch (Exception e) { }
                    try { acc = acc + Main.risky(0); } catch (Exception e) { acc = acc + 7; }
                    return acc * 10 + Main.cleanups;
                }
            }
        "#;
        assert_eq!(run_main_int(src, vec![]), (25 + 7) * 10 + 2);
    }

    #[test]
    fn vectors_of_mixed_user_classes() {
        // The shared-library Vector holds Objects; `as` casts recover them.
        let src = r#"
            class Apple { int weight; init(int w) { this.weight = w; } }
            class Pear { int weight; init(int w) { this.weight = w; } }
            class Main {
                static int main() {
                    Vector basket = new Vector();
                    basket.add(new Apple(100));
                    basket.add(new Pear(60));
                    basket.add(new Apple(120));
                    int apples = 0;
                    for (int i = 0; i < basket.count(); i = i + 1) {
                        Object item = basket.get(i);
                        if (item is Apple) {
                            apples = apples + (item as Apple).weight;
                        }
                    }
                    return apples;
                }
            }
        "#;
        let mut host = Host::new();
        // This test needs the Vector class: compile the shared stdlib too.
        host.compile_and_load(
            r#"
            class Vector {
                Object[] data;
                int size;
                init() { this.data = new Object[4]; this.size = 0; }
                void add(Object item) {
                    if (size == data.len()) {
                        Object[] bigger = new Object[data.len() * 2];
                        for (int i = 0; i < size; i = i + 1) { bigger[i] = data[i]; }
                        this.data = bigger;
                    }
                    data[size] = item;
                    size = size + 1;
                }
                Object get(int i) { return data[i]; }
                int count() { return size; }
            }
            "#,
        );
        host.compile_and_load(src);
        assert_eq!(host.run_int(vec![]), 220);
    }
}

mod more_compile_errors {
    use super::*;

    fn expect_error(src: &str, needle: &str) {
        let host = Host::new();
        let err = compile(src, &host.table, host.ns).unwrap_err();
        assert!(
            err.msg.contains(needle),
            "expected error containing {needle:?}, got {:?}",
            err.msg
        );
    }

    #[test]
    fn continue_outside_loop() {
        expect_error(
            "class Main { static void main() { continue; } }",
            "continue outside",
        );
    }

    #[test]
    fn missing_return_value() {
        expect_error(
            "class Main { static int main() { return; } }",
            "missing return value",
        );
    }

    #[test]
    fn value_return_from_void() {
        expect_error(
            "class Main { static void main() { return 5; } }",
            "void method cannot return",
        );
    }

    #[test]
    fn unknown_method_on_class() {
        expect_error(
            "class Main { static void main() { Main.ghost(); } }",
            "unknown method",
        );
    }

    #[test]
    fn instance_method_from_static_context() {
        expect_error(
            "class Main { int inst() { return 1; } static int main() { return inst(); } }",
            "called from static",
        );
    }

    #[test]
    fn non_static_field_via_class_name() {
        expect_error(
            "class Main { int x; static int main() { return Main.x; } }",
            "not static",
        );
    }

    #[test]
    fn arity_mismatch_constructor() {
        expect_error(
            "class P { init(int a) { } } class Main { static void main() { P p = new P(); } }",
            "constructor takes 1 arguments",
        );
    }

    #[test]
    fn indexing_non_array() {
        expect_error(
            "class Main { static int main() { int x = 3; return x[0]; } }",
            "indexing a non-array",
        );
    }

    #[test]
    fn bad_condition_type() {
        expect_error(
            r#"class Main { static void main() { if ("s") { } } }"#,
            "expected a bool",
        );
    }

    #[test]
    fn throw_non_object() {
        expect_error(
            "class Main { static void main() { throw 5; } }",
            "can only throw objects",
        );
    }

    #[test]
    fn duplicate_class_in_program() {
        expect_error("class A { } class A { }", "duplicate class");
    }

    #[test]
    fn unknown_superclass() {
        expect_error("class A extends Ghost { }", "unknown superclass");
    }
}
