//! Recursive-descent parser for Cup.

use crate::ast::*;
use crate::lexer::{Token, TokenKind};
use crate::CompileError;

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

/// Parses a whole compilation unit (a list of class declarations).
pub fn parse_program(toks: &[Token]) -> Result<Vec<ClassDecl>, CompileError> {
    let mut p = Parser { toks, pos: 0 };
    let mut classes = Vec::new();
    while !p.at(TokenKind::Eof) {
        classes.push(p.class_decl()?);
    }
    Ok(classes)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn at(&self, kind: TokenKind) -> bool {
        *self.peek() == kind
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<(), CompileError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn error(&self, msg: String) -> CompileError {
        CompileError {
            line: self.line(),
            msg,
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, CompileError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    // ---- declarations ---------------------------------------------------

    fn class_decl(&mut self) -> Result<ClassDecl, CompileError> {
        let line = self.line();
        self.expect(TokenKind::Class, "`class`")?;
        let name = self.ident("class name")?;
        let extends = if self.eat(TokenKind::Extends) {
            Some(self.ident("superclass name")?)
        } else {
            None
        };
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while !self.eat(TokenKind::RBrace) {
            self.member(&name, &mut fields, &mut methods)?;
        }
        Ok(ClassDecl {
            name,
            extends,
            fields,
            methods,
            line,
        })
    }

    fn member(
        &mut self,
        class_name: &str,
        fields: &mut Vec<FieldDecl>,
        methods: &mut Vec<MethodDecl>,
    ) -> Result<(), CompileError> {
        let line = self.line();
        let is_static = self.eat(TokenKind::Static);

        // Constructor: `init(params) { ... }` or `ClassName(params)`.
        if let TokenKind::Ident(name) = self.peek().clone() {
            if (name == "init" || name == class_name) && *self.peek2() == TokenKind::LParen {
                self.bump();
                let params = self.params()?;
                let body = self.block()?;
                methods.push(MethodDecl {
                    name: "init".to_string(),
                    ret: None,
                    params,
                    is_static: false,
                    body,
                    line,
                });
                return Ok(());
            }
        }

        // `void name(...)` method.
        if self.eat(TokenKind::Void) {
            let name = self.ident("method name")?;
            let params = self.params()?;
            let body = self.block()?;
            methods.push(MethodDecl {
                name,
                ret: None,
                params,
                is_static,
                body,
                line,
            });
            return Ok(());
        }

        // `ty name;` field or `ty name(...)` method.
        let ty = self.ty()?;
        let name = self.ident("member name")?;
        if self.at(TokenKind::LParen) {
            let params = self.params()?;
            let body = self.block()?;
            methods.push(MethodDecl {
                name,
                ret: Some(ty),
                params,
                is_static,
                body,
                line,
            });
        } else {
            self.expect(TokenKind::Semi, "`;` after field")?;
            fields.push(FieldDecl {
                name,
                ty,
                is_static,
                line,
            });
        }
        Ok(())
    }

    fn params(&mut self) -> Result<Vec<(String, Ty)>, CompileError> {
        self.expect(TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.at(TokenKind::RParen) {
            loop {
                let ty = self.ty()?;
                let name = self.ident("parameter name")?;
                params.push((name, ty));
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen, "`)`")?;
        Ok(params)
    }

    fn ty(&mut self) -> Result<Ty, CompileError> {
        let base = match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                match name.as_str() {
                    "int" => Ty::Int,
                    "float" => Ty::Float,
                    "bool" => Ty::Bool,
                    "String" => Ty::Str,
                    _ => Ty::Class(name),
                }
            }
            other => return Err(self.error(format!("expected a type, found {other:?}"))),
        };
        let mut ty = base;
        while self.at(TokenKind::LBracket) && *self.peek2() == TokenKind::RBracket {
            self.bump();
            self.bump();
            ty = Ty::Array(Box::new(ty));
        }
        Ok(ty)
    }

    // ---- statements -------------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !self.eat(TokenKind::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::LBrace => Ok(Stmt::Block(self.block()?)),
            TokenKind::If => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                let then_body = self.block_or_stmt()?;
                let else_body = if self.eat(TokenKind::Else) {
                    if self.at(TokenKind::If) {
                        vec![self.stmt()?]
                    } else {
                        self.block_or_stmt()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    line,
                })
            }
            TokenKind::While => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::While { cond, body, line })
            }
            TokenKind::For => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let init = if self.at(TokenKind::Semi) {
                    None
                } else {
                    Some(self.simple_stmt()?)
                };
                self.expect(TokenKind::Semi, "`;` after for-init")?;
                let cond = if self.at(TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi, "`;` after for-condition")?;
                let update = if self.at(TokenKind::RParen) {
                    None
                } else {
                    Some(self.simple_stmt()?)
                };
                self.expect(TokenKind::RParen, "`)`")?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::For {
                    init: Box::new(init),
                    cond,
                    update: Box::new(update),
                    body,
                    line,
                })
            }
            TokenKind::Return => {
                self.bump();
                let value = if self.at(TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi, "`;` after return")?;
                Ok(Stmt::Return { value, line })
            }
            TokenKind::Break => {
                self.bump();
                self.expect(TokenKind::Semi, "`;` after break")?;
                Ok(Stmt::Break { line })
            }
            TokenKind::Continue => {
                self.bump();
                self.expect(TokenKind::Semi, "`;` after continue")?;
                Ok(Stmt::Continue { line })
            }
            TokenKind::Throw => {
                self.bump();
                let value = self.expr()?;
                self.expect(TokenKind::Semi, "`;` after throw")?;
                Ok(Stmt::Throw { value, line })
            }
            TokenKind::Try => {
                self.bump();
                let body = self.block()?;
                let mut catches = Vec::new();
                while self.at(TokenKind::Catch) {
                    let cline = self.line();
                    self.bump();
                    self.expect(TokenKind::LParen, "`(`")?;
                    let class = self.ident("exception class")?;
                    let var = self.ident("exception variable")?;
                    self.expect(TokenKind::RParen, "`)`")?;
                    let cbody = self.block()?;
                    catches.push(CatchClause {
                        class,
                        var,
                        body: cbody,
                        line: cline,
                    });
                }
                if catches.is_empty() {
                    return Err(self.error("try without catch".to_string()));
                }
                Ok(Stmt::Try {
                    body,
                    catches,
                    line,
                })
            }
            TokenKind::Sync => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let lock = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                let body = self.block()?;
                Ok(Stmt::Sync { lock, body, line })
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(s)
            }
        }
    }

    fn block_or_stmt(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if self.at(TokenKind::LBrace) {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    /// Statement without trailing `;`: var decl, assignment, or expression.
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        // Variable declaration: `ty name [= expr]` — detected by a type
        // followed by an identifier (with optional `[]` pairs between).
        if self.looks_like_decl() {
            let ty = self.ty()?;
            let name = self.ident("variable name")?;
            let init = if self.eat(TokenKind::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Stmt::VarDecl {
                ty,
                name,
                init,
                line,
            });
        }
        let e = self.expr()?;
        if self.eat(TokenKind::Assign) {
            let value = self.expr()?;
            return Ok(Stmt::Assign {
                target: e,
                value,
                line,
            });
        }
        Ok(Stmt::Expr(e))
    }

    /// Lookahead: `Ident` (type name) followed by `Ident`, possibly with
    /// `[]` pairs between — a declaration rather than an expression.
    fn looks_like_decl(&self) -> bool {
        let TokenKind::Ident(_) = self.peek() else {
            return false;
        };
        let mut i = self.pos + 1;
        while self.toks.get(i).map(|t| &t.kind) == Some(&TokenKind::LBracket)
            && self.toks.get(i + 1).map(|t| &t.kind) == Some(&TokenKind::RBracket)
        {
            i += 2;
        }
        matches!(self.toks.get(i).map(|t| &t.kind), Some(TokenKind::Ident(_)))
    }

    // ---- expressions --------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.and_expr()?;
        while self.at(TokenKind::OrOr) {
            let line = self.line();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.bitor_expr()?;
        while self.at(TokenKind::AndAnd) {
            let line = self.line();
            self.bump();
            let rhs = self.bitor_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn bitor_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.bitxor_expr()?;
        while self.at(TokenKind::Pipe) {
            let line = self.line();
            self.bump();
            let rhs = self.bitxor_expr()?;
            lhs = Expr::Binary {
                op: BinOp::BitOr,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn bitxor_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.bitand_expr()?;
        while self.at(TokenKind::Caret) {
            let line = self.line();
            self.bump();
            let rhs = self.bitand_expr()?;
            lhs = Expr::Binary {
                op: BinOp::BitXor,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn bitand_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.equality_expr()?;
        while self.at(TokenKind::Amp) {
            let line = self.line();
            self.bump();
            let rhs = self.equality_expr()?;
            lhs = Expr::Binary {
                op: BinOp::BitAnd,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn equality_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.relational_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.relational_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn relational_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.shift_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.shift_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn shift_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.additive_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Shl => BinOp::Shl,
                TokenKind::Shr => BinOp::Shr,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.additive_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn additive_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.multiplicative_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.multiplicative_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn multiplicative_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        if self.eat(TokenKind::Minus) {
            let operand = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                operand: Box::new(operand),
                line,
            });
        }
        if self.eat(TokenKind::Not) {
            let operand = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(operand),
                line,
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary_expr()?;
        loop {
            let line = self.line();
            if self.eat(TokenKind::Dot) {
                let name = self.ident("member name")?;
                if self.at(TokenKind::LParen) {
                    let args = self.args()?;
                    e = Expr::Call {
                        recv: Box::new(e),
                        method: name,
                        args,
                        line,
                    };
                } else {
                    e = Expr::Field {
                        recv: Box::new(e),
                        name,
                        line,
                    };
                }
            } else if self.eat(TokenKind::LBracket) {
                let idx = self.expr()?;
                self.expect(TokenKind::RBracket, "`]`")?;
                e = Expr::Index {
                    arr: Box::new(e),
                    idx: Box::new(idx),
                    line,
                };
            } else if self.eat(TokenKind::As) {
                let class = self.ident("class name after `as`")?;
                e = Expr::Cast {
                    value: Box::new(e),
                    class,
                    line,
                };
            } else if self.eat(TokenKind::Is) {
                let class = self.ident("class name after `is`")?;
                e = Expr::InstanceOf {
                    value: Box::new(e),
                    class,
                    line,
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn args(&mut self) -> Result<Vec<Expr>, CompileError> {
        self.expect(TokenKind::LParen, "`(`")?;
        let mut args = Vec::new();
        if !self.at(TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen, "`)`")?;
        Ok(args)
    }

    fn primary_expr(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::IntLit(v, line))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::FloatLit(v, line))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::StrLit(s, line))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::BoolLit(true, line))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::BoolLit(false, line))
            }
            TokenKind::Null => {
                self.bump();
                Ok(Expr::Null(line))
            }
            TokenKind::This => {
                self.bump();
                Ok(Expr::This(line))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::New => {
                self.bump();
                // `new C(args)` or `new ty[len]` (possibly multi-dim base).
                let base = self.ty()?;
                if self.at(TokenKind::LParen) {
                    let Ty::Class(class) = base else {
                        return Err(self.error("`new` of a non-class type".to_string()));
                    };
                    let args = self.args()?;
                    Ok(Expr::New { class, args, line })
                } else if self.eat(TokenKind::LBracket) {
                    let len = self.expr()?;
                    self.expect(TokenKind::RBracket, "`]`")?;
                    Ok(Expr::NewArray {
                        elem: base,
                        len: Box::new(len),
                        line,
                    })
                } else {
                    Err(self.error("expected `(` or `[` after `new`".to_string()))
                }
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at(TokenKind::LParen) {
                    let args = self.args()?;
                    Ok(Expr::SelfCall {
                        method: name,
                        args,
                        line,
                    })
                } else {
                    Ok(Expr::Var(name, line))
                }
            }
            other => Err(self.error(format!("unexpected token {other:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<ClassDecl> {
        parse_program(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_class_with_members() {
        let classes = parse(
            "class A extends B { static int total; String name; \
             int get(int x) { return x; } void run() { } init(int a) { } }",
        );
        assert_eq!(classes.len(), 1);
        let c = &classes[0];
        assert_eq!(c.name, "A");
        assert_eq!(c.extends.as_deref(), Some("B"));
        assert_eq!(c.fields.len(), 2);
        assert!(c.fields[0].is_static);
        assert_eq!(c.methods.len(), 3);
        assert_eq!(c.methods[2].name, "init");
        assert!(!c.methods[2].is_static);
    }

    #[test]
    fn parses_constructor_with_class_name() {
        let classes = parse("class P { int x; P(int x) { this.x = x; } }");
        assert_eq!(classes[0].methods[0].name, "init");
    }

    #[test]
    fn parses_control_flow() {
        let classes = parse(
            "class A { void f(int n) { \
               if (n > 0) { n = n - 1; } else { n = 0; } \
               while (n < 10) { n = n + 1; } \
               for (int i = 0; i < n; i = i + 1) { n = n + i; } \
               try { n = n / 0; } catch (Exception e) { n = 0; } \
               sync (this) { n = 1; } \
             } }",
        );
        assert_eq!(classes[0].methods[0].body.len(), 5);
    }

    #[test]
    fn precedence_mul_before_add() {
        let classes = parse("class A { int f() { return 1 + 2 * 3; } }");
        let Stmt::Return { value: Some(e), .. } = &classes[0].methods[0].body[0] else {
            panic!("expected return");
        };
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = e
        else {
            panic!("expected +, got {e:?}");
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn array_types_and_indexing() {
        let classes = parse(
            "class A { int[] buf; int f() { int[][] m = null; \
             int[] a = new int[4]; a[0] = 1; return a[0]; } }",
        );
        assert_eq!(classes[0].fields[0].ty, Ty::Array(Box::new(Ty::Int)));
        let Stmt::VarDecl { ty, .. } = &classes[0].methods[0].body[0] else {
            panic!();
        };
        assert_eq!(*ty, Ty::Array(Box::new(Ty::Array(Box::new(Ty::Int)))));
    }

    #[test]
    fn distinguishes_decl_from_expression() {
        let classes = parse("class A { int f(int a) { a = 1; int b = 2; f(a); return b; } }");
        let body = &classes[0].methods[0].body;
        assert!(matches!(body[0], Stmt::Assign { .. }));
        assert!(matches!(body[1], Stmt::VarDecl { .. }));
        assert!(matches!(body[2], Stmt::Expr(Expr::SelfCall { .. })));
    }

    #[test]
    fn postfix_chains() {
        let classes = parse("class A { int f(A a) { return a.b.c(1)[2].d; } }");
        let Stmt::Return { value: Some(e), .. } = &classes[0].methods[0].body[0] else {
            panic!();
        };
        assert!(matches!(e, Expr::Field { .. }));
    }

    #[test]
    fn cast_and_instanceof() {
        let classes = parse("class A { bool f(Object o) { A a = o as A; return o is A; } }");
        let body = &classes[0].methods[0].body;
        assert!(matches!(
            body[0],
            Stmt::VarDecl {
                init: Some(Expr::Cast { .. }),
                ..
            }
        ));
    }

    #[test]
    fn rejects_try_without_catch() {
        let toks = lex("class A { void f() { try { } } }").unwrap();
        assert!(parse_program(&toks).is_err());
    }

    #[test]
    fn dangling_else_binds_inner() {
        let classes = parse(
            "class A { int f(int x) { if (x > 0) if (x > 1) return 2; else return 1; return 0; } }",
        );
        let Stmt::If {
            then_body,
            else_body,
            ..
        } = &classes[0].methods[0].body[0]
        else {
            panic!();
        };
        assert!(else_body.is_empty(), "outer if has no else");
        let Stmt::If {
            else_body: inner_else,
            ..
        } = &then_body[0]
        else {
            panic!();
        };
        assert!(!inner_else.is_empty(), "inner if owns the else");
    }
}
