//! Abstract syntax tree for Cup.

/// Source types as written (resolved to `kaffeos_vm::TypeDesc` by codegen).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    Int,
    Float,
    Bool,
    Str,
    Class(String),
    Array(Box<Ty>),
}

/// A class declaration.
#[derive(Debug, Clone)]
pub struct ClassDecl {
    pub name: String,
    pub extends: Option<String>,
    pub fields: Vec<FieldDecl>,
    pub methods: Vec<MethodDecl>,
    pub line: u32,
}

#[derive(Debug, Clone)]
pub struct FieldDecl {
    pub name: String,
    pub ty: Ty,
    pub is_static: bool,
    pub line: u32,
}

#[derive(Debug, Clone)]
pub struct MethodDecl {
    pub name: String,
    /// `None` return = void. Constructors (`init`) are always void.
    pub ret: Option<Ty>,
    pub params: Vec<(String, Ty)>,
    pub is_static: bool,
    pub body: Vec<Stmt>,
    pub line: u32,
}

#[derive(Debug, Clone)]
pub enum Stmt {
    /// `ty name = expr;` / `ty name;`
    VarDecl {
        ty: Ty,
        name: String,
        init: Option<Expr>,
        line: u32,
    },
    /// `lvalue = expr;`
    Assign {
        target: Expr,
        value: Expr,
        line: u32,
    },
    /// Expression statement (its value, if any, is discarded).
    Expr(Expr),
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
        line: u32,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
        line: u32,
    },
    For {
        init: Box<Option<Stmt>>,
        cond: Option<Expr>,
        update: Box<Option<Stmt>>,
        body: Vec<Stmt>,
        line: u32,
    },
    Return {
        value: Option<Expr>,
        line: u32,
    },
    Break {
        line: u32,
    },
    Continue {
        line: u32,
    },
    Throw {
        value: Expr,
        line: u32,
    },
    Try {
        body: Vec<Stmt>,
        catches: Vec<CatchClause>,
        line: u32,
    },
    /// `sync (expr) { ... }` — monitorenter/exit around the body.
    Sync {
        lock: Expr,
        body: Vec<Stmt>,
        line: u32,
    },
    Block(Vec<Stmt>),
}

#[derive(Debug, Clone)]
pub struct CatchClause {
    pub class: String,
    pub var: String,
    pub body: Vec<Stmt>,
    pub line: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

#[derive(Debug, Clone)]
pub enum Expr {
    IntLit(i64, u32),
    FloatLit(f64, u32),
    StrLit(String, u32),
    BoolLit(bool, u32),
    Null(u32),
    This(u32),
    /// Variable reference (or, in call/field position, a class name —
    /// disambiguated during codegen).
    Var(String, u32),
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        line: u32,
    },
    Unary {
        op: UnOp,
        operand: Box<Expr>,
        line: u32,
    },
    /// `recv.field`
    Field {
        recv: Box<Expr>,
        name: String,
        line: u32,
    },
    /// `arr[idx]`
    Index {
        arr: Box<Expr>,
        idx: Box<Expr>,
        line: u32,
    },
    /// `recv.method(args)` — virtual, string builtin, static (recv is a
    /// class name), or intrinsic (recv is `Sys`/`Proc`/`Shm`/`Net`).
    Call {
        recv: Box<Expr>,
        method: String,
        args: Vec<Expr>,
        line: u32,
    },
    /// Unqualified call `m(args)` — method of the current class.
    SelfCall {
        method: String,
        args: Vec<Expr>,
        line: u32,
    },
    /// `new C(args)`
    New {
        class: String,
        args: Vec<Expr>,
        line: u32,
    },
    /// `new ty[len]`
    NewArray {
        elem: Ty,
        len: Box<Expr>,
        line: u32,
    },
    /// `e as C`
    Cast {
        value: Box<Expr>,
        class: String,
        line: u32,
    },
    /// `e is C`
    InstanceOf {
        value: Box<Expr>,
        class: String,
        line: u32,
    },
}

impl Expr {
    pub fn line(&self) -> u32 {
        match self {
            Expr::IntLit(_, l)
            | Expr::FloatLit(_, l)
            | Expr::StrLit(_, l)
            | Expr::BoolLit(_, l)
            | Expr::Null(l)
            | Expr::This(l)
            | Expr::Var(_, l) => *l,
            Expr::Binary { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Call { line, .. }
            | Expr::SelfCall { line, .. }
            | Expr::New { line, .. }
            | Expr::NewArray { line, .. }
            | Expr::Cast { line, .. }
            | Expr::InstanceOf { line, .. } => *line,
        }
    }
}
