//! `cupc` — the compiler for **Cup**, the guest language of the KaffeOS
//! reproduction.
//!
//! The paper's workloads are Java programs (SPEC JVM98, servlets); ours are
//! Cup programs. Cup is a small Java-like language — classes with single
//! inheritance, `int`/`float`/`bool`/`String`/arrays, virtual dispatch,
//! exceptions, static members, string operations, and kernel intrinsics —
//! compiled to the `kaffeos-vm` bytecode, where the verifier re-checks
//! everything (the compiler is *not* part of the trusted computing base;
//! type safety is enforced at class-load time).
//!
//! # Syntax sketch
//!
//! ```text
//! class Worker extends Base {
//!     static int total;
//!     int id;
//!     String name;
//!
//!     init(int id) { this.id = id; }          // constructor
//!
//!     int work(int n) {
//!         int acc = 0;
//!         for (int i = 0; i < n; i = i + 1) { acc = acc + i; }
//!         while (acc > 100) { acc = acc / 2; }
//!         if (acc == 0) { throw new Exception("empty"); }
//!         int[] buf = new int[16];
//!         buf[0] = acc;
//!         String s = "acc=" + acc;
//!         try { acc = s.substr(4, s.len()).toInt(); }
//!         catch (Exception e) { acc = 0; }
//!         sync (this) { Worker.total = Worker.total + acc; }
//!         return acc;
//!     }
//! }
//! ```
//!
//! Calls of the form `Sys.xyz(...)`, `Proc.xyz(...)`, `Shm.xyz(...)`,
//! `Net.xyz(...)` compile to kernel intrinsics (`sys.xyz` etc.) — the
//! user/kernel boundary of the paper. Everything else is ordinary guest
//! code.

mod ast;
mod codegen;
mod lexer;
mod parser;

pub use codegen::compile_program;
pub use lexer::{lex, Token, TokenKind};
pub use parser::parse_program;

/// A compile error with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    /// 1-based source line of the error.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl core::fmt::Display for CompileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CompileError {}

/// Convenience: lex + parse + compile a source string against an existing
/// class table (for resolving library classes), returning loadable class
/// definitions in declaration order.
pub fn compile(
    source: &str,
    table: &kaffeos_vm::ClassTable,
    ns: u32,
) -> Result<Vec<kaffeos_vm::ClassDef>, CompileError> {
    let tokens = lex(source)?;
    let program = parse_program(&tokens)?;
    compile_program(&program, table, ns)
}

#[cfg(test)]
mod tests;
