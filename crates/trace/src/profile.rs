//! Deterministic virtual-time sampling profiler.
//!
//! Classical sampling profilers interrupt on wall-clock timers, so two runs
//! of the same program produce different profiles. KaffeOS has no wall
//! clock: every cost is modelled in virtual cycles, and every scheduling
//! decision is deterministic. Sampling at *virtual-time edges* — quantum
//! boundaries and kernel crossings — therefore yields a profile that is a
//! pure function of (program, seed): byte-identical across runs, diffable
//! in CI like a golden trace.
//!
//! A sample is a weighted stack: the frames of the current thread (interned
//! method names, the leaf refined by a program-counter bucket) plus a
//! weight — the virtual cycles consumed since the previous sample. Because
//! weights are *measured* cycles rather than counted ticks, the per-pid
//! sums reconcile exactly with the kernel's CPU accounting (`cpu.exec`,
//! `cpu.gc`, `cpu.kernel`), which the reconciliation test locks down.
//!
//! Alongside stacks the store keeps log₂ [`LogHistogram`]s for GC pause
//! cycles per heap, syscall latency per syscall name, and quantum jitter
//! (granted vs. consumed slice). Exporters: Brendan-Gregg folded-stack
//! text ([`ProfileSink::folded`], feedable to `flamegraph.pl`), a
//! self-contained SVG flamegraph ([`ProfileSink::flamegraph_svg`]), the
//! histogram report, and per-pid summaries served through the `proc.*`
//! syscalls.
//!
//! Like [`TraceSink`](crate::TraceSink), a disabled [`ProfileSink`] is a
//! `None`: no closure runs, nothing allocates, and no sample point touches
//! the cycle model — profiling on/off leaves the virtual clock bit-equal.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::rc::Rc;

use crate::hist::LogHistogram;

/// Program-counter bucket width: leaves are attributed to `pc / 64`, coarse
/// enough to keep stack cardinality bounded, fine enough to split phases of
/// a long method.
pub const PC_BUCKET: u32 = 64;

/// Which accounting pool a sample's weight belongs to. Mirrors the kernel's
/// per-process CPU split so profiler totals reconcile with `cpu()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleKind {
    /// Mutator cycles (quantum cycles minus the GC share).
    Exec,
    /// Collection cycles billed to the process.
    Gc,
    /// Kernel-mode cycles (syscall base cost).
    Kernel,
}

/// Per-pid sample totals, split by [`SampleKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PidTotals {
    /// Mutator cycles sampled.
    pub exec: u64,
    /// GC cycles sampled.
    pub gc: u64,
    /// Kernel cycles sampled.
    pub kernel: u64,
    /// Number of samples recorded.
    pub samples: u64,
}

impl PidTotals {
    /// Sum across the three pools.
    pub fn total(&self) -> u64 {
        self.exec + self.gc + self.kernel
    }
}

/// The profile store: interned frame names, weighted stacks, per-pid
/// totals, and the latency histograms. All rendered output iterates
/// `BTreeMap`s (or sorts first), so equal stores render byte-identically.
#[derive(Debug, Default)]
pub struct ProfileStore {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
    method_frames: HashMap<u32, u32>,
    leaf_frames: HashMap<(u32, u32), u32>,
    stacks: BTreeMap<(u32, Vec<u32>), u64>,
    totals: BTreeMap<u32, PidTotals>,
    labels: BTreeMap<u32, String>,
    gc_pause: BTreeMap<u32, LogHistogram>,
    syscall_latency: BTreeMap<&'static str, LogHistogram>,
    quantum_jitter: LogHistogram,
}

impl ProfileStore {
    /// Interns `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Frame id for a raw method index; `resolve` supplies the qualified
    /// `Class.method` name on first sight only.
    pub fn method_frame(&mut self, raw_method: u32, resolve: impl FnOnce() -> String) -> u32 {
        if let Some(&id) = self.method_frames.get(&raw_method) {
            return id;
        }
        let id = self.intern(&resolve());
        self.method_frames.insert(raw_method, id);
        id
    }

    /// Leaf frame id for a raw method index at `pc`: the qualified name
    /// refined with the pc bucket, rendered `Class.method@bN`.
    pub fn leaf_frame(&mut self, raw_method: u32, pc: u32, resolve: impl FnOnce() -> String) -> u32 {
        let bucket = pc / PC_BUCKET;
        if let Some(&id) = self.leaf_frames.get(&(raw_method, bucket)) {
            return id;
        }
        let base = self.method_frame(raw_method, resolve);
        let name = format!("{}@b{bucket}", self.names[base as usize]);
        let id = self.intern(&name);
        self.leaf_frames.insert((raw_method, bucket), id);
        id
    }

    /// Labels `pid` (typically with its image name) for rendered output.
    pub fn set_label(&mut self, pid: u32, label: &str) {
        self.labels.insert(pid, label.to_string());
    }

    /// Records one weighted stack sample. Zero-weight samples are dropped —
    /// they carry no time and would only bloat the stack set.
    pub fn add_sample(&mut self, pid: u32, frames: Vec<u32>, weight: u64, kind: SampleKind) {
        if weight == 0 {
            return;
        }
        let t = self.totals.entry(pid).or_default();
        match kind {
            SampleKind::Exec => t.exec += weight,
            SampleKind::Gc => t.gc += weight,
            SampleKind::Kernel => t.kernel += weight,
        }
        t.samples += 1;
        *self.stacks.entry((pid, frames)).or_insert(0) += weight;
    }

    /// Records a GC pause (cycles) against `heap`'s histogram.
    pub fn record_gc_pause(&mut self, heap: u32, cycles: u64) {
        self.gc_pause.entry(heap).or_default().record(cycles);
    }

    /// Records a syscall's modelled latency (cycles) against its name.
    pub fn record_syscall_latency(&mut self, name: &'static str, cycles: u64) {
        self.syscall_latency.entry(name).or_default().record(cycles);
    }

    /// Records quantum jitter: |granted slice − consumed cycles|.
    pub fn record_quantum_jitter(&mut self, jitter: u64) {
        self.quantum_jitter.record(jitter);
    }

    fn pid_prefix(&self, pid: u32) -> String {
        match self.labels.get(&pid) {
            Some(label) => format!("pid{pid}:{label}"),
            None => format!("pid{pid}"),
        }
    }

    /// Renders the Brendan-Gregg folded-stack format: one
    /// `root;frame;...;leaf weight` line per distinct stack, sorted, with
    /// the pid (and its image label) as the root frame.
    pub fn folded(&self) -> String {
        let mut lines: Vec<String> = Vec::with_capacity(self.stacks.len());
        for ((pid, frames), weight) in &self.stacks {
            let mut line = self.pid_prefix(*pid);
            for &id in frames {
                line.push(';');
                line.push_str(&self.names[id as usize]);
            }
            let _ = write!(line, " {weight}");
            lines.push(line);
        }
        lines.sort_unstable();
        let mut out = String::new();
        for line in lines {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Renders every histogram family as deterministic text.
    pub fn histograms_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# quantum jitter (|granted - consumed| cycles)\n");
        self.quantum_jitter.render(&mut out);
        for (heap, h) in &self.gc_pause {
            let _ = writeln!(out, "# gc pause cycles, heap {heap}");
            h.render(&mut out);
        }
        for (name, h) in &self.syscall_latency {
            let _ = writeln!(out, "# syscall latency cycles, {name}");
            h.render(&mut out);
        }
        out
    }

    /// Top `n` leaf frames for `pid` by sampled weight (ties broken by
    /// name), as `(name, weight)` pairs.
    pub fn top_leaves(&self, pid: u32, n: usize) -> Vec<(String, u64)> {
        let mut by_leaf: BTreeMap<u32, u64> = BTreeMap::new();
        for ((p, frames), weight) in &self.stacks {
            if *p != pid {
                continue;
            }
            if let Some(&leaf) = frames.last() {
                *by_leaf.entry(leaf).or_insert(0) += weight;
            }
        }
        let mut ranked: Vec<(String, u64)> = by_leaf
            .into_iter()
            .map(|(id, w)| (self.names[id as usize].clone(), w))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(n);
        ranked
    }

    /// A human-readable per-pid summary (served by `proc.profile`).
    pub fn summary(&self, pid: u32) -> String {
        let t = self.totals.get(&pid).copied().unwrap_or_default();
        let mut out = format!(
            "{}: samples={} exec={} gc={} kernel={} total={}\n",
            self.pid_prefix(pid),
            t.samples,
            t.exec,
            t.gc,
            t.kernel,
            t.total()
        );
        for (rank, (name, weight)) in self.top_leaves(pid, 5).into_iter().enumerate() {
            let _ = writeln!(out, "  {}. {name} {weight}", rank + 1);
        }
        out
    }

    /// The per-pid totals.
    pub fn totals(&self) -> &BTreeMap<u32, PidTotals> {
        &self.totals
    }

    /// Renders a self-contained SVG flamegraph (icicle layout: root on top,
    /// leaves below, width proportional to sampled cycles). Colors are a
    /// pure hash of the frame name, so the image is deterministic.
    pub fn flamegraph_svg(&self) -> String {
        let root = self.build_tree();
        render_svg(&root)
    }

    fn build_tree(&self) -> FlameNode {
        let mut root = FlameNode::new("all");
        for ((pid, frames), weight) in &self.stacks {
            root.total += weight;
            let mut node = root
                .children
                .entry(self.pid_prefix(*pid))
                .or_insert_with_key(|k| FlameNode::new(k));
            node.total += weight;
            for &id in frames {
                node = node
                    .children
                    .entry(self.names[id as usize].clone())
                    .or_insert_with_key(|k| FlameNode::new(k));
                node.total += weight;
            }
            node.self_weight += weight;
        }
        root
    }
}

pub(crate) struct FlameNode {
    pub(crate) name: String,
    pub(crate) total: u64,
    pub(crate) self_weight: u64,
    pub(crate) children: BTreeMap<String, FlameNode>,
}

impl FlameNode {
    pub(crate) fn new(name: &str) -> Self {
        FlameNode {
            name: name.to_string(),
            total: 0,
            self_weight: 0,
            children: BTreeMap::new(),
        }
    }

    fn depth(&self) -> usize {
        1 + self.children.values().map(FlameNode::depth).max().unwrap_or(0)
    }
}

/// Escapes `s` for XML text/attribute context.
fn push_xml(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
}

/// FNV-1a hash of the frame name, used to pick a deterministic warm color.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn color(name: &str) -> (u8, u8, u8) {
    let h = fnv1a(name);
    let r = 205 + (h % 50) as u8;
    let g = ((h >> 8) % 180) as u8;
    let b = ((h >> 16) % 55) as u8;
    (r, g, b)
}

const SVG_WIDTH: f64 = 1200.0;
const ROW_HEIGHT: f64 = 16.0;
/// Rectangles narrower than this are dropped (with their subtrees): they
/// would be invisible and only bloat the file. The cut is a pure function
/// of the weights, so output stays deterministic.
const MIN_WIDTH: f64 = 0.3;

pub(crate) fn render_svg(root: &FlameNode) -> String {
    let depth = root.depth();
    let height = (depth as f64 + 1.0) * ROW_HEIGHT + 24.0;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{SVG_WIDTH}\" height=\"{height}\" \
         viewBox=\"0 0 {SVG_WIDTH} {height}\" font-family=\"monospace\" font-size=\"11\">"
    );
    out.push_str("<rect width=\"100%\" height=\"100%\" fill=\"#f8f8f8\"/>\n");
    let _ = writeln!(
        out,
        "<text x=\"4\" y=\"14\">KaffeOS virtual-time flamegraph — {} cycles sampled</text>",
        root.total
    );
    if root.total > 0 {
        render_node(&mut out, root, 0.0, SVG_WIDTH, 24.0, root.total);
    }
    out.push_str("</svg>\n");
    out
}

fn render_node(out: &mut String, node: &FlameNode, x: f64, width: f64, y: f64, grand_total: u64) {
    if width < MIN_WIDTH {
        return;
    }
    let pct = 100.0 * node.total as f64 / grand_total as f64;
    let (r, g, b) = color(&node.name);
    out.push_str("<g><title>");
    push_xml(out, &node.name);
    let _ = write!(out, " ({} cycles, {:.2}%)</title>", node.total, pct);
    let _ = write!(
        out,
        "<rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{width:.2}\" height=\"{:.2}\" \
         fill=\"rgb({r},{g},{b})\" stroke=\"#f8f8f8\" stroke-width=\"0.5\"/>",
        ROW_HEIGHT
    );
    // Only label rects wide enough to fit a few characters.
    if width >= 40.0 {
        let max_chars = ((width - 6.0) / 6.6) as usize;
        let label: String = node.name.chars().take(max_chars).collect();
        let _ = write!(out, "<text x=\"{:.2}\" y=\"{:.2}\">", x + 3.0, y + 12.0);
        push_xml(out, &label);
        out.push_str("</text>");
    }
    out.push_str("</g>\n");
    let mut child_x = x;
    for child in node.children.values() {
        let child_width = width * child.total as f64 / node.total as f64;
        render_node(out, child, child_x, child_width, y + ROW_HEIGHT, grand_total);
        child_x += child_width;
    }
}

/// Shared handle to a [`ProfileStore`], or the disabled no-op — the exact
/// [`TraceSink`](crate::TraceSink) pattern: a disabled sink is a `None`,
/// closures never run, and no sample point has a cycle model, so profiling
/// cannot perturb the virtual clock.
#[derive(Debug, Clone, Default)]
pub struct ProfileSink(Option<Rc<RefCell<ProfileStore>>>);

impl ProfileSink {
    /// The disabled sink: every operation is a no-op behind one `Option`
    /// check.
    pub fn disabled() -> Self {
        ProfileSink(None)
    }

    /// An enabled sink with an empty store.
    pub fn enabled() -> Self {
        ProfileSink(Some(Rc::new(RefCell::new(ProfileStore::default()))))
    }

    /// True if samples are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Runs `f` against the store — only when enabled, so disabled
    /// profiling constructs nothing.
    #[inline]
    pub fn with(&self, f: impl FnOnce(&mut ProfileStore)) {
        if let Some(store) = &self.0 {
            f(&mut store.borrow_mut());
        }
    }

    /// Labels `pid` for rendered output (no-op when disabled).
    pub fn set_label(&self, pid: u32, label: &str) {
        self.with(|p| p.set_label(pid, label));
    }

    /// Records a GC pause against `heap` (no-op when disabled).
    pub fn record_gc_pause(&self, heap: u32, cycles: u64) {
        self.with(|p| p.record_gc_pause(heap, cycles));
    }

    /// Records a syscall latency sample (no-op when disabled).
    pub fn record_syscall_latency(&self, name: &'static str, cycles: u64) {
        self.with(|p| p.record_syscall_latency(name, cycles));
    }

    /// Records a quantum jitter sample (no-op when disabled).
    pub fn record_quantum_jitter(&self, jitter: u64) {
        self.with(|p| p.record_quantum_jitter(jitter));
    }

    /// Folded-stack export (empty when disabled).
    pub fn folded(&self) -> String {
        self.0
            .as_ref()
            .map(|p| p.borrow().folded())
            .unwrap_or_default()
    }

    /// SVG flamegraph export (empty when disabled).
    pub fn flamegraph_svg(&self) -> String {
        self.0
            .as_ref()
            .map(|p| p.borrow().flamegraph_svg())
            .unwrap_or_default()
    }

    /// Histogram report (empty when disabled).
    pub fn histograms_text(&self) -> String {
        self.0
            .as_ref()
            .map(|p| p.borrow().histograms_text())
            .unwrap_or_default()
    }

    /// Per-pid summary text (empty when disabled).
    pub fn summary(&self, pid: u32) -> String {
        self.0
            .as_ref()
            .map(|p| p.borrow().summary(pid))
            .unwrap_or_default()
    }

    /// Per-pid totals (empty when disabled).
    pub fn totals(&self) -> BTreeMap<u32, PidTotals> {
        self.0
            .as_ref()
            .map(|p| p.borrow().totals().clone())
            .unwrap_or_default()
    }

    /// Top `n` leaf frames for `pid` (empty when disabled).
    pub fn top_leaves(&self, pid: u32, n: usize) -> Vec<(String, u64)> {
        self.0
            .as_ref()
            .map(|p| p.borrow().top_leaves(pid, n))
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ProfileStore {
        let mut p = ProfileStore::default();
        p.set_label(1, "compress");
        let main = p.method_frame(0, || "Main.main".to_string());
        let leaf_a = p.leaf_frame(7, 10, || "Lzw.step".to_string());
        let leaf_b = p.leaf_frame(7, 200, || "Lzw.step".to_string());
        p.add_sample(1, vec![main, leaf_a], 1000, SampleKind::Exec);
        p.add_sample(1, vec![main, leaf_b], 500, SampleKind::Exec);
        p.add_sample(1, vec![main, leaf_a], 250, SampleKind::Gc);
        p
    }

    #[test]
    fn folded_output_is_sorted_and_weighted() {
        let p = sample_store();
        let text = p.folded();
        assert_eq!(
            text,
            "pid1:compress;Main.main;Lzw.step@b0 1250\n\
             pid1:compress;Main.main;Lzw.step@b3 500\n"
        );
    }

    #[test]
    fn zero_weight_samples_are_dropped() {
        let mut p = ProfileStore::default();
        let f = p.intern("(no stack)");
        p.add_sample(2, vec![f], 0, SampleKind::Exec);
        assert!(p.folded().is_empty());
        assert!(p.totals().is_empty());
    }

    #[test]
    fn totals_split_by_kind_and_reconcile() {
        let p = sample_store();
        let t = p.totals()[&1];
        assert_eq!(t.exec, 1500);
        assert_eq!(t.gc, 250);
        assert_eq!(t.kernel, 0);
        assert_eq!(t.samples, 3);
        assert_eq!(t.total(), 1750);
    }

    #[test]
    fn summary_names_the_pid_and_ranks_leaves() {
        let p = sample_store();
        let s = p.summary(1);
        assert!(s.starts_with("pid1:compress: samples=3"), "{s}");
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].contains("1. Lzw.step@b0 1250"), "{s}");
        assert!(lines[2].contains("2. Lzw.step@b3 500"), "{s}");
    }

    #[test]
    fn svg_is_wellformed_and_escapes_names() {
        let mut p = sample_store();
        let odd = p.intern("a<b>&\"c\"");
        p.add_sample(3, vec![odd], 800, SampleKind::Exec);
        let svg = p.flamegraph_svg();
        assert!(svg.starts_with("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("a&lt;b&gt;&amp;&quot;c&quot;"), "names escaped");
        assert!(!svg.contains("a<b>"), "raw name must not leak");
        assert_eq!(svg.matches("<g>").count(), svg.matches("</g>").count());
    }

    #[test]
    fn disabled_sink_runs_no_closures_and_yields_nothing() {
        let sink = ProfileSink::disabled();
        let mut ran = false;
        sink.with(|_| ran = true);
        assert!(!ran);
        assert!(sink.folded().is_empty());
        assert!(sink.flamegraph_svg().is_empty());
        assert!(sink.histograms_text().is_empty());
        assert!(sink.totals().is_empty());
    }

    #[test]
    fn histogram_report_covers_all_three_families() {
        let mut p = ProfileStore::default();
        p.record_quantum_jitter(3);
        p.record_gc_pause(2, 4096);
        p.record_syscall_latency("proc.wait", 300);
        let text = p.histograms_text();
        assert!(text.contains("# quantum jitter"), "{text}");
        assert!(text.contains("# gc pause cycles, heap 2"), "{text}");
        assert!(text.contains("# syscall latency cycles, proc.wait"), "{text}");
        assert!(text.contains("[2048,4096)") || text.contains("[4096,8192)"));
    }
}
